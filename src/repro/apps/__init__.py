"""Applications: BFS, PageRank, and connected components."""

from repro.apps.bfs import UNREACHED, AtosBFS
from repro.apps.coloring import (
    AtosColoring,
    greedy_coloring,
    is_proper_coloring,
)
from repro.apps.connected_components import (
    AtosConnectedComponents,
    reference_components,
)
from repro.apps.pagerank import AtosPageRank
from repro.apps.sssp import UNREACHED_DIST, AtosSSSP, reference_sssp
from repro.apps.validation import (
    pagerank_close,
    reference_bfs,
    reference_pagerank,
)

__all__ = [
    "AtosBFS",
    "AtosPageRank",
    "AtosColoring",
    "AtosConnectedComponents",
    "AtosSSSP",
    "greedy_coloring",
    "is_proper_coloring",
    "UNREACHED",
    "UNREACHED_DIST",
    "reference_sssp",
    "reference_bfs",
    "reference_pagerank",
    "reference_components",
    "pagerank_close",
]
