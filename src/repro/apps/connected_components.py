"""Connected components via asynchronous min-label propagation.

An *extension* application beyond the paper's BFS/PageRank pair,
demonstrating that the Atos programming model generalizes: the same
pop-process-push structure with ``atomicMin`` over component labels
instead of depths.  Every vertex starts queued with its own id as
label; workers propagate the minimum label seen; the run ends when no
label can improve — detected, as always, by queue quiescence.

Expects a symmetric graph (components of the undirected structure);
use :meth:`repro.graph.csr.CSRGraph.symmetrized` first if needed.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.atomics import atomic_min_relaxed
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition
from repro.metrics.counters import Counters
from repro.runtime.executor import AtosApplication, RoundOutcome

__all__ = ["AtosConnectedComponents", "reference_components"]


def reference_components(graph: CSRGraph) -> np.ndarray:
    """Serial min-label components (oracle for the async version)."""
    labels = np.arange(graph.n_vertices, dtype=np.int64)
    changed = True
    while changed:
        src, dst = graph.to_edges()
        proposed = labels[src]
        old = labels[dst].copy()
        np.minimum.at(labels, dst, proposed)
        changed = bool(np.any(labels[dst] < old))
    return labels


class AtosConnectedComponents(AtosApplication):
    """Min-label propagation as an Atos application."""

    name = "connected-components"

    def __init__(self, graph: CSRGraph, partition: Partition):
        self.graph = graph
        self.partition = partition
        self.label_slices: list[np.ndarray] = []
        self._counters = Counters()

    def setup(self, n_pes: int):
        if n_pes != self.partition.n_parts:
            raise ValueError("partition does not match PE count")
        part = self.partition
        self.label_slices = [
            part.part_vertices[pe].astype(np.int64) for pe in range(n_pes)
        ]
        # Every vertex is seeded (like PageRank's all-vertices start).
        return [
            (part.part_vertices[pe].astype(np.int64), None)
            for pe in range(n_pes)
        ]

    def process(self, pe: int, tasks: np.ndarray) -> RoundOutcome:
        part = self.partition
        labels_pe = self.label_slices[pe]
        rows = part.local_index[tasks]
        self._counters["vertices_visited"] += len(tasks)

        targets, origin = part.subgraphs[pe].expand_batch(rows)
        if len(targets) == 0:
            return RoundOutcome(edges_processed=0)
        proposed = labels_pe[rows][origin]
        owners = part.owner[targets]
        local_mask = owners == pe
        outcome = RoundOutcome(edges_processed=len(targets))

        local_targets = targets[local_mask].astype(np.int64)
        if len(local_targets):
            local_rows = part.local_index[local_targets]
            candidate = proposed[local_mask]
            old = atomic_min_relaxed(labels_pe, local_rows, candidate)
            improved = candidate < old
            outcome.local_pushes = np.unique(local_targets[improved])

        remote_mask = ~local_mask
        if remote_mask.any():
            r_targets = targets[remote_mask].astype(np.int64)
            r_labels = proposed[remote_mask]
            r_owners = owners[remote_mask]
            for dst in np.unique(r_owners):
                sel = r_owners == dst
                verts, pos = np.unique(r_targets[sel], return_inverse=True)
                best = np.full(len(verts), np.iinfo(np.int64).max)
                np.minimum.at(best, pos, r_labels[sel])
                outcome.remote_updates[int(dst)] = np.column_stack(
                    [verts, best]
                )
        return outcome

    def handle_remote(self, pe: int, payload: np.ndarray):
        verts = payload[:, 0]
        candidate = payload[:, 1]
        if len(verts) > 1:
            uniq, inverse = np.unique(verts, return_inverse=True)
            if len(uniq) < len(verts):
                best = np.full(len(uniq), np.iinfo(np.int64).max)
                np.minimum.at(best, inverse, candidate)
                verts, candidate = uniq, best
        rows = self.partition.local_index[verts]
        old = atomic_min_relaxed(self.label_slices[pe], rows, candidate)
        improved = candidate < old
        self._counters["remote_updates_applied"] += len(verts)
        return verts[improved], None

    def result(self) -> np.ndarray:
        out = np.zeros(self.graph.n_vertices, dtype=np.int64)
        for pe in range(self.partition.n_parts):
            out[self.partition.part_vertices[pe]] = self.label_slices[pe]
        return out

    def counters(self) -> Counters:
        return self._counters
