"""Asynchronous push PageRank on the Atos runtime (paper §IV).

Residual-based push PR: every vertex starts in the queue with residual
``1 - alpha``.  A worker popping vertex ``v`` folds ``v``'s residual
into its rank and pushes ``alpha * residual / out_degree(v)`` to each
neighbor with ``atomicAdd``.  A neighbor whose accumulated residual
crosses the convergence threshold (and is not already queued) is
enqueued — locally, or via a one-sided update to its owner.  The run
ends when every residual is below the threshold and all queues are
empty, which the executor's exact work tracking detects.

The ``in_queue`` flag per vertex keeps each vertex at most once in the
distributed queue, matching the paper's formulation ("pushes the
vertices that ... are not in the queue").
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition
from repro.metrics.counters import Counters
from repro.runtime.executor import AtosApplication, RoundOutcome

__all__ = ["AtosPageRank"]


class AtosPageRank(AtosApplication):
    """Residual push PageRank as an Atos application."""

    name = "pagerank"

    def __init__(
        self,
        graph: CSRGraph,
        partition: Partition,
        alpha: float = 0.85,
        epsilon: float = 1e-4,
    ):
        if not 0 < alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.graph = graph
        self.partition = partition
        self.alpha = alpha
        self.epsilon = epsilon
        self.rank_slices: list[np.ndarray] = []
        self.residual_slices: list[np.ndarray] = []
        self.in_queue_slices: list[np.ndarray] = []
        self._counters = Counters()

    # ------------------------------------------------------------- setup
    def setup(self, n_pes: int):
        if n_pes != self.partition.n_parts:
            raise ValueError("partition does not match PE count")
        part = self.partition
        self.rank_slices = [
            np.zeros(part.part_size(pe)) for pe in range(n_pes)
        ]
        self.residual_slices = [
            np.full(part.part_size(pe), 1.0 - self.alpha)
            for pe in range(n_pes)
        ]
        self.in_queue_slices = [
            np.ones(part.part_size(pe), dtype=bool) for pe in range(n_pes)
        ]
        return [
            (part.part_vertices[pe].astype(np.int64), None)
            for pe in range(n_pes)
        ]

    # ----------------------------------------------------------- process
    def process(self, pe: int, tasks: np.ndarray) -> RoundOutcome:
        part = self.partition
        rows = part.local_index[tasks]
        residual_pe = self.residual_slices[pe]
        self._counters["vertices_relaxed"] += len(tasks)

        # Absorb residual into rank; clear queue membership.
        taken = residual_pe[rows].copy()
        residual_pe[rows] = 0.0
        self.in_queue_slices[pe][rows] = False
        self.rank_slices[pe][rows] += taken

        subgraph = part.subgraphs[pe]
        degrees = (
            subgraph.indptr[rows + 1] - subgraph.indptr[rows]
        ).astype(np.float64)
        targets, origin = subgraph.expand_batch(rows)
        if len(targets) == 0:
            return RoundOutcome(edges_processed=0)
        contribution = (
            self.alpha * taken / np.maximum(degrees, 1.0)
        )[origin]
        owners = part.owner[targets]
        local_mask = owners == pe

        outcome = RoundOutcome(edges_processed=len(targets))

        local_targets = targets[local_mask].astype(np.int64)
        if len(local_targets):
            local_rows = part.local_index[local_targets]
            outcome.conflicts = len(local_rows)  # refined below
            # Accumulate via bincount (linear, no sort) and find touched
            # rows with a slice-sized mask — both O(batch + slice).
            deltas = np.bincount(
                local_rows,
                weights=contribution[local_mask],
                minlength=len(residual_pe),
            )
            touched = np.flatnonzero(deltas)
            outcome.conflicts = len(local_rows) - len(touched)
            residual_pe[touched] += deltas[touched]
            ready = (residual_pe[touched] >= self.epsilon) & (
                ~self.in_queue_slices[pe][touched]
            )
            enqueue_rows = touched[ready]
            self.in_queue_slices[pe][enqueue_rows] = True
            outcome.local_pushes = part.part_vertices[pe][enqueue_rows]

        remote_mask = ~local_mask
        if remote_mask.any():
            r_targets = targets[remote_mask].astype(np.int64)
            r_vals = contribution[remote_mask]
            r_owners = owners[remote_mask]
            for dst in np.unique(r_owners):
                sel = r_owners == dst
                dst_rows = part.local_index[r_targets[sel]]
                sums = np.bincount(
                    dst_rows,
                    weights=r_vals[sel],
                    minlength=part.part_size(int(dst)),
                )
                nz = np.flatnonzero(sums)
                outcome.remote_updates[int(dst)] = np.column_stack(
                    [
                        part.part_vertices[int(dst)][nz].astype(np.float64),
                        sums[nz],
                    ]
                )
        return outcome

    # ------------------------------------------------------ remote side
    def handle_remote(self, pe: int, payload: np.ndarray):
        verts = payload[:, 0].astype(np.int64)
        vals = payload[:, 1]
        if len(verts) > 1:
            # Merged aggregated batches may repeat a vertex: sum the
            # contributions per vertex before applying, so each vertex
            # is considered for enqueueing exactly once.
            uniq, inverse = np.unique(verts, return_inverse=True)
            if len(uniq) < len(verts):
                sums = np.zeros(len(uniq))
                np.add.at(sums, inverse, vals)
                verts, vals = uniq, sums
        rows = self.partition.local_index[verts]
        residual_pe = self.residual_slices[pe]
        residual_pe[rows] += vals  # rows now unique
        self._counters["remote_updates_applied"] += len(verts)
        touched = rows
        ready = (residual_pe[touched] >= self.epsilon) & (
            ~self.in_queue_slices[pe][touched]
        )
        enqueue_rows = touched[ready]
        self.in_queue_slices[pe][enqueue_rows] = True
        return (
            self.partition.part_vertices[pe][enqueue_rows].astype(np.int64),
            None,
        )

    # ---------------------------------------------------------- recovery
    supports_recovery = True

    def checkpoint_state(self) -> dict[str, np.ndarray]:
        """Raw global rank and residual arrays at a quiesced cut.

        Deliberately *not* :meth:`result` (which folds residual into
        rank for output): restore needs the two arrays separate so the
        replayed frontier re-absorbs exactly the checkpointed residuals.
        """
        n = self.graph.n_vertices
        rank = np.zeros(n)
        residual = np.zeros(n)
        for pe in range(self.partition.n_parts):
            verts = self.partition.part_vertices[pe]
            rank[verts] = self.rank_slices[pe]
            residual[verts] = self.residual_slices[pe]
        return {"rank": rank, "residual": residual}

    def restore_state(
        self, state: dict[str, np.ndarray], partition: Partition
    ) -> None:
        """Re-slice ranks/residuals onto a (re-homed) partition.

        Queue membership is cleared here and re-marked per rank by
        :meth:`mark_queued` as the recovery coordinator replays the
        checkpoint frontier — the flags must mirror the queues exactly
        or a vertex could be enqueued twice (or never again).
        """
        self.partition = partition
        self.rank_slices = [
            state["rank"][partition.part_vertices[pe]].copy()
            for pe in range(partition.n_parts)
        ]
        self.residual_slices = [
            state["residual"][partition.part_vertices[pe]].copy()
            for pe in range(partition.n_parts)
        ]
        self.in_queue_slices = [
            np.zeros(partition.part_size(pe), dtype=bool)
            for pe in range(partition.n_parts)
        ]

    def mark_queued(self, pe: int, tasks: np.ndarray) -> None:
        """Replayed frontier vertices are back in the queue."""
        self.in_queue_slices[pe][self.partition.local_index[tasks]] = True

    # ------------------------------------------------------------ output
    def result(self) -> np.ndarray:
        """Global rank array (un-normalized residual-push ranks)."""
        out = np.zeros(self.graph.n_vertices)
        for pe in range(self.partition.n_parts):
            # Residual below epsilon is unconverged mass; fold it in so
            # the result is within n*epsilon of the fixpoint.
            out[self.partition.part_vertices[pe]] = (
                self.rank_slices[pe] + self.residual_slices[pe]
            )
        return out

    def counters(self) -> Counters:
        return self._counters
