"""Level-synchronous BFS formulations used by the baseline frameworks.

Gunrock runs BSP push BFS: one advance kernel per level, a host-side
synchronization, then a bulk exchange of remote frontier updates.
Galois runs direction-optimized BFS (push when the frontier is small,
pull when it is large) with a bulk Gluon sync per round.

These functions execute the *algorithm* exactly (on the real graph,
producing the real depth array for validation) while recording the
per-level quantities — frontier and edge work per PE, remote update
matrix — that the frameworks' cost models turn into time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition

__all__ = ["LevelTrace", "BFSTraceResult", "bsp_bfs_trace",
           "direction_optimized_bfs_trace"]

UNREACHED = np.iinfo(np.int32).max


@dataclass
class LevelTrace:
    """Work and communication of one BSP level."""

    level: int
    direction: str  # "push" | "pull"
    frontier_per_pe: np.ndarray  # int64[n_pes]
    edges_per_pe: np.ndarray  # int64[n_pes]
    #: remote_updates[i, j] = update count PE i sends PE j this level.
    remote_updates: np.ndarray  # int64[n_pes, n_pes]


@dataclass
class BFSTraceResult:
    """The whole run: final depths plus the per-level cost inputs."""

    depth: np.ndarray
    levels: list[LevelTrace] = field(default_factory=list)

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    def total_edges(self) -> int:
        return int(sum(t.edges_per_pe.sum() for t in self.levels))


def _remote_update_matrix(
    partition: Partition,
    src_pe_of_update: np.ndarray,
    dst_vertex: np.ndarray,
) -> np.ndarray:
    """Count deduplicated (src PE -> dst vertex) updates per PE pair."""
    n = partition.n_parts
    matrix = np.zeros((n, n), dtype=np.int64)
    if len(dst_vertex) == 0:
        return matrix
    dst_pe = partition.owner[dst_vertex]
    keys = (
        src_pe_of_update.astype(np.int64) * n + dst_pe
    ) * partition.n_vertices + dst_vertex
    unique_keys = np.unique(keys)
    pair = unique_keys // partition.n_vertices
    np.add.at(
        matrix, (pair // n, pair % n), 1
    )
    return matrix


def bsp_bfs_trace(
    graph: CSRGraph, partition: Partition, source: int
) -> BFSTraceResult:
    """Classic BSP push BFS (the Gunrock formulation)."""
    depth = np.full(graph.n_vertices, UNREACHED, dtype=np.int64)
    depth[source] = 0
    frontier = np.array([source], dtype=np.int64)
    result = BFSTraceResult(depth=depth)
    level = 0
    n_pes = partition.n_parts
    while len(frontier):
        frontier_per_pe = np.bincount(
            partition.owner[frontier], minlength=n_pes
        ).astype(np.int64)
        targets, origin = graph.expand_batch(frontier)
        src_pe = partition.owner[frontier[origin]]
        edges_per_pe = np.bincount(src_pe, minlength=n_pes).astype(np.int64)
        improved = depth[targets] == UNREACHED
        new_frontier = np.unique(targets[improved]).astype(np.int64)
        # Remote updates: improved targets owned by another PE.
        cross = improved & (src_pe != partition.owner[targets])
        remote = _remote_update_matrix(
            partition, src_pe[cross], targets[cross].astype(np.int64)
        )
        result.levels.append(
            LevelTrace(
                level=level,
                direction="push",
                frontier_per_pe=frontier_per_pe,
                edges_per_pe=edges_per_pe,
                remote_updates=remote,
            )
        )
        level += 1
        depth[new_frontier] = level
        frontier = new_frontier
    return result


def direction_optimized_bfs_trace(
    graph: CSRGraph,
    partition: Partition,
    source: int,
    pull_threshold: float = 0.05,
    reverse: CSRGraph | None = None,
) -> BFSTraceResult:
    """Direction-optimized BFS (the Galois formulation).

    Levels whose frontier exceeds ``pull_threshold * n`` run in pull
    direction: every unvisited vertex scans its in-edges for a visited
    parent.  Pull levels exchange frontier membership bitmaps instead
    of per-edge updates (Gluon's bitvector sync).
    """
    if reverse is None:
        reverse = graph.reverse()
    depth = np.full(graph.n_vertices, UNREACHED, dtype=np.int64)
    depth[source] = 0
    frontier = np.array([source], dtype=np.int64)
    result = BFSTraceResult(depth=depth)
    level = 0
    n_pes = partition.n_parts
    n = graph.n_vertices
    while len(frontier):
        use_pull = len(frontier) > pull_threshold * n
        frontier_per_pe = np.bincount(
            partition.owner[frontier], minlength=n_pes
        ).astype(np.int64)
        if use_pull:
            unvisited = np.flatnonzero(depth == UNREACHED)
            targets, origin = reverse.expand_batch(unvisited)
            # Each unvisited vertex scans in-neighbors until one is in
            # the frontier; cost model charges the full scan (upper
            # bound, as Galois's bitvector test is per-edge anyway).
            edges_per_pe = np.bincount(
                partition.owner[unvisited[origin]], minlength=n_pes
            ).astype(np.int64)
            found = depth[targets] == level
            new_frontier = np.unique(unvisited[origin[found]]).astype(
                np.int64
            )
            # Pull sync: every PE broadcasts its frontier bitmap slice.
            remote = np.zeros((n_pes, n_pes), dtype=np.int64)
            for i in range(n_pes):
                for j in range(n_pes):
                    if i != j:
                        # bitmap of owned vertices, in "updates" (bits/64)
                        remote[i, j] = max(
                            1, partition.part_size(i) // 64
                        )
            direction = "pull"
        else:
            targets, origin = graph.expand_batch(frontier)
            src_pe = partition.owner[frontier[origin]]
            edges_per_pe = np.bincount(
                src_pe, minlength=n_pes
            ).astype(np.int64)
            improved = depth[targets] == UNREACHED
            new_frontier = np.unique(targets[improved]).astype(np.int64)
            cross = improved & (src_pe != partition.owner[targets])
            remote = _remote_update_matrix(
                partition, src_pe[cross], targets[cross].astype(np.int64)
            )
            direction = "push"
        result.levels.append(
            LevelTrace(
                level=level,
                direction=direction,
                frontier_per_pe=frontier_per_pe,
                edges_per_pe=edges_per_pe,
                remote_updates=remote,
            )
        )
        level += 1
        depth[new_frontier] = level
        frontier = new_frontier
    return result
