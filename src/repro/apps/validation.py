"""Serial reference implementations: the correctness oracles.

Every simulated framework run is validated against these on the same
graph — BFS depths must match exactly; PageRank ranks must agree
within the convergence tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.stats import bfs_levels

__all__ = ["reference_bfs", "reference_pagerank", "pagerank_close"]


def reference_bfs(graph: CSRGraph, source: int) -> np.ndarray:
    """Level-synchronous serial BFS (int64, UNREACHED = int32 max)."""
    return bfs_levels(graph, source).astype(np.int64)


def reference_pagerank(
    graph: CSRGraph,
    alpha: float = 0.85,
    epsilon: float = 1e-4,
    max_iterations: int = 10000,
) -> np.ndarray:
    """Serial residual-push PageRank (same fixpoint as the async one).

    Runs Gauss-Seidel-style sweeps until every residual is below
    ``epsilon``; returns rank + leftover residual, matching
    :meth:`repro.apps.pagerank.AtosPageRank.result`'s convention.
    """
    n = graph.n_vertices
    rank = np.zeros(n)
    residual = np.full(n, 1.0 - alpha)
    degrees = np.asarray(graph.out_degree()).astype(np.float64)
    for _ in range(max_iterations):
        active = np.flatnonzero(residual >= epsilon)
        if len(active) == 0:
            break
        taken = residual[active].copy()
        residual[active] = 0.0
        rank[active] += taken
        contribution = alpha * taken / np.maximum(degrees[active], 1.0)
        targets, origin = graph.expand_batch(active)
        np.add.at(residual, targets, contribution[origin])
    return rank + residual


def pagerank_close(
    a: np.ndarray, b: np.ndarray, epsilon: float = 1e-4
) -> bool:
    """Are two residual-PR solutions equal up to unconverged mass?

    Each run can leave up to ``epsilon`` unpropagated residual per
    vertex, which a neighborhood of propagation steps can amplify by
    at most ``1/(1-alpha)``; a conservative per-vertex bound of
    ``10 * epsilon`` plus a small relative term covers it.
    """
    return bool(np.all(np.abs(a - b) <= 10 * epsilon + 1e-3 * np.abs(b)))
