"""Single-source shortest paths on the Atos runtime.

SSSP is the application where the distributed *priority* queue earns
its keep: with a FIFO queue, asynchronous relaxation degenerates into
Bellman-Ford-style re-relaxation storms; with the bucketed priority
queue (threshold + threshold_delta), execution becomes distributed
delta-stepping — each discrete launch settles one distance band.
The paper positions the priority queue as a general scheduling-
preference mechanism ("can significantly improve application
performance"); SSSP demonstrates it beyond the BFS use.

Structure matches :class:`~repro.apps.bfs.AtosBFS` with ``atomicMin``
over float distances and ``priority = tentative distance``.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.atomics import atomic_min_relaxed
from repro.graph.partition import Partition
from repro.graph.weights import WeightedGraph
from repro.metrics.counters import Counters
from repro.runtime.executor import AtosApplication, RoundOutcome

__all__ = ["AtosSSSP", "reference_sssp", "UNREACHED_DIST"]

UNREACHED_DIST = np.inf


def reference_sssp(weighted: WeightedGraph, source: int) -> np.ndarray:
    """Dijkstra via scipy (the validation oracle)."""
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra

    graph = weighted.graph
    matrix = csr_matrix(
        (weighted.weights, graph.indices, graph.indptr),
        shape=(graph.n_vertices, graph.n_global),
    )
    return dijkstra(matrix, directed=True, indices=source)


class AtosSSSP(AtosApplication):
    """Asynchronous push SSSP (delta-stepping under a priority queue)."""

    name = "sssp"

    def __init__(
        self, weighted: WeightedGraph, partition: Partition, source: int
    ):
        if not 0 <= source < weighted.n_vertices:
            raise ValueError("source out of range")
        self.weighted = weighted
        self.partition = partition
        self.source = source
        self.dist_slices: list[np.ndarray] = []
        self._sub_weights: list[WeightedGraph] = []
        self._counters = Counters()

    def setup(self, n_pes: int):
        if n_pes != self.partition.n_parts:
            raise ValueError("partition does not match PE count")
        part = self.partition
        self.dist_slices = [
            np.full(part.part_size(pe), UNREACHED_DIST)
            for pe in range(n_pes)
        ]
        self._sub_weights = [
            self.weighted.row_subweights(part.part_vertices[pe])
            for pe in range(n_pes)
        ]
        src_pe = int(part.owner[self.source])
        self.dist_slices[src_pe][part.local_index[self.source]] = 0.0
        seeds = [
            (np.empty(0, dtype=np.int64), None) for _ in range(n_pes)
        ]
        seeds[src_pe] = (
            np.array([self.source], dtype=np.int64),
            np.array([0.0]),
        )
        return seeds

    def process(self, pe: int, tasks: np.ndarray) -> RoundOutcome:
        part = self.partition
        dist_pe = self.dist_slices[pe]
        rows = part.local_index[tasks]
        self._counters["vertices_relaxed"] += len(tasks)

        targets, origin, weights = self._sub_weights[pe].expand_batch(rows)
        if len(targets) == 0:
            return RoundOutcome(edges_processed=0)
        candidate = dist_pe[rows][origin] + weights
        owners = part.owner[targets]
        local_mask = owners == pe
        outcome = RoundOutcome(edges_processed=len(targets))

        local_targets = targets[local_mask].astype(np.int64)
        if len(local_targets):
            local_rows = part.local_index[local_targets]
            cand = candidate[local_mask]
            old = atomic_min_relaxed(dist_pe, local_rows, cand)
            improved = cand < old
            pushes, keep = np.unique(
                local_targets[improved], return_index=True
            )
            outcome.local_pushes = pushes
            outcome.local_priorities = cand[improved][keep]

        remote_mask = ~local_mask
        if remote_mask.any():
            r_targets = targets[remote_mask].astype(np.int64)
            r_cand = candidate[remote_mask]
            r_owners = owners[remote_mask]
            for dst in np.unique(r_owners):
                sel = r_owners == dst
                verts, pos = np.unique(r_targets[sel], return_inverse=True)
                best = np.full(len(verts), np.inf)
                np.minimum.at(best, pos, r_cand[sel])
                outcome.remote_updates[int(dst)] = np.column_stack(
                    [verts.astype(np.float64), best]
                )
        return outcome

    def handle_remote(self, pe: int, payload: np.ndarray):
        verts = payload[:, 0].astype(np.int64)
        candidate = payload[:, 1]
        if len(verts) > 1:
            uniq, inverse = np.unique(verts, return_inverse=True)
            if len(uniq) < len(verts):
                best = np.full(len(uniq), np.inf)
                np.minimum.at(best, inverse, candidate)
                verts, candidate = uniq, best
        rows = self.partition.local_index[verts]
        old = atomic_min_relaxed(self.dist_slices[pe], rows, candidate)
        improved = candidate < old
        self._counters["remote_updates_applied"] += len(verts)
        return verts[improved], candidate[improved]

    def result(self) -> np.ndarray:
        out = np.full(self.weighted.n_vertices, UNREACHED_DIST)
        for pe in range(self.partition.n_parts):
            out[self.partition.part_vertices[pe]] = self.dist_slices[pe]
        return out

    def counters(self) -> Counters:
        return self._counters
