"""Asynchronous push BFS on the Atos runtime (paper Listing 5 / §IV).

Workers pop vertices, propagate ``depth+1`` to all neighbors with
``atomicMin``, and push any neighbor whose depth improved — into the
local queue if owned locally, otherwise as a one-sided update to the
owner PE (which applies the atomicMin on arrival and enqueues the
vertex if it improved).

Speculation: out-of-order processing can visit a vertex at a
non-final depth, requiring a re-visit — the redundant work Table III
measures.  The priority configuration pushes with ``priority = depth``
so low-depth vertices process first, suppressing most re-visits.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpu.atomics import atomic_min_relaxed, duplicate_conflicts
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition
from repro.metrics.counters import Counters
from repro.runtime.executor import AtosApplication, RoundOutcome

__all__ = ["AtosBFS", "UNREACHED"]

UNREACHED = np.iinfo(np.int32).max


class AtosBFS(AtosApplication):
    """Push BFS as an Atos application.

    Tasks are *global* vertex ids; each PE only ever pops vertices it
    owns.  Remote payloads are ``int64[k, 2]`` arrays of (vertex,
    candidate depth) pairs, pre-reduced per destination (the worker's
    collective aggregation).
    """

    name = "bfs"

    def __init__(
        self, graph: CSRGraph, partition: Partition, source: int
    ):
        if not 0 <= source < graph.n_vertices:
            raise ValueError("source out of range")
        self.graph = graph
        self.partition = partition
        self.source = source
        self.depth_slices: list[np.ndarray] = []
        self._counters = Counters()

    # ------------------------------------------------------------- setup
    def setup(self, n_pes: int):
        if n_pes != self.partition.n_parts:
            raise ValueError("partition does not match PE count")
        self.depth_slices = [
            np.full(self.partition.part_size(pe), UNREACHED, dtype=np.int64)
            for pe in range(n_pes)
        ]
        src_pe = int(self.partition.owner[self.source])
        self.depth_slices[src_pe][
            self.partition.local_index[self.source]
        ] = 0
        seeds: list[tuple[np.ndarray, Optional[np.ndarray]]] = [
            (np.empty(0, dtype=np.int64), None) for _ in range(n_pes)
        ]
        seeds[src_pe] = (
            np.array([self.source], dtype=np.int64),
            np.array([0.0]),
        )
        return seeds

    # ----------------------------------------------------------- process
    def process(self, pe: int, tasks: np.ndarray) -> RoundOutcome:
        part = self.partition
        depth_pe = self.depth_slices[pe]
        rows = part.local_index[tasks]
        self._counters["vertices_visited"] += len(tasks)

        targets, origin = part.subgraphs[pe].expand_batch(rows)
        if len(targets) == 0:
            return RoundOutcome(edges_processed=0)
        new_depth = depth_pe[rows][origin] + 1
        owners = part.owner[targets]
        local_mask = owners == pe

        outcome = RoundOutcome(edges_processed=len(targets))

        # Local neighbors: in-place atomicMin + push improved.
        local_targets = targets[local_mask].astype(np.int64)
        if len(local_targets):
            local_rows = part.local_index[local_targets]
            candidate = new_depth[local_mask]
            outcome.conflicts = duplicate_conflicts(local_rows)
            old = atomic_min_relaxed(depth_pe, local_rows, candidate)
            improved = candidate < old
            pushes, keep = np.unique(
                local_targets[improved], return_index=True
            )
            outcome.local_pushes = pushes
            outcome.local_priorities = candidate[improved][keep].astype(
                np.float64
            )

        # Remote neighbors: one-sided (vertex, depth) updates to owners,
        # reduced per vertex before leaving the worker (coalescing).
        remote_mask = ~local_mask
        if remote_mask.any():
            r_targets = targets[remote_mask].astype(np.int64)
            r_depth = new_depth[remote_mask]
            r_owners = owners[remote_mask]
            for dst in np.unique(r_owners):
                sel = r_owners == dst
                verts, vert_pos = np.unique(
                    r_targets[sel], return_inverse=True
                )
                best = np.full(len(verts), np.iinfo(np.int64).max)
                np.minimum.at(best, vert_pos, r_depth[sel])
                outcome.remote_updates[int(dst)] = np.column_stack(
                    [verts, best]
                )
        return outcome

    # ------------------------------------------------------ remote side
    def handle_remote(self, pe: int, payload: np.ndarray):
        verts = payload[:, 0]
        candidate = payload[:, 1]
        if len(verts) > 1:
            # Merged aggregated batches can repeat a vertex: keep the
            # minimum candidate depth per vertex before applying.
            uniq, inverse = np.unique(verts, return_inverse=True)
            if len(uniq) < len(verts):
                best = np.full(len(uniq), np.iinfo(np.int64).max)
                np.minimum.at(best, inverse, candidate)
                verts, candidate = uniq, best
        rows = self.partition.local_index[verts]
        old = atomic_min_relaxed(self.depth_slices[pe], rows, candidate)
        improved = candidate < old
        self._counters["remote_updates_applied"] += len(verts)
        return (
            verts[improved],
            candidate[improved].astype(np.float64),
        )

    # ---------------------------------------------------------- recovery
    supports_recovery = True

    def checkpoint_state(self) -> dict[str, np.ndarray]:
        """Global depth array — the whole BFS state at a quiesced cut."""
        return {"depth": self.result()}

    def restore_state(
        self, state: dict[str, np.ndarray], partition: Partition
    ) -> None:
        """Re-slice the checkpointed depths onto a (re-homed) partition.

        Safe to replay from: the relaxation is an atomic-min, so
        re-processing a frontier vertex at its checkpointed depth is
        idempotent.
        """
        depth = state["depth"]
        self.partition = partition
        self.depth_slices = [
            depth[partition.part_vertices[pe]].copy()
            for pe in range(partition.n_parts)
        ]

    # ------------------------------------------------------------ output
    def result(self) -> np.ndarray:
        """Global depth array (UNREACHED where BFS never arrived)."""
        out = np.full(self.graph.n_vertices, UNREACHED, dtype=np.int64)
        for pe in range(self.partition.n_parts):
            out[self.partition.part_vertices[pe]] = self.depth_slices[pe]
        return out

    def counters(self) -> Counters:
        return self._counters
