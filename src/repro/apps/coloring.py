"""Speculative greedy graph coloring on the Atos runtime.

The Atos single-GPU paper (ICPP'22, reference [16]) evaluates
speculative greedy coloring alongside BFS and PageRank; this module
brings it to the distributed runtime.  The asynchronous formulation:

* every vertex starts queued; a worker popping vertex ``v`` reads its
  neighbors' current colors and assigns ``v`` the smallest color not
  present among them (first-fit);
* speculation: two adjacent vertices may color themselves
  concurrently (or across PEs, with stale remote views) and collide.
  Conflicts are detected afterwards and the *lower-id* endpoint keeps
  its color while the other re-queues — guaranteeing progress (a
  vertex only re-colors when a strictly lower-id neighbor forced it,
  and ids are well-ordered).

Remote wrinkle: a PE does not hold remote neighbors' colors.  Each PE
keeps a *mirror* of its boundary neighbors' colors, updated by the
one-sided color announcements owners push on every (re-)coloring —
eventually-consistent state, exactly the PGAS pattern the runtime
exists to support.  Termination: quiescence of the distributed queue
(no conflicts left, every announcement delivered).

The graph must be symmetric (coloring is defined on undirected
adjacency).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition
from repro.metrics.counters import Counters
from repro.runtime.executor import AtosApplication, RoundOutcome

__all__ = ["AtosColoring", "greedy_coloring", "is_proper_coloring"]

UNCOLORED = -1


def greedy_coloring(graph: CSRGraph) -> np.ndarray:
    """Serial first-fit coloring in vertex order (quality reference)."""
    colors = np.full(graph.n_vertices, UNCOLORED, dtype=np.int64)
    for v in range(graph.n_vertices):
        used = set(
            int(c) for c in colors[graph.neighbors(v)] if c != UNCOLORED
        )
        color = 0
        while color in used:
            color += 1
        colors[v] = color
    return colors


def is_proper_coloring(graph: CSRGraph, colors: np.ndarray) -> bool:
    """No edge connects two vertices of the same color; none uncolored."""
    if np.any(colors == UNCOLORED):
        return False
    src, dst = graph.to_edges()
    return not bool(np.any(colors[src] == colors[dst]))


def _first_fit(neighbor_colors: np.ndarray) -> int:
    """Smallest non-negative integer absent from ``neighbor_colors``."""
    used = np.unique(neighbor_colors[neighbor_colors >= 0])
    for color, candidate in enumerate(used):
        if candidate != color:
            return color
    return len(used)


class AtosColoring(AtosApplication):
    """Asynchronous speculative first-fit coloring."""

    name = "coloring"

    def __init__(self, graph: CSRGraph, partition: Partition):
        self.graph = graph
        self.partition = partition
        #: Per-PE view of *every* vertex's color: authoritative for
        #: owned vertices, a mirror for remote ones.
        self.color_views: list[np.ndarray] = []
        self._counters = Counters()

    def setup(self, n_pes: int):
        if n_pes != self.partition.n_parts:
            raise ValueError("partition does not match PE count")
        self.color_views = [
            np.full(self.graph.n_vertices, UNCOLORED, dtype=np.int64)
            for _ in range(n_pes)
        ]
        return [
            (self.partition.part_vertices[pe].astype(np.int64), None)
            for pe in range(n_pes)
        ]

    def _color_batch(
        self, pe: int, tasks: np.ndarray
    ) -> RoundOutcome:
        part = self.partition
        view = self.color_views[pe]
        rows = part.local_index[tasks]
        outcome = RoundOutcome()
        self._counters["color_attempts"] += len(tasks)

        # Speculative: color the whole batch against the pre-round view
        # (concurrent workers cannot see each other's writes).
        new_colors = np.empty(len(tasks), dtype=np.int64)
        subgraph = part.subgraphs[pe]
        for i, row in enumerate(rows):
            neighbors = subgraph.neighbors(int(row))
            new_colors[i] = _first_fit(view[neighbors])
        view[tasks] = new_colors

        # Intra-batch + local conflicts: adjacent same-color pairs.
        targets, origin = subgraph.expand_batch(rows)
        if len(targets):
            conflict = view[targets] == new_colors[origin]
            # Lower id keeps its color; the higher-id endpoint redoes.
            loser_is_task = tasks[origin] > targets
            redo_tasks = np.unique(
                tasks[origin[conflict & loser_is_task]]
            )
            redo_neighbors = targets[conflict & ~loser_is_task]
            # A conflicting neighbor only re-queues if we own it (a
            # remote one will detect the conflict when our announcement
            # arrives at its owner).
            local_redo_neighbors = np.unique(
                redo_neighbors[part.owner[redo_neighbors] == pe]
            ).astype(np.int64)
            redo = np.union1d(redo_tasks, local_redo_neighbors)
            view[redo] = UNCOLORED
            outcome.local_pushes = redo
            self._counters["conflicts"] += len(redo)
            outcome.edges_processed = len(targets)

        # Announce (vertex, color) of everything still colored to every
        # PE that owns a neighbor (one-sided mirror updates).
        colored_mask = view[tasks] != UNCOLORED
        announce = tasks[colored_mask]
        if len(announce):
            announce_colors = view[announce]
            targets2, origin2 = subgraph.expand_batch(
                part.local_index[announce]
            )
            neighbor_owner = part.owner[targets2]
            for dst in np.unique(neighbor_owner):
                if dst == pe:
                    continue
                sel = neighbor_owner == dst
                verts = np.unique(announce[origin2[sel]])
                outcome.remote_updates[int(dst)] = np.column_stack(
                    [verts, view[verts]]
                )
        return outcome

    def process(self, pe: int, tasks: np.ndarray) -> RoundOutcome:
        return self._color_batch(pe, tasks)

    def handle_remote(self, pe: int, payload: np.ndarray):
        """Apply mirror updates; re-queue owned vertices now in conflict."""
        part = self.partition
        view = self.color_views[pe]
        verts = payload[:, 0].astype(np.int64)
        colors = payload[:, 1]
        view[verts] = colors
        self._counters["mirror_updates"] += len(verts)

        # Which of *our* vertices now collide with an announced color?
        # Conflict: local vertex u (colored) adjacent to announced v
        # with equal color and u > v (the higher id redoes; the
        # lower's announcement is what reveals the collision).
        targets, origin = part.subgraphs[pe].expand_batch(
            np.arange(part.part_size(pe))
        )
        announced = np.zeros(self.graph.n_vertices, dtype=bool)
        announced[verts] = True
        local_vertices = part.part_vertices[pe][origin]
        hits = (
            announced[targets]
            & (view[local_vertices] == view[targets])
            & (view[local_vertices] != UNCOLORED)
            & (local_vertices > targets)
        )
        redo_vertices = np.unique(local_vertices[hits]).astype(np.int64)
        view[redo_vertices] = UNCOLORED
        self._counters["conflicts"] += len(redo_vertices)
        return redo_vertices, None

    def result(self) -> np.ndarray:
        """Final colors (authoritative per-owner values)."""
        out = np.full(self.graph.n_vertices, UNCOLORED, dtype=np.int64)
        for pe in range(self.partition.n_parts):
            mine = self.partition.part_vertices[pe]
            out[mine] = self.color_views[pe][mine]
        return out

    def counters(self) -> Counters:
        return self._counters
