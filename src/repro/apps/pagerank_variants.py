"""BSP PageRank (the Gunrock formulation) and its level trace.

Gunrock's PageRank is bulk-synchronous: every iteration launches a
kernel that recomputes contributions over the *whole* frontier of
unconverged vertices, synchronizes with the host, and bulk-exchanges
boundary updates.  We execute the real iteration (topology-driven
residual sweep, which converges to the same fixpoint as the async
formulation) and record per-iteration work/communication for the cost
models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConvergenceError
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition

__all__ = ["PRIterTrace", "PRTraceResult", "bsp_pagerank_trace"]


@dataclass
class PRIterTrace:
    """Work and communication of one BSP PageRank iteration."""

    iteration: int
    active_per_pe: np.ndarray
    edges_per_pe: np.ndarray
    remote_updates: np.ndarray  # int64[n_pes, n_pes]


@dataclass
class PRTraceResult:
    rank: np.ndarray
    iterations: list[PRIterTrace] = field(default_factory=list)
    #: Unique (src PE -> dst PE) boundary-vertex counts of the whole
    #: graph; frameworks that sync the full boundary every round
    #: (Gluon's default for PR) cost this instead of the per-iteration
    #: active matrix.
    static_boundary: np.ndarray | None = None

    @property
    def n_iterations(self) -> int:
        return len(self.iterations)

    def total_edges(self) -> int:
        return int(sum(t.edges_per_pe.sum() for t in self.iterations))


def bsp_pagerank_trace(
    graph: CSRGraph,
    partition: Partition,
    alpha: float = 0.85,
    epsilon: float = 1e-4,
    max_iterations: int = 2000,
    work_model: str = "filtered",
) -> PRTraceResult:
    """Synchronous residual sweeps with frontier filtering.

    Iteration = relax *all* vertices whose residual >= epsilon at the
    iteration start (BSP: no within-iteration propagation of the new
    residuals), exchange boundary contributions in bulk, repeat.
    Converges to the same rank (+leftover residual) convention as
    :class:`repro.apps.pagerank.AtosPageRank`.

    ``work_model`` controls the *cost accounting* (never the result):

    * ``"filtered"`` — charge only active vertices/edges (a residual-
      pruned engine like Gluon's PR).
    * ``"full"`` — charge every vertex and edge each iteration
      (topology-driven engines like Gunrock's PR advance, which sweeps
      the full graph per iteration).
    """
    if work_model not in ("filtered", "full"):
        raise ValueError("work_model must be 'filtered' or 'full'")
    n = graph.n_vertices
    n_pes = partition.n_parts
    rank = np.zeros(n)
    residual = np.full(n, 1.0 - alpha)
    degrees = np.asarray(graph.out_degree()).astype(np.float64)
    result = PRTraceResult(rank=rank)

    # Precompute the boundary structure: unique (src PE -> dst vertex)
    # pairs, reused every iteration (Gluon memoizes this as well).
    src_all, dst_all = graph.to_edges()
    cross_mask = partition.owner[src_all] != partition.owner[dst_all]
    cross_keys = (
        partition.owner[src_all[cross_mask]].astype(np.int64) * n
        + dst_all[cross_mask]
    )
    unique_cross = np.unique(cross_keys)
    cross_src_pe = (unique_cross // n).astype(np.int64)
    cross_dst_pe = partition.owner[unique_cross % n]
    static_remote = np.zeros((n_pes, n_pes), dtype=np.int64)
    np.add.at(static_remote, (cross_src_pe, cross_dst_pe), 1)
    result.static_boundary = static_remote

    for iteration in range(max_iterations):
        active = np.flatnonzero(residual >= epsilon)
        if len(active) == 0:
            result.rank = rank + residual
            return result
        if work_model == "full":
            active_per_pe = np.array(
                [partition.part_size(pe) for pe in range(n_pes)],
                dtype=np.int64,
            )
        else:
            active_per_pe = np.bincount(
                partition.owner[active], minlength=n_pes
            ).astype(np.int64)
        taken = residual[active].copy()
        residual[active] = 0.0
        rank[active] += taken
        contribution = alpha * taken / np.maximum(degrees[active], 1.0)
        targets, origin = graph.expand_batch(active)
        src_pe = partition.owner[active[origin]]
        if work_model == "full":
            edges_per_pe = np.array(
                [partition.subgraphs[pe].n_edges for pe in range(n_pes)],
                dtype=np.int64,
            )
        else:
            edges_per_pe = np.bincount(
                src_pe, minlength=n_pes
            ).astype(np.int64)
        np.add.at(residual, targets, contribution[origin])

        # Boundary volume: active cross edges, deduplicated per dst
        # vertex (Gluon reduces per destination before the wire).
        cross = src_pe != partition.owner[targets]
        remote = np.zeros((n_pes, n_pes), dtype=np.int64)
        if cross.any():
            keys = (
                src_pe[cross].astype(np.int64) * n
                + targets[cross].astype(np.int64)
            )
            uniq = np.unique(keys)
            np.add.at(
                remote,
                ((uniq // n).astype(np.int64), partition.owner[uniq % n]),
                1,
            )
        result.iterations.append(
            PRIterTrace(
                iteration=iteration,
                active_per_pe=active_per_pe,
                edges_per_pe=edges_per_pe,
                remote_updates=remote,
            )
        )
    raise ConvergenceError(
        f"BSP PageRank did not converge in {max_iterations} iterations"
    )
