"""Atos (SC22) reproduction: PGAS-style dynamic scheduling for
multi-GPU irregular parallelism, built on a discrete-event multi-GPU
simulator.

Public API tour:

* :mod:`repro.sim` — the discrete-event simulation engine.
* :mod:`repro.gpu` — GPU device model (occupancy, workers, atomics).
* :mod:`repro.interconnect` — NVLink / PCIe / InfiniBand models.
* :mod:`repro.queues` — the Atos counter queue and its baselines.
* :mod:`repro.pgas` — symmetric heap and one-sided operations.
* :mod:`repro.runtime` — the Atos runtime (queues, aggregator, executor).
* :mod:`repro.apps` — BFS and PageRank applications.
* :mod:`repro.frameworks` — Atos + Gunrock/Groute/Galois-like drivers.
* :mod:`repro.graph` — CSR graphs, generators, datasets, partitioners.
* :mod:`repro.harness` — experiment grids for every table and figure.
"""

from repro._version import __version__

__all__ = ["__version__"]
