"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The event loop ran out of events while processes were still waiting."""


class RetryBudgetExhausted(SimulationError):
    """A reliable-transport message ran out of retransmission attempts.

    Carries the link coordinates so a recovery layer can tell "the
    receiving rank is dead" (escalate to rank recovery) apart from "the
    link is flaky" (a genuine delivery failure that must stay loud).
    """

    def __init__(self, src: int, dst: int, seq: int, attempts: int):
        super().__init__(
            f"retry budget exhausted: message {src}->{dst}#{seq} "
            f"unacked after {attempts} attempts"
        )
        self.src = src
        self.dst = dst
        self.seq = seq
        self.attempts = attempts


class RecoveryError(SimulationError):
    """The fail-stop recovery protocol reached an inconsistent state."""


class PartitionWorkerLost(SimulationError):
    """A partitioned-run worker process died (pipe EOF / broken pipe).

    The typed form of "the OS took a worker from us": raised by the
    pooled driver's pipe proxies instead of the raw ``EOFError`` /
    ``BrokenPipeError``, so the window coordinator can tell a
    recoverable fail-stop loss (respawn the worker and replay its
    journal) apart from a genuine protocol error.  ``window`` is filled
    in by the coordinator when the loss surfaces mid-run (``None``
    before the first window or during finalize).
    """

    def __init__(
        self,
        partition: int,
        window: "int | None" = None,
        exitcode: "int | None" = None,
    ):
        at = f" at window {window}" if window is not None else ""
        code = f" (exitcode {exitcode})" if exitcode is not None else ""
        super().__init__(
            f"partition worker {partition} lost{at}{code}"
        )
        self.partition = partition
        self.window = window
        self.exitcode = exitcode


class WorkerCrashed(ReproError):
    """A serve-fleet worker died while executing a job.

    Attached to the fleet's result (and threaded through the service's
    retry path) instead of a bare "crashed" string, carrying what the
    retry/quarantine policy needs: which job (``tag``), which spec
    (``spec_key``), and which attempt this was.
    """

    def __init__(self, tag: int, spec_key: str, attempt: int = 1):
        super().__init__(
            f"fleet worker crashed on job #{tag} ({spec_key}), "
            f"attempt {attempt}"
        )
        self.tag = tag
        self.spec_key = spec_key
        self.attempt = attempt


class ProcessInterrupt(ReproError):
    """Raised inside a process generator when it is interrupted."""

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class QueueFullError(ReproError):
    """A bounded concurrent queue overflowed its capacity."""


class QueueEmptyError(ReproError):
    """A pop was attempted on a queue with no committed items."""


class PartitionError(ReproError):
    """A graph partitioning request was invalid or infeasible."""


class TopologyError(ReproError):
    """An interconnect topology was malformed or a route was missing."""


class ConfigurationError(ReproError):
    """A system/machine configuration was inconsistent."""


class ConfigError(ConfigurationError):
    """A tuning knob or config-overlay value is out of bounds.

    The typed form of "this point is malformed": raised by the central
    bounds validation in :mod:`repro.config` (BATCH_SIZE >= 1,
    WAIT_TIME >= 0, partitions >= 1, known queue/driver names), so a
    bad design-space point fails loudly in the parent process before
    any worker is forked for it.  Subclasses
    :class:`ConfigurationError` so existing handlers keep working.
    """


class PGASError(ReproError):
    """An invalid one-sided memory operation (bad PE, bad offset, ...)."""


class ConvergenceError(ReproError):
    """An iterative application failed to converge within its budget."""
