"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The event loop ran out of events while processes were still waiting."""


class RetryBudgetExhausted(SimulationError):
    """A reliable-transport message ran out of retransmission attempts.

    Carries the link coordinates so a recovery layer can tell "the
    receiving rank is dead" (escalate to rank recovery) apart from "the
    link is flaky" (a genuine delivery failure that must stay loud).
    """

    def __init__(self, src: int, dst: int, seq: int, attempts: int):
        super().__init__(
            f"retry budget exhausted: message {src}->{dst}#{seq} "
            f"unacked after {attempts} attempts"
        )
        self.src = src
        self.dst = dst
        self.seq = seq
        self.attempts = attempts


class RecoveryError(SimulationError):
    """The fail-stop recovery protocol reached an inconsistent state."""


class ProcessInterrupt(ReproError):
    """Raised inside a process generator when it is interrupted."""

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class QueueFullError(ReproError):
    """A bounded concurrent queue overflowed its capacity."""


class QueueEmptyError(ReproError):
    """A pop was attempted on a queue with no committed items."""


class PartitionError(ReproError):
    """A graph partitioning request was invalid or infeasible."""


class TopologyError(ReproError):
    """An interconnect topology was malformed or a route was missing."""


class ConfigurationError(ReproError):
    """A system/machine configuration was inconsistent."""


class PGASError(ReproError):
    """An invalid one-sided memory operation (bad PE, bad offset, ...)."""


class ConvergenceError(ReproError):
    """An iterative application failed to converge within its budget."""
