"""Simulation-as-a-service: the ``repro serve`` subsystem.

A long-running asyncio HTTP service that multiplexes many concurrent
run/sweep requests over a persistent warm worker fleet, plus the
discrete-event model of that very service — the serving layer is a
queueing system, so the DES engine this repository reproduces can
validate its own front door (Little's law, M/M/1 latency nonlinearity,
priority starvation bounds).

Layers, bottom up:

* :mod:`repro.serve.protocol` — priority classes and the JSON codec
  for run specs and job records.
* :mod:`repro.serve.scheduler` — the bounded admission queue with
  smooth weighted round-robin priority scheduling.  **Shared verbatim**
  by the live service and the DES model, so the model cannot drift
  from the implementation it predicts.
* :mod:`repro.serve.stats` — service counters, per-priority latency
  histograms, and the recorded arrival log.
* :mod:`repro.serve.fleet` — the warm worker fleet (persistent
  processes reused across requests, instead of fork-per-cell).
* :mod:`repro.serve.service` — the asyncio HTTP front end.
* :mod:`repro.serve.client` — the stdlib HTTP client behind
  ``python -m repro submit/status/watch``.
* :mod:`repro.serve.model` / :mod:`repro.serve.validate` /
  :mod:`repro.serve.study` — the self-validation half: replay a
  recorded arrival log through the mirrored DES model and check the
  queueing-theory invariants.
"""

from repro.serve.protocol import (
    DEFAULT_PRIORITY,
    PRIORITY_CLASSES,
    spec_from_json,
    spec_to_json,
)
from repro.serve.scheduler import WeightedScheduler
from repro.serve.stats import Histogram, ServiceStats

__all__ = [
    "DEFAULT_PRIORITY",
    "PRIORITY_CLASSES",
    "Histogram",
    "ServiceStats",
    "WeightedScheduler",
    "spec_from_json",
    "spec_to_json",
]
