"""Persistent warm worker fleet for the serving layer.

:mod:`repro.harness.pool` forks one process per grid cell — right for
a batch grid, wrong for a service: a long-running server wants workers
that stay warm (loaded datasets, populated in-process memo, imported
driver stack) and are *reused* across requests.  This module keeps
``n`` worker processes alive, each running a recv/execute/send loop
over a duplex pipe, with the same failure envelope the pool
established: a worker that raises reports the traceback, one that
exceeds its deadline is killed, one that dies outright is detected by
pipe EOF — and in every case the fleet **respawns a replacement**, so
a poisoned cell degrades one request, never the service.

Thread model: ``submit`` is called from the event-loop thread (the
service guarantees an idle worker first); a single reaper thread waits
on all worker pipes and resolves :class:`concurrent.futures.Future`\\ s,
which asyncio consumes via ``wrap_future``.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from concurrent.futures import Future
from dataclasses import dataclass, replace
from multiprocessing.connection import wait as _wait_connections
from typing import Any, Callable, Optional

from repro.errors import WorkerCrashed
from repro.harness.pool import CellResult, RunSpec, _mp_context

__all__ = ["FleetResult", "WorkerFleet", "execute_serve_cell"]

#: Reaper poll interval (s): deadline checks between pipe waits.
_REAP_POLL_S = 0.1


def execute_serve_cell(
    spec: RunSpec, trace: bool = False
) -> tuple[Any, Optional[dict]]:
    """Default cell executor: the cached runner, optionally traced.

    Untraced cells go through :func:`repro.harness.runner.run` — the
    two-level cache makes repeated cells nearly free, and the result's
    ``cache_hits`` field tells the service whether this execution was
    served from disk.  Traced cells simulate fresh with spans on (the
    cache is bypassed both ways, mirroring ``repro profile``) and ship
    the Perfetto trace_event document alongside the result.
    """
    from repro.harness import runner

    if not trace:
        key = runner.run_key(
            spec.framework,
            spec.app,
            spec.dataset,
            spec.machine,
            spec.n_gpus,
            spec.validate,
            seed=spec.seed,
        )
        memo_hit = key in runner._memo
        result = runner.run(
            spec.framework,
            spec.app,
            spec.dataset,
            spec.machine,
            spec.n_gpus,
            validate=spec.validate,
            seed=spec.seed,
        )
        if memo_hit and not result.cache_hits:
            # A warm-worker memo hit is a cache hit as far as the
            # service is concerned; report it on a copy so the
            # worker's memoized object keeps its fresh-run accounting.
            result = replace(result, cache_hits=1, cache_misses=0)
        return result, None

    from repro.harness.runner import _compute, get_machine
    from repro.telemetry.export import to_trace_events
    from repro.telemetry.spans import TELEMETRY_ENV

    machine = get_machine(spec.machine, spec.n_gpus)
    saved = os.environ.get(TELEMETRY_ENV)
    os.environ[TELEMETRY_ENV] = "1"
    try:
        result = _compute(
            spec.framework,
            spec.app,
            spec.dataset,
            spec.n_gpus,
            spec.validate,
            machine,
            seed=spec.seed,
        )
    finally:
        if saved is None:
            os.environ.pop(TELEMETRY_ENV, None)
        else:
            os.environ[TELEMETRY_ENV] = saved
    trace_doc = None
    if result.telemetry is not None:
        trace_doc = to_trace_events(result.telemetry, result.time_ms * 1000.0)
        result.telemetry = None  # spans don't survive the pipe
    return result, trace_doc


def _fleet_worker_main(conn, run_fn) -> None:
    """Worker loop: recv ``(tag, spec, trace)``, execute, send back."""
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:  # drain sentinel
                break
            tag, spec, trace = message
            start = time.perf_counter()
            try:
                result, trace_doc = run_fn(spec, trace)
                conn.send(
                    (
                        tag,
                        "ok",
                        result,
                        time.perf_counter() - start,
                        trace_doc,
                    )
                )
            except BaseException:
                conn.send(
                    (
                        tag,
                        "error",
                        traceback.format_exc(),
                        time.perf_counter() - start,
                        None,
                    )
                )
    finally:
        conn.close()


@dataclass
class FleetResult:
    """What a worker produced for one cell."""

    cell: CellResult
    trace: Optional[dict] = None
    #: Index of the worker that ran (or was killed for) this cell.
    worker: int = -1
    #: Set when the worker *process* died under the job (pipe EOF) —
    #: the typed signal the service's retry/quarantine policy keys on,
    #: as opposed to an in-worker exception (``cell.status ==
    #: "error"``, deterministic, never retried).
    failure: Optional[WorkerCrashed] = None


class _Worker:
    """One live fleet member."""

    __slots__ = ("index", "process", "conn", "job")

    def __init__(self, index: int, process, conn):
        self.index = index
        self.process = process
        self.conn = conn
        #: (tag, spec, future, deadline) while busy, else None.
        self.job: Optional[tuple[int, RunSpec, Future, Optional[float]]] = None


class WorkerFleet:
    """``n`` persistent worker processes with crash respawn and drain."""

    def __init__(
        self,
        workers: int,
        run_fn: Callable[[RunSpec, bool], tuple[Any, Optional[dict]]]
        = execute_serve_cell,
        timeout_s: Optional[float] = None,
        on_idle: Optional[Callable[[], None]] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.n_workers = workers
        self.run_fn = run_fn
        self.timeout_s = timeout_s
        #: Called (from the reaper thread) whenever a worker frees up;
        #: the service bridges this into its asyncio loop.
        self.on_idle = on_idle
        self._ctx = _mp_context()
        self._lock = threading.Lock()
        self._workers: dict[int, _Worker] = {}
        self._tag = 0
        self._next_index = workers
        self._closing = False
        self.respawns = 0
        for index in range(workers):
            self._workers[index] = self._spawn(index)
        self._reaper = threading.Thread(
            target=self._reap_loop, name="fleet-reaper", daemon=True
        )
        self._reaper.start()

    # -- lifecycle --------------------------------------------------------
    def _spawn(self, index: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_fleet_worker_main,
            args=(child_conn, self.run_fn),
            daemon=True,
            name=f"repro-fleet-{index}",
        )
        process.start()
        child_conn.close()
        return _Worker(index, process, parent_conn)

    @property
    def idle_count(self) -> int:
        with self._lock:
            return sum(1 for w in self._workers.values() if w.job is None)

    @property
    def busy_count(self) -> int:
        with self._lock:
            return sum(1 for w in self._workers.values() if w.job is not None)

    def submit(
        self,
        spec: RunSpec,
        trace: bool = False,
        timeout_s: Optional[float] = None,
    ) -> "Future[FleetResult]":
        """Hand ``spec`` to an idle worker; raises if none is idle.

        The service's scheduler loop only dispatches while
        ``idle_count > 0``, so hitting the ``RuntimeError`` means a
        bookkeeping bug, not load.
        """
        timeout_s = self.timeout_s if timeout_s is None else timeout_s
        future: Future[FleetResult] = Future()
        with self._lock:
            if self._closing:
                raise RuntimeError("fleet is draining")
            worker = next(
                (w for w in self._workers.values() if w.job is None), None
            )
            if worker is None:
                raise RuntimeError("no idle worker")
            self._tag += 1
            deadline = (
                time.monotonic() + timeout_s if timeout_s else None
            )
            worker.job = (self._tag, spec, future, deadline)
            worker.conn.send((self._tag, spec, trace))
        return future

    # -- reaper -----------------------------------------------------------
    def _reap_loop(self) -> None:
        while True:
            with self._lock:
                if self._closing and not self._workers:
                    return
                conns = {
                    w.conn: w for w in self._workers.values()
                }
            if not conns:
                time.sleep(_REAP_POLL_S)
                continue
            try:
                ready = _wait_connections(list(conns), timeout=_REAP_POLL_S)
            except (OSError, ValueError):
                # A connection was closed under us mid-drain; re-snapshot.
                continue
            now = time.monotonic()
            for conn in ready:
                worker = conns[conn]
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    self._handle_death(worker)
                    continue
                self._handle_message(worker, message)
            self._check_deadlines(now)

    def _handle_message(self, worker: _Worker, message) -> None:
        tag, status, payload, wall, trace_doc = message
        with self._lock:
            job = worker.job
            worker.job = None
        if job is None or job[0] != tag:
            return  # stale reply from a pre-kill job; drop it
        _, spec, future, _ = job
        if status == "ok":
            cell = CellResult(spec, "ok", result=payload, wall_clock_s=wall)
        else:
            cell = CellResult(spec, "error", error=payload, wall_clock_s=wall)
        future.set_result(
            FleetResult(cell=cell, trace=trace_doc, worker=worker.index)
        )
        self._notify_idle()

    def _handle_death(self, worker: _Worker) -> None:
        """Pipe EOF: the worker died.  Fail its job and respawn."""
        with self._lock:
            job = worker.job
            worker.job = None  # the death path owns it from here
            self._workers.pop(worker.index, None)
            closing = self._closing
        worker.process.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if job is not None:
            tag, spec, future, _ = job
            crashed = WorkerCrashed(
                tag, f"{spec.framework}:{spec.app}:{spec.dataset}"
            )
            future.set_result(
                FleetResult(
                    cell=CellResult(
                        spec,
                        "crashed",
                        error="fleet worker died without reporting a result",
                    ),
                    worker=worker.index,
                    failure=crashed,
                )
            )
        if not closing:
            with self._lock:
                index = self._next_index
                self._next_index += 1
                self._workers[index] = self._spawn(index)
                self.respawns += 1
            self._notify_idle()

    def _check_deadlines(self, now: float) -> None:
        expired = []
        with self._lock:
            for worker in self._workers.values():
                if worker.job is not None and worker.job[3] is not None:
                    if now > worker.job[3]:
                        expired.append(worker)
        for worker in expired:
            with self._lock:
                job = worker.job
                worker.job = None
                self._workers.pop(worker.index, None)
            worker.process.terminate()
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover
                worker.process.kill()
                worker.process.join(timeout=5.0)
            worker.conn.close()
            if job is not None:
                _, spec, future, _ = job
                future.set_result(
                    FleetResult(
                        cell=CellResult(
                            spec,
                            "timeout",
                            error="exceeded the per-cell deadline",
                        ),
                        worker=worker.index,
                    )
                )
            with self._lock:
                if not self._closing:
                    index = self._next_index
                    self._next_index += 1
                    self._workers[index] = self._spawn(index)
                    self.respawns += 1
            self._notify_idle()

    def _notify_idle(self) -> None:
        if self.on_idle is not None:
            try:
                self.on_idle()
            except Exception:  # pragma: no cover - callback bug
                pass

    # -- drain ------------------------------------------------------------
    def drain(self, grace_s: float = 30.0) -> None:
        """Let in-flight cells finish, then stop every worker.

        Busy workers get up to ``grace_s`` to report; survivors are
        terminated.  Safe to call more than once.
        """
        with self._lock:
            self._closing = True
        deadline = time.monotonic() + grace_s
        while time.monotonic() < deadline and self.busy_count:
            time.sleep(0.05)
        with self._lock:
            workers = list(self._workers.values())
            self._workers.clear()
        for worker in workers:
            try:
                worker.conn.send(None)
            except (OSError, BrokenPipeError):
                pass
        for worker in workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover
                worker.process.kill()
                worker.process.join(timeout=2.0)
            worker.conn.close()
        self._reaper.join(timeout=5.0)

    def kill(self) -> None:
        """Hard stop: no grace, no sentinels."""
        with self._lock:
            self._closing = True
            workers = list(self._workers.values())
            self._workers.clear()
        for worker in workers:
            worker.process.kill()
            worker.process.join(timeout=5.0)
            worker.conn.close()
        self._reaper.join(timeout=5.0)
