"""Queueing-theory validators for the serving layer.

Three invariants a correct service (and a faithful model of it) must
exhibit:

* **Little's law** — the time-average number of jobs in the system
  equals arrival rate times mean time in system, ``L = lambda * W``.
  Checked non-circularly: ``L`` comes from sampled occupancy, ``W``
  and ``lambda`` from per-job records.
* **M/M/1 latency nonlinearity** — with one worker and Markovian
  traffic, mean time in system is ``W = s / (1 - rho)``: latency must
  blow up hyperbolically (monotone *and* convex) as utilization
  approaches 1.  A service whose measured latencies stay linear in
  load is not telling the truth about its queue.
* **Bounded priority starvation** — smooth weighted round-robin
  guarantees a class with weight ``w`` at least ``w / sum(weights)``
  of the pops, so no class's mean wait may exceed the weighted-fair
  bound by more than a slack factor.  Strict priority (what the
  scheduler deliberately is not) violates this under overload.

Each check returns a :class:`CheckResult` carrying the measured
numbers, so the study harness can print them as the EXPERIMENTS table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.serve.model import ArrivalLog, ModelRun, ServiceModel
from repro.serve.stats import ServiceStats

__all__ = [
    "CheckResult",
    "littles_law_check",
    "mm1_theory_latency",
    "mm1_trend_check",
    "starvation_check",
    "compare_with_live",
]


@dataclass
class CheckResult:
    """Outcome of one queueing-theory check."""

    name: str
    ok: bool
    summary: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.ok


def littles_law_check(run: ModelRun, tol: float = 0.05) -> CheckResult:
    """``L = lambda * W`` within ``tol`` relative error.

    Sample-path Little's law holds exactly for a system observed from
    empty to empty; the residual here is sampling granularity plus
    edge effects, so a healthy trajectory lands well inside 5%.
    """
    lam = run.admitted_rate
    w = run.mean_latency_s()
    l_sampled = run.time_avg_in_system
    predicted = lam * w
    rel_err = abs(l_sampled - predicted) / max(predicted, 1e-12)
    ok = rel_err <= tol and run.completed()
    return CheckResult(
        name="littles_law",
        ok=bool(ok),
        summary=(
            f"L={l_sampled:.4f} vs lambda*W={predicted:.4f} "
            f"(rel err {rel_err * 100:.2f}%, tol {tol * 100:.0f}%)"
        ),
        detail={
            "L_sampled": l_sampled,
            "lambda": lam,
            "W_s": w,
            "lambda_W": predicted,
            "rel_err": rel_err,
            "tol": tol,
        },
    )


def mm1_theory_latency(rho: float, mean_service_s: float) -> float:
    """M/M/1 mean time in system: ``W = s / (1 - rho)``."""
    if not 0.0 <= rho < 1.0:
        raise ValueError("rho must be in [0, 1)")
    return mean_service_s / (1.0 - rho)


def mm1_trend_check(
    points: list[tuple[float, float]],
    mean_service_s: float,
    theory_band: float = 0.25,
) -> CheckResult:
    """Measured ``(rho, W)`` points must reproduce the M/M/1 blow-up.

    Three properties over >= 3 utilization levels:

    1. monotone — ``W`` strictly increases with ``rho``;
    2. convex — successive slopes increase (the blow-up accelerates);
    3. hyperbolic — each point within ``theory_band`` relative error
       of ``s / (1 - rho)``.

    The band is deliberately wider than the Little's-law tolerance:
    finite logs of an M/M/1 queue near saturation have slow-mixing
    latency estimates (the variance of W grows like ``(1-rho)^-4``).
    """
    if len(points) < 3:
        raise ValueError("need >= 3 (rho, W) points")
    points = sorted(points)
    rhos = [p[0] for p in points]
    waits = [p[1] for p in points]
    monotone = all(b > a for a, b in zip(waits, waits[1:]))
    slopes = [
        (w2 - w1) / (r2 - r1)
        for (r1, w1), (r2, w2) in zip(points, points[1:])
    ]
    convex = all(s2 > s1 for s1, s2 in zip(slopes, slopes[1:]))
    theory = [mm1_theory_latency(rho, mean_service_s) for rho in rhos]
    errs = [
        abs(w - t) / max(t, 1e-12) for w, t in zip(waits, theory)
    ]
    in_band = all(err <= theory_band for err in errs)
    ok = monotone and convex and in_band
    return CheckResult(
        name="mm1_nonlinearity",
        ok=ok,
        summary=(
            f"{len(points)} utilization levels: "
            f"monotone={monotone}, convex={convex}, "
            f"max theory err {max(errs) * 100:.1f}% "
            f"(band {theory_band * 100:.0f}%)"
        ),
        detail={
            "rho": rhos,
            "W_measured": waits,
            "W_theory": theory,
            "rel_err": errs,
            "monotone": monotone,
            "convex": convex,
            "theory_band": theory_band,
        },
    )


def starvation_check(
    class_rates: dict[str, float],
    class_waits: dict[str, float],
    mean_service_s: float,
    workers: int,
    weights: dict[str, int],
    slack: float = 4.0,
    safe_level: float = 0.85,
) -> CheckResult:
    """Classes within their guaranteed capacity share must not starve.

    Smooth weighted RR guarantees a class with weight ``w`` at least
    ``w / total`` of the fleet's pops while it is backlogged — i.e. a
    private service rate of ``c * w / total`` jobs per mean service
    time.  A class whose own offered load fits inside that share
    (``rho_g = lambda_i * s / (c * w_i / total) <= safe_level``) is
    *protected*: its mean wait must stay within ``slack`` times the
    M/M/1 wait at its guaranteed rate, ``s / (1 - rho_g)``, no matter
    how overloaded the *other* classes make the system.

    Strict priority makes no such promise — a flood of high-priority
    work starves a low class even when that class asks for almost
    nothing — and that is exactly the violation this check exists to
    catch.  Classes offering more than their share are exempt: an
    unbounded backlog is then the correct behaviour of *any* fair
    discipline, not starvation.
    """
    present = sorted(set(class_rates) & set(class_waits) & set(weights))
    if len(present) < 2:
        raise ValueError("need rates and waits for >= 2 priority classes")
    total_weight = sum(weights[p] for p in present)
    workers = max(1, workers)
    protected = {}
    violations = {}
    for priority in present:
        share = workers * weights[priority] / total_weight
        rho_g = class_rates[priority] * mean_service_s / share
        if rho_g > safe_level:
            continue  # over its guarantee: no bound promised
        bound = slack * mean_service_s / (1.0 - rho_g)
        protected[priority] = {
            "rho_guaranteed": rho_g,
            "wait_s": class_waits[priority],
            "bound_s": bound,
        }
        if class_waits[priority] > bound:
            violations[priority] = protected[priority]
    if not protected:
        return CheckResult(
            name="priority_starvation",
            ok=True,
            summary="no class within its guaranteed share; bound vacuous",
            detail={"protected": {}, "violations": {}},
        )
    ok = not violations
    worst = max(
        protected, key=lambda p: protected[p]["wait_s"] / protected[p]["bound_s"]
    )
    frac = protected[worst]["wait_s"] / protected[worst]["bound_s"]
    return CheckResult(
        name="priority_starvation",
        ok=ok,
        summary=(
            f"{len(protected)} protected class(es); worst {worst!r} at "
            f"{frac * 100:.0f}% of its starvation bound"
            + ("" if ok else f"; VIOLATED by {sorted(violations)}")
        ),
        detail={
            "protected": protected,
            "violations": violations,
            "slack": slack,
            "safe_level": safe_level,
        },
    )


def compare_with_live(
    stats: ServiceStats,
    run: Optional[ModelRun] = None,
    tol: float = 0.35,
) -> CheckResult:
    """Replay a live service's arrival log; compare model vs measured.

    The model predicts mean latency and time-average occupancy for the
    recorded traffic under the recorded configuration.  Tolerance is
    loose by design — the live numbers include host scheduling jitter,
    worker warm-up, and cache effects the queueing model abstracts
    away — but a service whose front door misbehaves (unbounded queue,
    priority inversion, lost completions) misses by far more.
    """
    log = ArrivalLog.from_stats(stats)
    if run is None:
        run = ServiceModel.from_stats(stats).simulate(log)
    done = [
        r
        for r in stats.arrivals
        if r.status == "completed"
        and r.t_done is not None
    ]
    if not done:
        raise ValueError("stats contain no completed arrivals to compare")
    live_w = sum(r.t_done - r.t_arrive for r in done) / len(done)
    horizon = max(r.t_done for r in done)
    live_l = sum(r.t_done - r.t_arrive for r in done) / max(horizon, 1e-12)
    model_w = run.mean_latency_s()
    model_l = run.time_avg_in_system
    err_w = abs(model_w - live_w) / max(live_w, 1e-12)
    err_l = abs(model_l - live_l) / max(live_l, 1e-9)
    ok = err_w <= tol and err_l <= tol
    return CheckResult(
        name="live_vs_model",
        ok=ok,
        summary=(
            f"mean latency live {live_w:.4f}s vs model {model_w:.4f}s "
            f"({err_w * 100:.1f}%); occupancy live {live_l:.3f} vs "
            f"model {model_l:.3f} ({err_l * 100:.1f}%); tol {tol * 100:.0f}%"
        ),
        detail={
            "live_W_s": live_w,
            "model_W_s": model_w,
            "live_L": live_l,
            "model_L": model_l,
            "rel_err_W": err_w,
            "rel_err_L": err_l,
            "tol": tol,
        },
    )
