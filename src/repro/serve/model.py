"""The serving layer as a DES workload on our own engine.

``repro serve`` is a queueing system: Poisson-ish arrivals, a bounded
admission queue, weighted priority scheduling, ``c`` warm workers.
This module mirrors that configuration as a discrete-event simulation
on :class:`repro.sim.core.Environment` — the same engine the paper
reproduction runs on — so the service can be validated by the very
simulator it serves.

Fidelity comes from sharing, not re-implementing: the model pops jobs
from the *same* :class:`repro.serve.scheduler.WeightedScheduler` class
the live service uses, with the same admission bound and worker count.
The only substitution is time itself — a job's measured (or synthetic)
service demand becomes a simulated ``timeout`` instead of a worker
process executing a cell.

Time unit note: the engine's clock is unit-agnostic; this model runs
it in **seconds** (service-layer latencies), not the microseconds the
GPU simulations use.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.serve.protocol import DEFAULT_PRIORITY, PRIORITY_CLASSES
from repro.serve.scheduler import WeightedScheduler
from repro.serve.stats import ServiceStats
from repro.sim.core import Environment

__all__ = [
    "Arrival",
    "ArrivalLog",
    "JobOutcome",
    "ModelRun",
    "ServiceModel",
    "poisson_log",
]


@dataclass(frozen=True)
class Arrival:
    """One offered job: when it shows up and how long it wants."""

    t: float
    priority: str
    service_s: float


@dataclass
class ArrivalLog:
    """A replayable arrival sequence (recorded or synthetic)."""

    arrivals: list[Arrival]
    #: Nominal recording horizon in seconds (>= last arrival time).
    duration: float

    def __post_init__(self) -> None:
        self.arrivals = sorted(self.arrivals, key=lambda a: a.t)
        if self.arrivals:
            self.duration = max(self.duration, self.arrivals[-1].t)

    def __len__(self) -> int:
        return len(self.arrivals)

    @property
    def offered_rate(self) -> float:
        """Arrivals per second over the recording horizon (lambda)."""
        return len(self.arrivals) / self.duration if self.duration else 0.0

    @property
    def mean_service_s(self) -> float:
        if not self.arrivals:
            return 0.0
        return sum(a.service_s for a in self.arrivals) / len(self.arrivals)

    @classmethod
    def from_stats(cls, stats: ServiceStats) -> "ArrivalLog":
        """Reconstruct the offered traffic from a service stats file.

        Rejected arrivals carry no measured service time (they never
        ran), so they replay with their priority class's mean demand —
        the model decides for itself whether *it* would have rejected
        them.
        """
        class_mean = {
            p: (h.mean if h.n else 0.0)
            for p, h in stats.service_time.items()
        }
        overall = stats.mean_service_s()
        arrivals = []
        horizon = 0.0
        for record in stats.arrivals:
            service = record.service_s
            if service <= 0.0:
                service = class_mean.get(record.priority) or overall
            arrivals.append(Arrival(record.t_arrive, record.priority, service))
            horizon = max(
                horizon, record.t_arrive, record.t_done or 0.0
            )
        return cls(arrivals, duration=horizon)


def poisson_log(
    rate: float,
    mean_service_s: float,
    duration_s: float,
    seed: int = 0,
    priority_mix: Optional[dict[str, float]] = None,
) -> ArrivalLog:
    """A synthetic M/M arrival log: Poisson arrivals, exp services.

    ``priority_mix`` maps priority class to its traffic fraction
    (default: everything ``batch``).  Seeded, so every log is
    replayable — the validators quote their seeds.
    """
    if rate <= 0 or mean_service_s <= 0 or duration_s <= 0:
        raise ValueError("rate, mean_service_s, duration_s must be positive")
    mix = priority_mix or {DEFAULT_PRIORITY: 1.0}
    unknown = set(mix) - set(PRIORITY_CLASSES)
    if unknown:
        raise ValueError(f"unknown priorities in mix: {sorted(unknown)}")
    total = sum(mix.values())
    classes = sorted(mix)
    thresholds = []
    acc = 0.0
    for name in classes:
        acc += mix[name] / total
        thresholds.append((acc, name))
    rng = random.Random(seed)
    arrivals = []
    t = rng.expovariate(rate)
    while t < duration_s:
        u = rng.random()
        priority = next(name for bound, name in thresholds if u <= bound)
        arrivals.append(
            Arrival(t, priority, rng.expovariate(1.0 / mean_service_s))
        )
        t += rng.expovariate(rate)
    return ArrivalLog(arrivals, duration=duration_s)


@dataclass
class JobOutcome:
    """One arrival's fate in the simulated service."""

    t_arrive: float
    priority: str
    service_s: float
    rejected: bool = False
    t_start: Optional[float] = None
    t_done: Optional[float] = None

    @property
    def wait_s(self) -> float:
        return (self.t_start - self.t_arrive) if self.t_start is not None else 0.0

    @property
    def latency_s(self) -> float:
        return (self.t_done - self.t_arrive) if self.t_done is not None else 0.0


@dataclass
class ModelRun:
    """A simulated service trajectory plus its queueing metrics.

    ``occupancy_samples`` is N(t) — jobs in system (queued + in
    service) — polled every ``sample_dt`` like a live monitor would,
    *not* integrated from the records.  That keeps the Little's-law
    check non-circular: L comes from sampling, lambda·W from the
    per-job records, and the identity between them is a property of
    the trajectory, not an accounting tautology.
    """

    workers: int
    jobs: list[JobOutcome]
    occupancy_samples: list[float]
    sample_dt: float
    busy_s: float
    horizon_s: float

    # -- per-job views ----------------------------------------------------
    def completed(self, priority: Optional[str] = None) -> list[JobOutcome]:
        return [
            j
            for j in self.jobs
            if j.t_done is not None
            and (priority is None or j.priority == priority)
        ]

    @property
    def admitted(self) -> int:
        return sum(1 for j in self.jobs if not j.rejected)

    @property
    def rejected(self) -> int:
        return sum(1 for j in self.jobs if j.rejected)

    # -- queueing metrics --------------------------------------------------
    @property
    def admitted_rate(self) -> float:
        """lambda over the horizon, counting only admitted jobs."""
        return self.admitted / self.horizon_s if self.horizon_s else 0.0

    def mean_latency_s(self, priority: Optional[str] = None) -> float:
        done = self.completed(priority)
        return sum(j.latency_s for j in done) / len(done) if done else 0.0

    def mean_wait_s(self, priority: Optional[str] = None) -> float:
        done = self.completed(priority)
        return sum(j.wait_s for j in done) / len(done) if done else 0.0

    def waits_by_class(self) -> dict[str, float]:
        return {
            p: self.mean_wait_s(p)
            for p in PRIORITY_CLASSES
            if self.completed(p)
        }

    def rates_by_class(self) -> dict[str, float]:
        """Admitted arrival rate (jobs/s) per priority class."""
        if not self.horizon_s:
            return {}
        out: dict[str, float] = {}
        for job in self.jobs:
            if not job.rejected:
                out[job.priority] = out.get(job.priority, 0.0) + 1.0
        return {p: n / self.horizon_s for p, n in out.items()}

    @property
    def time_avg_in_system(self) -> float:
        """L — the sampled time-average number of jobs in the system."""
        if not self.occupancy_samples:
            return 0.0
        return sum(self.occupancy_samples) / len(self.occupancy_samples)

    @property
    def utilization(self) -> float:
        """Mean busy fraction of the worker fleet (rho for c=1)."""
        if not self.horizon_s:
            return 0.0
        return self.busy_s / (self.workers * self.horizon_s)

    @property
    def mean_service_s(self) -> float:
        done = self.completed()
        if not done:
            return 0.0
        return sum(j.service_s for j in done) / len(done)


class ServiceModel:
    """Mirror of one ``repro serve`` configuration as a DES workload."""

    def __init__(
        self,
        workers: int,
        max_queue: int = 256,
        weights: Optional[dict[str, int]] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.max_queue = max_queue
        self.weights = dict(weights or PRIORITY_CLASSES)

    @classmethod
    def from_stats(cls, stats: ServiceStats) -> "ServiceModel":
        """Build the mirror from a stats file's recorded configuration."""
        config = stats.config
        return cls(
            workers=int(config.get("workers", 1)),
            max_queue=int(config.get("max_queue", 256)),
            weights={
                str(k): int(v)
                for k, v in config.get("weights", PRIORITY_CLASSES).items()
            },
        )

    def simulate(
        self, log: ArrivalLog, sample_dt: Optional[float] = None
    ) -> ModelRun:
        """Replay ``log`` through the mirrored service; drain fully."""
        env = Environment()
        sched = WeightedScheduler(self.weights, self.max_queue)
        idle: deque[int] = deque(range(self.workers))
        jobs: list[JobOutcome] = []
        samples: list[float] = []
        state = _SimState()
        if sample_dt is None:
            # Aim for ~4k samples over the offered horizon: cheap, and
            # fine-grained enough that sampling error stays well under
            # the 5% Little's-law tolerance.
            sample_dt = max(log.duration / 4096.0, 1e-6)

        def dispatch() -> None:
            while idle and len(sched):
                worker = idle.popleft()
                popped = sched.pop()
                assert popped is not None
                _, job = popped
                job.t_start = env.now
                state.busy_s += job.service_s
                done = env.timeout(job.service_s)
                done.callbacks.append(
                    lambda _ev, job=job, worker=worker: complete(job, worker)
                )

        def complete(job: JobOutcome, worker: int) -> None:
            job.t_done = env.now
            state.in_system -= 1
            state.last_done = env.now
            idle.append(worker)
            dispatch()

        def source():
            last = 0.0
            for arrival in log.arrivals:
                if arrival.t > last:
                    yield env.timeout(arrival.t - last)
                    last = arrival.t
                job = JobOutcome(
                    t_arrive=env.now,
                    priority=arrival.priority,
                    service_s=arrival.service_s,
                )
                jobs.append(job)
                if sched.offer(arrival.priority, job):
                    state.in_system += 1
                    dispatch()
                else:
                    job.rejected = True
            state.source_done = True

        def sampler():
            while not (state.source_done and state.in_system == 0):
                samples.append(float(state.in_system))
                yield env.timeout(sample_dt)

        env.process(source(), name="arrivals")
        env.process(sampler(), name="monitor")
        env.run()
        horizon = max(log.duration, state.last_done)
        return ModelRun(
            workers=self.workers,
            jobs=jobs,
            occupancy_samples=samples,
            sample_dt=sample_dt,
            busy_s=state.busy_s,
            horizon_s=horizon,
        )


@dataclass
class _SimState:
    in_system: int = 0
    busy_s: float = 0.0
    last_done: float = 0.0
    source_done: bool = False
