"""Bounded admission queue with smooth weighted round-robin priorities.

This is the scheduling heart of the serving layer, kept free of any
asyncio/process machinery on purpose: the live HTTP service pops jobs
from a ``WeightedScheduler`` exactly the way the DES service model
does, so the model's predictions are about *this code*, not a
re-implementation of it.

Discipline: smooth weighted round-robin (the nginx upstream algorithm)
across the priority classes, FIFO within a class.  Each pop credits
every backlogged class by its weight, picks the class with the highest
accumulated credit, and debits the winner by the total backlogged
weight.  Over any busy window a class with weight ``w`` therefore
receives ``w / sum(weights of backlogged classes)`` of the pops — a
guaranteed minimum service share, which is what bounds low-priority
waiting time (strict priority has no such bound; see
``repro.serve.validate.starvation_check``).

Admission is a single bound across all classes: ``offer`` refuses once
``max_queue`` jobs are waiting, and the HTTP layer turns that refusal
into ``429 Retry-After``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator, Optional

from repro.serve.protocol import PRIORITY_CLASSES, validate_priority

__all__ = ["WeightedScheduler"]


class WeightedScheduler:
    """Deterministic weighted-fair queue over the priority classes."""

    def __init__(
        self,
        weights: Optional[dict[str, int]] = None,
        max_queue: int = 256,
    ):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.weights = dict(weights or PRIORITY_CLASSES)
        if any(w < 1 for w in self.weights.values()):
            raise ValueError("weights must be >= 1")
        self.max_queue = max_queue
        #: Stable class order: heaviest first, then name — ties in the
        #: credit race resolve the same way every run.
        self._order = sorted(
            self.weights, key=lambda p: (-self.weights[p], p)
        )
        self._queues: dict[str, deque[Any]] = {
            p: deque() for p in self._order
        }
        self._credit: dict[str, float] = {p: 0.0 for p in self._order}
        self._size = 0

    # -- state ------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size >= self.max_queue

    def depth(self, priority: str) -> int:
        """Waiting jobs in one class."""
        return len(self._queues[validate_priority(priority)])

    def depths(self) -> dict[str, int]:
        return {p: len(q) for p, q in self._queues.items()}

    def __iter__(self) -> Iterator[Any]:
        for priority in self._order:
            yield from self._queues[priority]

    # -- queue discipline --------------------------------------------------
    def offer(self, priority: str, job: Any) -> bool:
        """Admit ``job`` unless the bounded queue is full."""
        validate_priority(priority)
        if self.full:
            return False
        self._queues[priority].append(job)
        self._size += 1
        return True

    def pop(self) -> Optional[tuple[str, Any]]:
        """The next ``(priority, job)`` under smooth weighted RR."""
        if self._size == 0:
            return None
        backlogged = [p for p in self._order if self._queues[p]]
        total = 0
        for p in backlogged:
            self._credit[p] += self.weights[p]
            total += self.weights[p]
        winner = max(backlogged, key=lambda p: self._credit[p])
        self._credit[winner] -= total
        job = self._queues[winner].popleft()
        if not self._queues[winner]:
            # An emptied class re-enters the race from scratch: unspent
            # credit must not let a long-idle class burst later.
            self._credit[winner] = 0.0
        self._size -= 1
        return winner, job

    def retry_after_s(self, mean_service_s: float, workers: int) -> int:
        """A 429 Retry-After estimate: time to drain the current queue."""
        workers = max(1, workers)
        mean_service_s = max(mean_service_s, 1e-3)
        return max(1, int(round(self._size * mean_service_s / workers)))
