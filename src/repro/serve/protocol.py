"""Wire protocol for the serving layer: priorities and the JSON codec.

Everything the HTTP service and the CLI client exchange is plain JSON
built from these helpers, and the priority-class table here is the one
the scheduler, the stats histograms, and the DES service model all
share — one source of truth for the queueing discipline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.harness.pool import RunSpec

__all__ = [
    "DEFAULT_PRIORITY",
    "DEFAULT_RETRY_POLICIES",
    "PRIORITY_CLASSES",
    "RetryPolicy",
    "backoff_s",
    "expand_sweep",
    "spec_from_json",
    "spec_to_json",
    "validate_priority",
]

#: Priority classes and their scheduling weights.  Weighted (not
#: strict) priority: an overloaded service still serves ``bulk`` at
#: ~1/12 of the pop rate instead of starving it — the starvation bound
#: the queueing validator checks.
PRIORITY_CLASSES: dict[str, int] = {
    "interactive": 8,
    "batch": 3,
    "bulk": 1,
}

#: Priority assumed when a submit request names none.
DEFAULT_PRIORITY = "batch"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry for cells whose *worker* failed under them.

    Applies to worker crashes (pipe EOF) and — when ``retry_timeouts``
    — deadline kills; never to in-worker exceptions, which are
    deterministic and would fail identically on every attempt.
    Retrying is safe because cell execution is idempotent: the
    single-flight identity is the run-cache key, so a retry either
    recomputes the same pure result or serves it from cache.

    ``max_attempts`` counts *total* attempts including the first;
    retry ``k`` (1-based) waits ``backoff_base_s * backoff_factor**(k-1)``
    seconds before re-entering the scheduler at the cell's priority.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    retry_timeouts: bool = True

    def to_json(self) -> dict[str, Any]:
        return {
            "max_attempts": self.max_attempts,
            "backoff_base_s": self.backoff_base_s,
            "backoff_factor": self.backoff_factor,
            "retry_timeouts": self.retry_timeouts,
        }


#: Per-priority retry policies: interactive fails fast (a human is
#: waiting — one quick retry, tiny backoff), bulk absorbs more flake
#: (nobody is watching; throughput wins).
DEFAULT_RETRY_POLICIES: dict[str, RetryPolicy] = {
    "interactive": RetryPolicy(max_attempts=2, backoff_base_s=0.02),
    "batch": RetryPolicy(max_attempts=3, backoff_base_s=0.05),
    "bulk": RetryPolicy(max_attempts=4, backoff_base_s=0.1),
}


def backoff_s(policy: RetryPolicy, attempt: int) -> float:
    """Delay before retry ``attempt`` (1-based)."""
    return policy.backoff_base_s * policy.backoff_factor ** max(
        0, attempt - 1
    )


def validate_priority(priority: str) -> str:
    if priority not in PRIORITY_CLASSES:
        raise ValueError(
            f"unknown priority {priority!r}; known: "
            f"{sorted(PRIORITY_CLASSES)}"
        )
    return priority


def spec_to_json(spec: RunSpec) -> dict[str, Any]:
    """A :class:`RunSpec` as a JSON-safe dict (the submit body shape)."""
    return {
        "framework": spec.framework,
        "app": spec.app,
        "dataset": spec.dataset,
        "machine": spec.machine,
        "n_gpus": spec.n_gpus,
        "validate": spec.validate,
        "seed": spec.seed,
    }


def spec_from_json(doc: dict[str, Any]) -> RunSpec:
    """Parse one run-spec dict; raises ``ValueError`` on a bad shape."""
    if not isinstance(doc, dict):
        raise ValueError(f"spec must be an object, got {type(doc).__name__}")
    try:
        framework = str(doc["framework"])
        app = str(doc["app"])
        dataset = str(doc["dataset"])
    except KeyError as missing:
        raise ValueError(f"spec missing required field {missing}") from None
    return RunSpec(
        framework=framework,
        app=app,
        dataset=dataset,
        machine=str(doc.get("machine", "daisy")),
        n_gpus=int(doc.get("n_gpus", 1)),
        validate=bool(doc.get("validate", True)),
        seed=int(doc.get("seed", 0)),
    )


def expand_sweep(doc: dict[str, Any]) -> list[RunSpec]:
    """Expand a submit body into its cells.

    The body carries either ``"spec": {...}`` (one cell) or
    ``"specs": [{...}, ...]`` (an explicit sweep).  Sweep fields may
    also be lists in a single spec (``"dataset": ["a", "b"]``,
    ``"n_gpus": [1, 4]``), which cross-product into cells in
    deterministic order — the same order a serial grid loop would use.
    """
    if "specs" in doc:
        raw: Iterable[Any] = doc["specs"]
        if not isinstance(raw, list) or not raw:
            raise ValueError('"specs" must be a non-empty list')
        specs: list[RunSpec] = []
        for entry in raw:
            specs.extend(_expand_one(entry))
        return specs
    if "spec" in doc:
        return _expand_one(doc["spec"])
    raise ValueError('submit body needs a "spec" or "specs" field')


def _expand_one(entry: dict[str, Any]) -> list[RunSpec]:
    """One spec dict -> cells, cross-producting any list-valued field."""
    if not isinstance(entry, dict):
        raise ValueError("each spec must be an object")
    datasets = entry.get("dataset", None)
    gpus = entry.get("n_gpus", 1)
    datasets = datasets if isinstance(datasets, list) else [datasets]
    gpus = gpus if isinstance(gpus, list) else [gpus]
    out = []
    for dataset in datasets:
        for n in gpus:
            cell = dict(entry)
            cell["dataset"] = dataset
            cell["n_gpus"] = n
            out.append(spec_from_json(cell))
    return out
