"""The asyncio HTTP front end: ``python -m repro serve``.

A deliberately small HTTP/1.1 implementation over ``asyncio`` streams
(the repository has a no-new-dependencies rule, and the protocol
surface is six endpoints), multiplexing many concurrent run/sweep
requests over one :class:`~repro.serve.fleet.WorkerFleet`:

* ``POST /submit`` — JSON body with a ``spec``/``specs`` sweep, a
  priority class, and an optional ``trace`` flag.  Admission control:
  when the bounded queue is full the request is refused with ``429``
  and a ``Retry-After`` estimate.  Accepted requests get a job id.
* ``GET /jobs/<id>`` — job status and per-cell results so far.
* ``GET /jobs/<id>/stream`` — chunked NDJSON: one event per cell as
  it completes, then a terminal summary.  Replayable — late watchers
  see the full history.
* ``GET /jobs/<id>/trace?cell=N`` — the Perfetto trace_event JSON of
  a traced cell.
* ``GET /stats`` — live ``SERVICE_COUNTERS``, queue depths, fleet
  state.  ``GET /healthz`` — liveness.
* ``POST /drain`` — graceful shutdown: stop admitting, let in-flight
  work finish, persist the stats file (counters + histograms + the
  recorded arrival log the DES model replays), stop the fleet.

Scheduling: cells enter the shared
:class:`~repro.serve.scheduler.WeightedScheduler`; a dispatcher task
pops under smooth weighted RR whenever a fleet worker is idle.
Identical concurrent cells are **single-flighted** on the run-cache
key: one execution, every requester attached as a follower.  Large
sweeps self-limit via a per-request in-flight window, so one bulk
request cannot monopolize the bounded queue (backpressure without
rejection).

Fault tolerance: an attempt whose *worker* failed under it (process
crash, deadline kill) is retried under the priority class's
:class:`~repro.serve.protocol.RetryPolicy` — bounded attempts,
exponential backoff, idempotent by the run-cache key.  The cell stays
single-flighted through its whole retry loop, so followers ride the
retry instead of inheriting a crash.  A spec whose workers crash
``quarantine_after`` times (service-wide) is poisoned: further submits
are refused with ``422`` and the quarantine list survives into the
drained stats document.  In-worker exceptions are deterministic and
fail immediately, exactly as before.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.harness.pool import RunSpec
from repro.serve.fleet import FleetResult, WorkerFleet, execute_serve_cell
from repro.serve.protocol import (
    DEFAULT_PRIORITY,
    DEFAULT_RETRY_POLICIES,
    PRIORITY_CLASSES,
    RetryPolicy,
    backoff_s,
    expand_sweep,
    spec_to_json,
    validate_priority,
)
from repro.serve.scheduler import WeightedScheduler
from repro.serve.stats import ArrivalRecord, ServiceStats

__all__ = ["ServeConfig", "ReproService"]


@dataclass
class ServeConfig:
    """Everything the service needs; mirrored into the DES model."""

    host: str = "127.0.0.1"
    port: int = 8787
    workers: int = 2
    max_queue: int = 64
    weights: dict[str, int] = field(
        default_factory=lambda: dict(PRIORITY_CLASSES)
    )
    #: Per-request in-flight cell window (backpressure for sweeps).
    max_inflight_per_request: int = 4
    #: Per-cell wall-clock deadline inside a worker (None = none).
    cell_timeout_s: Optional[float] = None
    #: How long a drain waits for in-flight work before cancelling.
    drain_grace_s: float = 30.0
    #: Where the drained service writes its stats document.
    stats_path: Optional[str] = None
    #: Per-priority retry policies for worker-crash / deadline failures
    #: (in-worker exceptions are deterministic and never retried).
    retry: dict[str, RetryPolicy] = field(
        default_factory=lambda: dict(DEFAULT_RETRY_POLICIES)
    )
    #: Quarantine a spec after its workers crashed this many times
    #: (counted service-wide, across submits): further submits of the
    #: same run-cache key are refused with 422.
    quarantine_after: int = 3

    def to_json(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "max_queue": self.max_queue,
            "weights": dict(self.weights),
            "max_inflight_per_request": self.max_inflight_per_request,
            "cell_timeout_s": self.cell_timeout_s,
            "retry": {p: r.to_json() for p, r in self.retry.items()},
            "quarantine_after": self.quarantine_after,
        }


class _Cell:
    """One single-flighted execution unit."""

    __slots__ = (
        "key",
        "spec",
        "priority",
        "trace",
        "followers",
        "t_arrive",
        "state",
        "attempts",
    )

    def __init__(self, key: str, spec: RunSpec, priority: str, trace: bool):
        self.key = key
        self.spec = spec
        self.priority = priority
        self.trace = trace
        #: ``(request, cell_index)`` pairs to fan the outcome out to.
        #: The cell stays registered in ``service._cells`` through its
        #: whole retry loop, so followers attached mid-retry (and the
        #: original ones) all ride the retries — a crashed *attempt*
        #: is never fanned out, only the terminal outcome is.
        self.followers: list[tuple["_Request", int]] = []
        self.t_arrive = 0.0
        self.state = "queued"
        #: Executions dispatched so far (the first is attempt 1).
        self.attempts = 0


class _Request:
    """One accepted submit: its cells, stream history, and waiters."""

    def __init__(
        self,
        job_id: str,
        priority: str,
        specs: list[RunSpec],
        trace: bool,
        inflight_window: int,
    ):
        self.id = job_id
        self.priority = priority
        self.specs = specs
        self.trace = trace
        self.submitted = time.time()
        self.events: list[dict[str, Any]] = []
        self.cond = asyncio.Condition()
        self.sem = asyncio.Semaphore(inflight_window)
        self.results: dict[int, dict[str, Any]] = {}
        self.traces: dict[int, dict] = {}
        self.done_cells = 0
        self.failed_cells = 0

    @property
    def total(self) -> int:
        return len(self.specs)

    @property
    def finished(self) -> bool:
        return self.done_cells >= self.total

    @property
    def state(self) -> str:
        if self.finished:
            return "failed" if self.failed_cells else "done"
        return "running" if self.results or self.events else "queued"

    def status_json(self) -> dict[str, Any]:
        return {
            "job_id": self.id,
            "state": self.state,
            "priority": self.priority,
            "cells_total": self.total,
            "cells_done": self.done_cells,
            "cells_failed": self.failed_cells,
            "results": [
                self.results[i] for i in sorted(self.results)
            ],
        }

    async def push_event(self, event: dict[str, Any]) -> None:
        async with self.cond:
            self.events.append(event)
            self.cond.notify_all()


class ReproService:
    """The serving layer: admission, scheduling, dedup, streaming."""

    def __init__(
        self,
        config: ServeConfig,
        run_fn: Callable[..., Any] = execute_serve_cell,
    ):
        self.config = config
        self.run_fn = run_fn
        self.scheduler = WeightedScheduler(
            config.weights, max_queue=config.max_queue
        )
        self.stats = ServiceStats(config=config.to_json())
        self.fleet: Optional[WorkerFleet] = None
        self.draining = False
        self._requests: dict[str, _Request] = {}
        self._active: set[str] = set()
        self._cells: dict[str, _Cell] = {}
        #: Worker crashes per base run key (service-wide, across
        #: submits) — the quarantine trigger.
        self._crash_counts: dict[str, int] = {}
        #: Poisoned base run keys -> reason; submits touching one are
        #: refused with 422 before admission.
        self._quarantine: dict[str, str] = {}
        self._job_counter = 0
        self._work = asyncio.Event()
        self._space = asyncio.Condition()
        self._all_idle = asyncio.Event()
        self._stopped = asyncio.Event()
        self._server: Optional[asyncio.base_events.Server] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle --------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Spin up the fleet and bind the listener; returns (host, port)."""
        self._loop = asyncio.get_running_loop()
        self.fleet = WorkerFleet(
            self.config.workers,
            run_fn=self.run_fn,
            timeout_s=self.config.cell_timeout_s,
            on_idle=self._on_worker_idle,
        )
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="serve-dispatch"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def serve_forever(self, install_signals: bool = True) -> None:
        """Run until drained (``POST /drain`` or SIGINT/SIGTERM)."""
        host, port = await self.start()
        print(
            f"repro serve: listening on http://{host}:{port} "
            f"({self.config.workers} warm workers, queue bound "
            f"{self.config.max_queue})",
            flush=True,
        )
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(
                        signum,
                        lambda: asyncio.create_task(self.drain()),
                    )
                except (NotImplementedError, RuntimeError):
                    pass  # pragma: no cover - non-unix
        await self._stopped.wait()

    def _on_worker_idle(self) -> None:
        """Reaper-thread callback -> wake the dispatcher in-loop."""
        if self._loop is not None and not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self._work.set)

    async def drain(self) -> None:
        """Graceful shutdown; idempotent."""
        if self.draining:
            return
        self.draining = True
        print("repro serve: draining...", flush=True)
        deadline = (
            asyncio.get_running_loop().time() + self.config.drain_grace_s
        )
        while self._active:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                break
            await asyncio.sleep(min(0.05, max(remaining, 0.01)))
        await self._cancel_queued()
        if self.config.stats_path:
            try:
                self.stats.write(self.config.stats_path)
                print(
                    f"repro serve: wrote stats to {self.config.stats_path}",
                    flush=True,
                )
            except OSError as exc:  # pragma: no cover - unwritable path
                print(f"repro serve: stats write failed: {exc}", flush=True)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
        if self.fleet is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self.fleet.drain, self.config.drain_grace_s
            )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._stopped.set()
        print("repro serve: stopped", flush=True)

    async def _cancel_queued(self) -> None:
        """Drop still-queued cells after the drain grace expired."""
        cancelled = [cell for _, cell in iter_pop_all(self.scheduler)]
        for cell in cancelled:
            self._cells.pop(cell.key, None)
            self.stats.record_cell(
                ArrivalRecord(
                    cell.t_arrive,
                    cell.priority,
                    "cancelled",
                    key=cell.key[:16],
                )
            )
            for request, index in cell.followers:
                await self._finish_follower(
                    request,
                    index,
                    {
                        "cell": index,
                        "status": "cancelled",
                        "spec": spec_to_json(cell.spec),
                    },
                    failed=True,
                )

    # -- dispatch ---------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self.fleet is not None
        while True:
            await self._work.wait()
            self._work.clear()
            while len(self.scheduler) and self.fleet.idle_count > 0:
                popped = self.scheduler.pop()
                if popped is None:  # pragma: no cover - len() guarded
                    break
                _, cell = popped
                async with self._space:
                    self._space.notify_all()
                cell.state = "running"
                t_start = self.stats.now()
                try:
                    future = self.fleet.submit(cell.spec, cell.trace)
                except RuntimeError:
                    # Lost the idle worker to a respawn race; requeue.
                    self.scheduler.offer(cell.priority, cell)
                    break
                cell.attempts += 1
                asyncio.create_task(
                    self._await_cell(cell, t_start, future),
                    name=f"cell-{cell.key[:8]}",
                )

    # -- retry / quarantine ----------------------------------------------
    @staticmethod
    def _base_key(key: str) -> str:
        """The quarantine identity: the run key sans the trace bit."""
        return key[:-7] if key.endswith(":traced") else key

    def _record_crash(self, cell: _Cell) -> bool:
        """Count one worker crash against the spec; True = quarantined."""
        base = self._base_key(cell.key)
        count = self._crash_counts.get(base, 0) + 1
        self._crash_counts[base] = count
        if count >= self.config.quarantine_after and base not in (
            self._quarantine
        ):
            reason = (
                f"crashed its worker {count} time(s) "
                f"(threshold {self.config.quarantine_after})"
            )
            self._quarantine[base] = reason
            self.stats.quarantine[base[:16]] = reason
            self.stats.counters["service_quarantined"] += 1
            self.stats.counters["resilience_specs_quarantined"] += 1
        return base in self._quarantine

    def _maybe_retry(self, cell: _Cell, outcome: FleetResult) -> bool:
        """Decide (and schedule) a retry for a failed attempt.

        Worker crashes and deadline kills are the worker's fault, not
        the spec's — retry under the priority class's policy, unless
        the crash count just tripped quarantine.  In-worker exceptions
        are deterministic: never retried.
        """
        policy = self.config.retry.get(cell.priority)
        if policy is None or self.draining:
            return False
        status = outcome.cell.status
        if status == "crashed" or outcome.failure is not None:
            if self._record_crash(cell):
                return False  # poisoned: fail followers now
            self.stats.counters["service_respawn_retries"] += 1
        elif status == "timeout":
            if not policy.retry_timeouts:
                return False
        else:
            return False
        if cell.attempts >= policy.max_attempts:
            return False
        self.stats.counters["service_retries"] += 1
        self.stats.counters["resilience_jobs_retried"] += 1
        delay = backoff_s(policy, cell.attempts)
        cell.state = "retrying"
        asyncio.create_task(
            self._requeue_after(cell, delay),
            name=f"retry-{cell.key[:8]}",
        )
        return True

    async def _requeue_after(self, cell: _Cell, delay: float) -> None:
        await asyncio.sleep(delay)
        if self.draining:
            # Drained out from under the backoff: same terminal shape
            # as a queued cell dropped by _cancel_queued.
            self._cells.pop(cell.key, None)
            self.stats.record_cell(
                ArrivalRecord(
                    cell.t_arrive,
                    cell.priority,
                    "cancelled",
                    key=cell.key[:16],
                )
            )
            for request, index in cell.followers:
                await self._finish_follower(
                    request,
                    index,
                    {
                        "cell": index,
                        "status": "cancelled",
                        "spec": spec_to_json(cell.spec),
                    },
                    failed=True,
                )
            return
        cell.state = "queued"
        while not self.scheduler.offer(cell.priority, cell):
            async with self._space:
                await self._space.wait()
        self._work.set()

    async def _await_cell(self, cell: _Cell, t_start: float, future) -> None:
        outcome: FleetResult = await asyncio.wrap_future(future)
        t_done = self.stats.now()
        if not outcome.cell.ok and self._maybe_retry(cell, outcome):
            # The attempt failed but the cell lives on; nothing is
            # fanned out and the single-flight entry stays registered.
            self._work.set()
            return
        self._cells.pop(cell.key, None)
        cell.state = "done"
        result = outcome.cell
        status = "completed" if result.ok else "failed"
        self.stats.record_cell(
            ArrivalRecord(
                cell.t_arrive,
                cell.priority,
                status,
                service_s=t_done - t_start,
                t_start=t_start,
                t_done=t_done,
                key=cell.key[:16],
            )
        )
        if result.ok and getattr(result.result, "cache_hits", 0):
            self.stats.counters["service_cache_hits"] += 1
        if outcome.trace is not None:
            self.stats.counters["service_trace_exports"] += 1
        summary_base = {
            "status": result.status,
            "wall_clock_s": round(result.wall_clock_s, 6),
            "attempts": cell.attempts,
        }
        if result.ok:
            run = result.result
            summary_base.update(
                {
                    "digest": run.digest(),
                    "time_ms": run.time_ms,
                    "cache_hit": bool(run.cache_hits),
                }
            )
        else:
            summary_base["error"] = result.error.strip().splitlines()[-1:]
            if self._base_key(cell.key) in self._quarantine:
                summary_base["quarantined"] = True
        for request, index in cell.followers:
            summary = dict(summary_base)
            summary["cell"] = index
            summary["spec"] = spec_to_json(cell.spec)
            if outcome.trace is not None:
                request.traces[index] = outcome.trace
                summary["trace"] = True
            await self._finish_follower(
                request, index, summary, failed=not result.ok
            )
        self._work.set()

    async def _finish_follower(
        self,
        request: _Request,
        index: int,
        summary: dict[str, Any],
        failed: bool,
    ) -> None:
        request.results[index] = summary
        request.done_cells += 1
        if failed:
            request.failed_cells += 1
        request.sem.release()
        await request.push_event(dict(summary, event="cell"))
        if request.finished:
            self._active.discard(request.id)
            await request.push_event(
                {
                    "event": "done",
                    "job_id": request.id,
                    "state": request.state,
                    "cells_total": request.total,
                    "cells_failed": request.failed_cells,
                }
            )

    # -- submission -------------------------------------------------------
    async def _submit(self, body: dict[str, Any]) -> tuple[int, dict, dict]:
        """Handle one submit body -> (http_status, response, headers)."""
        if self.draining:
            return 503, {"error": "service is draining"}, {}
        priority = validate_priority(
            str(body.get("priority", DEFAULT_PRIORITY))
        )
        trace = bool(body.get("trace", False))
        specs = expand_sweep(body)
        keys = [self._cell_key(spec, trace) for spec in specs]
        self.stats.counters["service_requests"] += 1
        for spec, key in zip(specs, keys):
            reason = self._quarantine.get(self._base_key(key))
            if reason is not None:
                # 422, not 429: the request is well-formed and there
                # is capacity — this *spec* is poisoned, and retrying
                # the submit will not help.
                return (
                    422,
                    {
                        "error": "spec is quarantined",
                        "reason": reason,
                        "spec": spec_to_json(spec),
                    },
                    {},
                )
        if self.scheduler.full:
            self.stats.record_rejected(priority)
            retry = self.scheduler.retry_after_s(
                self.stats.mean_service_s(), self.config.workers
            )
            return (
                429,
                {
                    "error": "admission queue is full",
                    "queued": len(self.scheduler),
                    "retry_after_s": retry,
                },
                {"Retry-After": str(retry)},
            )
        self._job_counter += 1
        job_id = f"j{self._job_counter:05d}"
        request = _Request(
            job_id,
            priority,
            specs,
            trace,
            self.config.max_inflight_per_request,
        )
        self._requests[job_id] = request
        self._active.add(job_id)
        asyncio.create_task(
            self._feed(request, keys), name=f"feed-{job_id}"
        )
        return (
            202,
            {
                "job_id": job_id,
                "cells": len(specs),
                "priority": priority,
                "queued": len(self.scheduler),
            },
            {},
        )

    @staticmethod
    def _cell_key(spec: RunSpec, trace: bool) -> str:
        """The single-flight identity: the run-cache key (+trace bit).

        Traced executions bypass the run cache, so they never coalesce
        with untraced ones — a trace requester must get real spans.
        """
        from repro.harness.runner import run_key

        key = run_key(
            spec.framework,
            spec.app,
            spec.dataset,
            spec.machine,
            spec.n_gpus,
            spec.validate,
            seed=spec.seed,
        )
        return f"{key}:traced" if trace else key

    async def _feed(self, request: _Request, keys: list[str]) -> None:
        """Admit a request's cells under its in-flight window."""
        for index, (spec, key) in enumerate(zip(request.specs, keys)):
            await request.sem.acquire()
            await self._enqueue_cell(request, index, spec, key)

    async def _enqueue_cell(
        self, request: _Request, index: int, spec: RunSpec, key: str
    ) -> None:
        self.stats.counters["service_cells"] += 1
        existing = self._cells.get(key)
        if existing is not None:
            existing.followers.append((request, index))
            self.stats.counters["service_deduped"] += 1
            return
        cell = _Cell(key, spec, request.priority, request.trace)
        cell.followers.append((request, index))
        cell.t_arrive = self.stats.now()
        self._cells[key] = cell
        while not self.scheduler.offer(cell.priority, cell):
            # Queue full: per-request backpressure, not rejection —
            # the request was admitted; its cells wait for space.
            async with self._space:
                await self._space.wait()
        self._work.set()

    # -- HTTP layer -------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            try:
                method, path, _version = (
                    request_line.decode("latin-1").split()
                )
            except ValueError:
                await _respond_json(
                    writer, 400, {"error": "malformed request line"}
                )
                return
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length", "0") or 0)
            if length:
                body = await reader.readexactly(length)
            await self._route(method, path, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            try:
                await _respond_json(writer, 500, {"error": repr(exc)})
            except ConnectionError:  # pragma: no cover
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _route(
        self, method: str, path: str, body: bytes, writer
    ) -> None:
        path, _, query = path.partition("?")
        if method == "GET" and path == "/healthz":
            await _respond_json(
                writer,
                200,
                {
                    "status": "draining" if self.draining else "ok",
                    "active_jobs": len(self._active),
                },
            )
        elif method == "GET" and path == "/stats":
            await _respond_json(writer, 200, self._stats_json())
        elif method == "POST" and path == "/submit":
            try:
                doc = json.loads(body.decode("utf-8") or "{}")
                status, payload, extra = await self._submit(doc)
            except ValueError as exc:
                status, payload, extra = 400, {"error": str(exc)}, {}
            await _respond_json(writer, status, payload, extra)
        elif method == "POST" and path == "/drain":
            asyncio.create_task(self.drain(), name="drain")
            await _respond_json(writer, 202, {"status": "draining"})
        elif path.startswith("/jobs/"):
            await self._route_job(method, path, query, writer)
        else:
            await _respond_json(
                writer, 404, {"error": f"no route {method} {path}"}
            )

    async def _route_job(
        self, method: str, path: str, query: str, writer
    ) -> None:
        parts = path.split("/")  # ['', 'jobs', id, maybe-verb]
        request = self._requests.get(parts[2]) if len(parts) > 2 else None
        if method != "GET" or request is None:
            await _respond_json(writer, 404, {"error": "unknown job"})
            return
        verb = parts[3] if len(parts) > 3 else ""
        if verb == "":
            await _respond_json(writer, 200, request.status_json())
        elif verb == "stream":
            await self._stream_job(request, writer)
        elif verb == "trace":
            cell = 0
            for pair in query.split("&"):
                if pair.startswith("cell="):
                    cell = int(pair[5:] or 0)
            trace = request.traces.get(cell)
            if trace is None:
                await _respond_json(
                    writer,
                    404,
                    {"error": f"no trace for cell {cell} (submit with "
                              f'"trace": true)'},
                )
            else:
                await _respond_json(writer, 200, trace)
        else:
            await _respond_json(writer, 404, {"error": f"no verb {verb!r}"})

    async def _stream_job(self, request: _Request, writer) -> None:
        """Replayable chunked NDJSON of the job's event history."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        sent = 0
        while True:
            async with request.cond:
                while sent >= len(request.events) and not request.finished:
                    await request.cond.wait()
                events = request.events[sent:]
            for event in events:
                chunk = (json.dumps(event) + "\n").encode("utf-8")
                writer.write(
                    f"{len(chunk):x}\r\n".encode() + chunk + b"\r\n"
                )
                sent += 1
            await writer.drain()
            if sent >= len(request.events) and request.finished:
                break
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    def _stats_json(self) -> dict[str, Any]:
        doc = self.stats.to_json()
        doc["live"] = {
            "draining": self.draining,
            "queued": len(self.scheduler),
            "queue_depths": self.scheduler.depths(),
            "active_jobs": len(self._active),
            "workers": self.config.workers,
            "idle_workers": (
                self.fleet.idle_count if self.fleet is not None else 0
            ),
            "worker_respawns": (
                self.fleet.respawns if self.fleet is not None else 0
            ),
            "inflight_cells": len(self._cells),
            "quarantined_specs": len(self._quarantine),
        }
        # The arrival log can grow large; /stats trims it to a tail.
        doc["arrivals"] = doc["arrivals"][-50:]
        return doc


def iter_pop_all(scheduler: WeightedScheduler):
    """Drain a scheduler to a list of ``(priority, job)`` pairs."""
    while True:
        popped = scheduler.pop()
        if popped is None:
            return
        yield popped


async def _respond_json(
    writer, status: int, payload: Any, extra_headers: Optional[dict] = None
) -> None:
    reason = {
        200: "OK",
        202: "Accepted",
        400: "Bad Request",
        404: "Not Found",
        422: "Unprocessable Entity",
        429: "Too Many Requests",
        500: "Internal Server Error",
        503: "Service Unavailable",
    }.get(status, "OK")
    body = json.dumps(payload).encode("utf-8")
    headers = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    writer.write(("\r\n".join(headers) + "\r\n\r\n").encode() + body)
    await writer.drain()
