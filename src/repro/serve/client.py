"""Stdlib HTTP client for the serving layer.

Backs ``python -m repro submit/status/watch`` and the e2e tests.
``http.client`` (not urllib) so the chunked NDJSON stream can be
consumed line-by-line as events arrive.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Any, Iterator, Optional

__all__ = [
    "ServeError",
    "ServeClient",
]


class ServeError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: Any):
        self.status = status
        self.payload = payload
        detail = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status}: {detail}")

    @property
    def retry_after_s(self) -> Optional[int]:
        """The server's 429 back-off hint, if it gave one."""
        if isinstance(self.payload, dict):
            value = self.payload.get("retry_after_s")
            return int(value) if value is not None else None
        return None


class ServeClient:
    """One service endpoint; each call uses a fresh connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 timeout_s: float = 60.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # -- plumbing ---------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Any:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout_s)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            doc = json.loads(raw) if raw else {}
            if response.status >= 400:
                raise ServeError(response.status, doc)
            return doc
        finally:
            conn.close()

    # -- endpoints --------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def submit(self, body: dict) -> dict:
        """POST a submit body; raises :class:`ServeError` on 429/503."""
        return self._request("POST", "/submit", body)

    def submit_with_retry(
        self, body: dict, attempts: int = 5
    ) -> dict:
        """Submit, honouring 429 Retry-After up to ``attempts`` times."""
        for attempt in range(attempts):
            try:
                return self.submit(body)
            except ServeError as exc:
                if exc.status != 429 or attempt == attempts - 1:
                    raise
                time.sleep(min(exc.retry_after_s or 1, 10))
        raise AssertionError("unreachable")  # pragma: no cover

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def trace(self, job_id: str, cell: int = 0) -> dict:
        return self._request("GET", f"/jobs/{job_id}/trace?cell={cell}")

    def drain(self) -> dict:
        return self._request("POST", "/drain")

    def watch(self, job_id: str) -> Iterator[dict]:
        """Yield the job's NDJSON events as the service streams them.

        The stream replays history first, so watching a finished job
        yields every event and returns; the final event has
        ``"event": "done"``.
        """
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout_s)
        try:
            conn.request("GET", f"/jobs/{job_id}/stream")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                raise ServeError(
                    response.status, json.loads(raw) if raw else {}
                )
            # http.client decodes the chunked framing; readline gives
            # us back the NDJSON lines the server wrote.
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def wait(self, job_id: str) -> dict:
        """Block until the job finishes; return its final status."""
        for event in self.watch(job_id):
            if event.get("event") == "done":
                break
        return self.status(job_id)
