"""Service observability: counters, latency histograms, arrival log.

Every admitted cell leaves three footprints here:

* the ``service_*`` counters (:data:`repro.metrics.SERVICE_COUNTERS`),
* per-priority **queue-wait** and **service-time** histograms, and
* one row in the **arrival log** — ``(t_arrive, priority, service_s,
  t_start, t_done, status)`` relative to service start.

The arrival log is the bridge to self-validation: it is exactly the
input :class:`repro.serve.model.ServiceModel` replays, so a drained
service's stats file can be checked against the DES model's prediction
of the same traffic (``python -m repro serve-validate --log``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.metrics.counters import Counters, service_summary
from repro.serve.protocol import PRIORITY_CLASSES

__all__ = ["Histogram", "ServiceStats", "STATS_SCHEMA"]

#: Schema tag for persisted stats documents.
STATS_SCHEMA = "repro-service-stats/1"

#: Default histogram bucket upper bounds in seconds (1-2-5 decades:
#: 1 ms .. 1000 s, then overflow).  Wide enough for cache hits (~ms)
#: and cold sweeps (~minutes) alike.
_DEFAULT_BOUNDS = tuple(
    m * scale for scale in (1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)
    for m in (1.0, 2.0, 5.0)
) + (1000.0,)


class Histogram:
    """Fixed-bucket latency histogram with exact count/sum/min/max."""

    def __init__(self, bounds: tuple[float, ...] = _DEFAULT_BOUNDS):
        self.bounds = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be ascending")
        self.counts = [0] * (len(self.bounds) + 1)  # +1 = overflow
        self.n = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, value: float) -> None:
        value = max(0.0, float(value))
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.n += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile from the buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.n == 0:
            return 0.0
        rank = q * self.n
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank and count:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max

    def to_json(self) -> dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "n": self.n,
            "total": self.total,
            "min": self.min if self.n else None,
            "max": self.max if self.n else None,
        }

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "Histogram":
        hist = cls(tuple(doc["bounds"]))
        hist.counts = [int(c) for c in doc["counts"]]
        hist.n = int(doc["n"])
        hist.total = float(doc["total"])
        hist.min = float(doc["min"]) if doc.get("min") is not None else float("inf")
        hist.max = float(doc["max"]) if doc.get("max") is not None else float("-inf")
        return hist


@dataclass
class ArrivalRecord:
    """One cell's life through the service, in seconds since start."""

    t_arrive: float
    priority: str
    status: str  # completed | failed | rejected | cancelled
    service_s: float = 0.0
    t_start: Optional[float] = None
    t_done: Optional[float] = None
    key: str = ""

    def to_json(self) -> dict[str, Any]:
        return {
            "t": round(self.t_arrive, 6),
            "priority": self.priority,
            "status": self.status,
            "service_s": round(self.service_s, 6),
            "t_start": None if self.t_start is None else round(self.t_start, 6),
            "t_done": None if self.t_done is None else round(self.t_done, 6),
            "key": self.key,
        }

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "ArrivalRecord":
        return cls(
            t_arrive=float(doc["t"]),
            priority=str(doc["priority"]),
            status=str(doc["status"]),
            service_s=float(doc.get("service_s", 0.0)),
            t_start=(
                None if doc.get("t_start") is None else float(doc["t_start"])
            ),
            t_done=(
                None if doc.get("t_done") is None else float(doc["t_done"])
            ),
            key=str(doc.get("key", "")),
        )


@dataclass
class ServiceStats:
    """The live service's measurement hub (single-threaded: one loop)."""

    counters: Counters = field(default_factory=Counters)
    queue_wait: dict[str, Histogram] = field(
        default_factory=lambda: {p: Histogram() for p in PRIORITY_CLASSES}
    )
    service_time: dict[str, Histogram] = field(
        default_factory=lambda: {p: Histogram() for p in PRIORITY_CLASSES}
    )
    arrivals: list[ArrivalRecord] = field(default_factory=list)
    started_monotonic: float = field(default_factory=time.monotonic)
    config: dict[str, Any] = field(default_factory=dict)
    #: Specs poisoned out of admission (truncated run key -> reason).
    #: Persists through drain so the stats document records *which*
    #: specs were quarantined, not just how many.
    quarantine: dict[str, str] = field(default_factory=dict)

    # -- recording --------------------------------------------------------
    def now(self) -> float:
        """Seconds since service start (the arrival-log clock)."""
        return time.monotonic() - self.started_monotonic

    def record_rejected(self, priority: str, n: int = 1) -> None:
        self.counters["service_rejected"] += n
        for _ in range(n):
            self.arrivals.append(
                ArrivalRecord(self.now(), priority, "rejected")
            )

    def record_cell(self, record: ArrivalRecord) -> None:
        """Account one finished (or failed/cancelled) cell."""
        self.arrivals.append(record)
        if record.status == "completed":
            self.counters["service_completed"] += 1
        elif record.status == "failed":
            self.counters["service_failed"] += 1
        else:
            self.counters["service_cancelled"] += 1
        if record.t_start is not None:
            self.queue_wait[record.priority].add(
                record.t_start - record.t_arrive
            )
        if record.t_done is not None and record.t_start is not None:
            self.service_time[record.priority].add(
                record.t_done - record.t_start
            )

    def mean_service_s(self) -> float:
        """Aggregate mean service time (the Retry-After estimator)."""
        n = sum(h.n for h in self.service_time.values())
        total = sum(h.total for h in self.service_time.values())
        return total / n if n else 0.05

    # -- persistence ------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        return {
            "schema": STATS_SCHEMA,
            "config": self.config,
            "counters": {k: float(v) for k, v in sorted(self.counters.items())},
            "queue_wait": {p: h.to_json() for p, h in self.queue_wait.items()},
            "service_time": {
                p: h.to_json() for p, h in self.service_time.items()
            },
            "arrivals": [r.to_json() for r in self.arrivals],
            "quarantine": dict(self.quarantine),
        }

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "ServiceStats":
        if doc.get("schema") != STATS_SCHEMA:
            raise ValueError(
                f"not a service stats document (schema={doc.get('schema')!r})"
            )
        stats = cls(config=dict(doc.get("config", {})))
        stats.counters = Counters(
            {k: float(v) for k, v in doc.get("counters", {}).items()}
        )
        stats.queue_wait = {
            p: Histogram.from_json(h)
            for p, h in doc.get("queue_wait", {}).items()
        }
        stats.service_time = {
            p: Histogram.from_json(h)
            for p, h in doc.get("service_time", {}).items()
        }
        stats.arrivals = [
            ArrivalRecord.from_json(r) for r in doc.get("arrivals", [])
        ]
        stats.quarantine = {
            str(k): str(v) for k, v in doc.get("quarantine", {}).items()
        }
        return stats

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=1)
            handle.write("\n")

    @classmethod
    def read(cls, path: str) -> "ServiceStats":
        with open(path) as handle:
            return cls.from_json(json.load(handle))

    # -- rendering --------------------------------------------------------
    def render(self) -> str:
        """The ``python -m repro report --service`` block."""
        lines = ["service counters:"]
        summary = service_summary(self.counters)
        if summary:
            width = max(len(k) for k in summary)
            lines += [
                f"  {key:<{width}}  {value:.0f}"
                for key, value in summary.items()
            ]
        else:
            lines.append("  (none)")
        lines.append("")
        header = (
            f"{'priority':<12}{'n':>7}{'wait mean':>11}{'wait p90':>10}"
            f"{'svc mean':>10}{'svc p90':>9}"
        )
        lines.append("per-priority latency (seconds):")
        lines.append(header)
        for priority in sorted(
            self.queue_wait, key=lambda p: -PRIORITY_CLASSES.get(p, 0)
        ):
            wait = self.queue_wait[priority]
            svc = self.service_time.get(priority) or Histogram()
            lines.append(
                f"{priority:<12}{wait.n:>7}{wait.mean:>11.4f}"
                f"{wait.quantile(0.9):>10.4f}{svc.mean:>10.4f}"
                f"{svc.quantile(0.9):>9.4f}"
            )
        lines.append("")
        lines.append(f"arrival log: {len(self.arrivals)} records")
        if self.quarantine:
            lines.append("")
            lines.append(f"quarantined specs: {len(self.quarantine)}")
            lines += [
                f"  {key}  {reason}"
                for key, reason in sorted(self.quarantine.items())
            ]
        return "\n".join(lines)
