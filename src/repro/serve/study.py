"""The queueing self-validation study behind ``repro serve-validate``.

Two modes:

* **Synthetic** (default): generate seeded M/M/1 arrival logs at
  several utilization levels, replay them through the mirrored
  :class:`~repro.serve.model.ServiceModel`, and check Little's law at
  every level, the M/M/1 latency blow-up across levels, and the
  priority starvation bound under an overload mix.  This produces the
  table committed in EXPERIMENTS.md.
* **Recorded** (``--log``): load a drained service's stats file,
  replay its recorded arrival log through the model built from its
  recorded configuration, and compare predicted mean latency and
  occupancy against what the live service measured.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.serve.model import ArrivalLog, ServiceModel, poisson_log
from repro.serve.protocol import PRIORITY_CLASSES
from repro.serve.stats import ServiceStats
from repro.serve.validate import (
    CheckResult,
    compare_with_live,
    littles_law_check,
    mm1_trend_check,
    starvation_check,
)

__all__ = [
    "run_serve_study",
    "render_study",
    "write_study",
    "run_log_replay",
    "STUDY_SCHEMA",
]

STUDY_SCHEMA = "repro-serve-study/1"

#: Offered utilization levels for the M/M/1 sweep.  Three spread
#: levels plus one near saturation: the blow-up must be visible, not
#: inferred.  The levels are kept well separated — with finite
#: horizons, achieved utilizations at adjacent targets can invert.
UTILIZATIONS = (0.5, 0.7, 0.85, 0.95)

#: Nominal mean service demand (model seconds) for synthetic logs.
MEAN_SERVICE_S = 1.0


def run_serve_study(
    seed: int = 0, quick: bool = False, duration_s: Optional[float] = None
) -> dict[str, Any]:
    """The full self-validation study as a JSON-safe document."""
    levels = UTILIZATIONS[:3] if quick else UTILIZATIONS
    if duration_s is None:
        duration_s = 1500.0 if quick else 6000.0
    rows = []
    points = []
    all_ok = True
    for i, rho in enumerate(levels):
        # Near saturation the latency estimator mixes on a timescale
        # ~ (1-rho)^-2, so stretch the horizon accordingly — a flat
        # horizon would bias W low at the top level and can even
        # break monotonicity between close levels.
        level_duration = duration_s * max(1.0, (0.3 / (1.0 - rho)) ** 2)
        log = poisson_log(
            rate=rho / MEAN_SERVICE_S,
            mean_service_s=MEAN_SERVICE_S,
            duration_s=level_duration,
            seed=seed + i,
        )
        run = ServiceModel(workers=1, max_queue=1_000_000).simulate(log)
        little = littles_law_check(run)
        all_ok = all_ok and little.ok
        points.append((run.utilization, run.mean_latency_s()))
        rows.append(
            {
                "rho_offered": rho,
                "rho_measured": run.utilization,
                "duration_s": level_duration,
                "jobs": len(log),
                "W_measured_s": run.mean_latency_s(),
                "L_sampled": run.time_avg_in_system,
                "lambda_W": little.detail["lambda_W"],
                "littles_rel_err": little.detail["rel_err"],
                "littles_ok": little.ok,
            }
        )
    trend = mm1_trend_check(points, MEAN_SERVICE_S)
    all_ok = all_ok and trend.ok

    # Priority starvation under sustained overload: interactive+batch
    # flood a two-worker fleet (offered rho 1.2) while bulk asks for
    # well under its guaranteed 1/12 share — weighted RR must keep
    # serving it.
    overload = poisson_log(
        rate=2.4 / MEAN_SERVICE_S,
        mean_service_s=MEAN_SERVICE_S,
        duration_s=(duration_s / 10.0),
        seed=seed + 100,
        priority_mix={"interactive": 0.35, "batch": 0.61, "bulk": 0.04},
    )
    prio_run = ServiceModel(workers=2, max_queue=1_000_000).simulate(overload)
    starvation = starvation_check(
        prio_run.rates_by_class(),
        prio_run.waits_by_class(),
        prio_run.mean_service_s,
        workers=2,
        weights=PRIORITY_CLASSES,
    )
    prio_little = littles_law_check(prio_run)
    all_ok = all_ok and starvation.ok and prio_little.ok

    return {
        "schema": STUDY_SCHEMA,
        "seed": seed,
        "quick": quick,
        "duration_s": duration_s,
        "mean_service_s": MEAN_SERVICE_S,
        "mm1_rows": rows,
        "mm1_trend": _check_json(trend),
        "priority": {
            "waits_by_class": prio_run.waits_by_class(),
            "rates_by_class": prio_run.rates_by_class(),
            "littles": _check_json(prio_little),
            "starvation": _check_json(starvation),
        },
        "ok": all_ok,
    }


def _check_json(check: CheckResult) -> dict[str, Any]:
    return {
        "name": check.name,
        "ok": check.ok,
        "summary": check.summary,
        "detail": check.detail,
    }


def render_study(doc: dict[str, Any]) -> str:
    """The human/EXPERIMENTS rendering of a study document."""
    lines = [
        "queueing self-validation: the serving layer replayed on our "
        "own DES engine",
        f"(M/M/1, mean service {doc['mean_service_s']:.1f} s, "
        f"{doc['duration_s']:.0f} s base horizon stretched "
        f"~(1-rho)^-2 near saturation, seed {doc['seed']})",
        "",
        f"{'rho':>6}{'jobs':>7}{'W meas (s)':>12}{'W theory':>10}"
        f"{'L sampled':>11}{'lambda*W':>10}{'LL err':>8}  {'ok':<3}",
    ]
    theory = doc["mm1_trend"]["detail"]["W_theory"]
    for row, w_th in zip(doc["mm1_rows"], theory):
        lines.append(
            f"{row['rho_measured']:>6.3f}{row['jobs']:>7}"
            f"{row['W_measured_s']:>12.3f}{w_th:>10.3f}"
            f"{row['L_sampled']:>11.3f}{row['lambda_W']:>10.3f}"
            f"{row['littles_rel_err'] * 100:>7.2f}%"
            f"  {'yes' if row['littles_ok'] else 'NO'}"
        )
    lines.append("")
    lines.append(f"M/M/1 nonlinearity: {doc['mm1_trend']['summary']} -> "
                 f"{'ok' if doc['mm1_trend']['ok'] else 'FAILED'}")
    prio = doc["priority"]
    lines.append("")
    lines.append(
        "priority overload (2 workers, offered rho 1.2, weights "
        + "/".join(f"{p}={w}" for p, w in sorted(
            PRIORITY_CLASSES.items(), key=lambda kv: -kv[1]
        ))
        + "):"
    )
    for priority in sorted(
        prio["waits_by_class"], key=lambda p: -PRIORITY_CLASSES.get(p, 0)
    ):
        lines.append(
            f"  {priority:<12} rate {prio['rates_by_class'][priority]:>7.3f}/s"
            f"  mean wait {prio['waits_by_class'][priority]:>9.3f} s"
        )
    lines.append(f"  Little's law: {prio['littles']['summary']} -> "
                 f"{'ok' if prio['littles']['ok'] else 'FAILED'}")
    lines.append(f"  starvation:   {prio['starvation']['summary']} -> "
                 f"{'ok' if prio['starvation']['ok'] else 'FAILED'}")
    lines.append("")
    lines.append(f"overall: {'PASS' if doc['ok'] else 'FAIL'}")
    return "\n".join(lines)


def write_study(doc: dict[str, Any], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=1)
        handle.write("\n")


def run_log_replay(stats_path: str) -> tuple[str, bool]:
    """Replay a recorded service log through the model; render verdict."""
    stats = ServiceStats.read(stats_path)
    log = ArrivalLog.from_stats(stats)
    if not log.arrivals:
        raise ValueError(f"{stats_path}: arrival log is empty")
    model = ServiceModel.from_stats(stats)
    run = model.simulate(log)
    little = littles_law_check(run)
    live = compare_with_live(stats, run)
    lines = [
        f"recorded arrival log: {len(log)} arrivals over "
        f"{log.duration:.2f} s ({stats_path})",
        f"model config: {model.workers} worker(s), "
        f"max queue {model.max_queue}",
        f"model Little's law: {little.summary} -> "
        f"{'ok' if little.ok else 'FAILED'}",
        f"live vs model:      {live.summary} -> "
        f"{'ok' if live.ok else 'FAILED'}",
    ]
    return "\n".join(lines), bool(little.ok and live.ok)
