"""Discrete-event simulation engine (the substrate under everything).

Public surface:

* :class:`~repro.sim.core.Environment` — event loop and simulated clock.
* :class:`~repro.sim.core.Process` / :class:`~repro.sim.core.Timeout` —
  generator-based processes.
* :class:`~repro.sim.resources.Resource` / ``Store`` / ``PriorityStore``
  / ``Container`` — shared-resource primitives.
* :class:`~repro.sim.monitor.Trace` — instrumentation.
* :mod:`repro.sim.equeue` — pluggable event queues (``heap`` reference,
  ``calendar`` with cohort dispatch), selected via ``REPRO_ENGINE_QUEUE``.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Process,
    Timeout,
)
from repro.sim.equeue import (
    ENGINE_QUEUE_ENV,
    ENGINE_QUEUES,
    CalendarQueue,
    EventQueue,
    HeapQueue,
    engine_queue_name,
    make_queue,
)
from repro.sim.monitor import (
    IntervalAccumulator,
    Trace,
    TraceRecord,
    UtilizationMeter,
)
from repro.sim.partition import (
    Export,
    PartitionHost,
    WindowCoordinator,
    WindowReport,
    WindowStats,
    lookahead_matrix,
    partition_ranks,
    safe_horizons,
)
from repro.sim.resources import Container, PriorityStore, Resource, Store

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "EventQueue",
    "HeapQueue",
    "CalendarQueue",
    "ENGINE_QUEUE_ENV",
    "ENGINE_QUEUES",
    "engine_queue_name",
    "make_queue",
    "AllOf",
    "AnyOf",
    "Resource",
    "Store",
    "PriorityStore",
    "Container",
    "Trace",
    "TraceRecord",
    "IntervalAccumulator",
    "UtilizationMeter",
    "partition_ranks",
    "lookahead_matrix",
    "safe_horizons",
    "Export",
    "WindowReport",
    "PartitionHost",
    "WindowStats",
    "WindowCoordinator",
]
