"""Pluggable event queues for the DES engine (``REPRO_ENGINE_QUEUE``).

The :class:`~repro.sim.core.Environment` schedules events as entries of
the fixed shape ``(time, priority, seq, event)`` — the same tuple the
golden-trace suite digests — and pops them in strictly increasing
``(time, priority, seq)`` order.  That total order is the engine's
whole determinism contract; the queue holding the entries is an
implementation detail.  This module makes the queue pluggable:

* :class:`HeapQueue` — the original ``heapq`` binary heap, kept as the
  reference implementation;
* :class:`CalendarQueue` — a Brown-style calendar queue (one sorted
  bucket per ``width`` of simulated time, years wrap modulo the bucket
  count) with lazy bucket resizing, tuned for the engine's workload:
  events cluster at shared timestamps (round boundaries, poll
  cadences), and :meth:`~EventQueue.pop_cohort` slices a whole
  same-``(time, priority)`` run out of one bucket in one operation
  instead of paying one ``heappop`` sift per event.

Both variants produce the **identical pop order** for the identical
push sequence — the differential suite pins bit-identical golden trace
digests heap-vs-calendar across apps, machines, and fault plans.

Select via the environment variable, read once per
:class:`Environment` construction (mirroring ``REPRO_BATCH_PATH``)::

    REPRO_ENGINE_QUEUE=calendar python -m repro table5

``cancel`` exists for the differential fuzz suite and the engine
microbench (the core engine never removes a scheduled entry): the heap
tombstones lazily, the calendar removes eagerly — either way a
cancelled entry never surfaces from ``pop``.
"""

from __future__ import annotations

import heapq
import os
from bisect import bisect_right
from typing import Any, Optional

from repro.config import ENGINE_QUEUES as _ENGINE_QUEUES

__all__ = [
    "ENGINE_QUEUE_ENV",
    "ENGINE_QUEUES",
    "engine_queue_name",
    "make_queue",
    "EventQueue",
    "HeapQueue",
    "CalendarQueue",
]

#: Environment variable selecting the engine's event queue.
ENGINE_QUEUE_ENV = "REPRO_ENGINE_QUEUE"

#: Known variants, in (reference, optimized) order.  The canonical
#: tuple lives in :mod:`repro.config` next to the other tuning-knob
#: bounds; re-exported here for backward compatibility.
ENGINE_QUEUES = _ENGINE_QUEUES

#: Entry shape shared with the environment: (time, priority, seq, event).
Entry = tuple  # (float, int, int, Any)

_INF = float("inf")


def engine_queue_name() -> str:
    """The variant ``REPRO_ENGINE_QUEUE`` selects (default ``heap``)."""
    name = os.environ.get(ENGINE_QUEUE_ENV, "heap").strip().lower() or "heap"
    if name not in ENGINE_QUEUES:
        raise ValueError(
            f"unknown {ENGINE_QUEUE_ENV}={name!r}; known: {ENGINE_QUEUES}"
        )
    return name


def make_queue(queue: "str | EventQueue | None" = None) -> "EventQueue":
    """Build (or pass through) an event queue.

    ``None`` follows ``REPRO_ENGINE_QUEUE``; a string names a variant;
    an :class:`EventQueue` instance is returned as-is (tests inject
    pre-configured queues this way).
    """
    if isinstance(queue, EventQueue):
        return queue
    name = engine_queue_name() if queue is None else queue
    if name == "heap":
        return HeapQueue()
    if name == "calendar":
        return CalendarQueue()
    raise ValueError(
        f"unknown engine queue {name!r}; known: {ENGINE_QUEUES}"
    )


class EventQueue:
    """Interface both variants implement.

    Entries are ``(time, priority, seq, event)`` tuples; ``seq`` is
    unique per queue lifetime (the environment's monotone event id), so
    tuple comparison never reaches the event object.  ``pop`` returns
    entries in strictly increasing ``(time, priority, seq)`` order.
    """

    #: Variant name (matches its :data:`ENGINE_QUEUES` key).
    name: str = ""

    def push(self, entry: Entry) -> None:
        raise NotImplementedError

    def pop(self) -> Entry:
        """Remove and return the minimum entry (raises IndexError if empty)."""
        raise NotImplementedError

    def pop_cohort(self) -> list:
        """Remove and return the maximal run of minimum entries sharing
        the head's ``(time, priority)``, in insertion (``seq``) order."""
        raise NotImplementedError

    def peek(self) -> float:
        """Time of the next entry, or ``inf`` when empty."""
        raise NotImplementedError

    def peek_key(self) -> Optional[tuple]:
        """``(time, priority)`` of the next entry, or ``None`` when empty."""
        raise NotImplementedError

    def cancel(self, entry: Entry) -> bool:
        """Remove ``entry`` (matched by its unique ``seq``) before it
        pops.  Returns False if it is not pending (already popped or
        already cancelled)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0


class HeapQueue(EventQueue):
    """The reference queue: a ``heapq`` binary heap.

    Cancellation tombstones lazily (a binary heap cannot cheaply remove
    an interior entry): cancelled seqs sit in a set and are discarded
    whenever they surface at the heap head.
    """

    __slots__ = ("_heap", "_cancelled")

    name = "heap"

    def __init__(self) -> None:
        self._heap: list[Entry] = []
        self._cancelled: set[int] = set()

    def push(self, entry: Entry) -> None:
        heapq.heappush(self._heap, entry)

    def _skim(self) -> None:
        """Drop cancelled entries sitting at the heap head."""
        heap, cancelled = self._heap, self._cancelled
        while heap and heap[0][2] in cancelled:
            cancelled.discard(heapq.heappop(heap)[2])

    def pop(self) -> Entry:
        self._skim()
        return heapq.heappop(self._heap)

    def pop_cohort(self) -> list:
        self._skim()
        heap = self._heap
        head = heapq.heappop(heap)
        when, priority = head[0], head[1]
        cohort = [head]
        cancelled = self._cancelled
        while heap and heap[0][0] == when and heap[0][1] == priority:
            entry = heapq.heappop(heap)
            if entry[2] in cancelled:
                cancelled.discard(entry[2])
                continue
            cohort.append(entry)
        return cohort

    def peek(self) -> float:
        self._skim()
        return self._heap[0][0] if self._heap else _INF

    def peek_key(self) -> Optional[tuple]:
        self._skim()
        if not self._heap:
            return None
        head = self._heap[0]
        return (head[0], head[1])

    def cancel(self, entry: Entry) -> bool:
        seq = entry[2]
        if seq in self._cancelled:
            return False
        # Membership check keeps ``len`` exact; O(n) but cancel is a
        # test/bench-only operation, never on the engine's hot path.
        if not any(e[2] == seq for e in self._heap):
            return False
        self._cancelled.add(seq)
        return True

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)


class CalendarQueue(EventQueue):
    """A calendar queue (Randy Brown, CACM 1988) with lazy resizing.

    Simulated time is divided into buckets of ``width`` microseconds;
    bucket ``v`` of "year" ``y`` shares a physical sorted list with
    bucket ``v`` of every other year (``v mod n_buckets``).  Pops scan
    buckets from the current virtual bucket forward, accepting an entry
    only when it belongs to the bucket's current year, so a pop is O(1)
    when the width matches the event density; pushes append to one
    bucket (a push that breaks the bucket's sorted order marks it
    dirty, and the first read sorts it — Timsort makes the deferred
    sort nearly free for the mostly-ordered runs pushes produce).
    When the population outgrows (or undershoots) the
    bucket count, the next operation lazily rebuilds with doubled
    (halved) buckets and a width re-estimated from the live entries —
    the classic adaptive scheme, made deterministic by sampling the
    sorted population instead of wall-clock behavior.

    Year membership is decided by integer virtual-bucket comparison
    (``int(t / width) == current``), never by accumulating bucket-top
    floats, so floating-point drift cannot reorder events: the pop
    order is bit-identical to :class:`HeapQueue`'s.

    One departure from Brown: resize triggers compare the number of
    **occupied buckets** (tracked on empty/non-empty transitions) to
    the bucket count, not the raw population.  The engine's workload is
    tie-heavy — every poll cadence wakes a whole rank cohort at one
    timestamp — and sizing buckets by population would spread 64
    timestamps over a thousand mostly-empty buckets that the head scan
    then walks one by one; a cohort of ties fills one bucket either
    way, so it should count once.  Occupancy is also exactly the
    quantity the head scan's cost depends on: grow while more than 3/4
    of the buckets are full (collisions pile up), shrink below 1/8
    (scans cross runs of empty buckets); the wide hysteresis stops
    push/pop thrash at a threshold.
    """

    __slots__ = (
        "_buckets", "_n_buckets", "_width", "_size", "_cur_v", "_occupied",
        "_dirty",
    )

    name = "calendar"

    #: Bucket-count bounds: shrink stops at _MIN_BUCKETS; resize
    #: triggers when bucket occupancy leaves [n/8, 3n/4].
    _MIN_BUCKETS = 4

    def __init__(self, n_buckets: int = _MIN_BUCKETS, width: float = 1.0):
        if n_buckets < 1:
            raise ValueError("n_buckets must be positive")
        if width <= 0:
            raise ValueError("width must be positive")
        self._buckets: list[list[Entry]] = [[] for _ in range(n_buckets)]
        self._n_buckets = n_buckets
        self._width = width
        self._size = 0
        #: Virtual bucket index of the scan position: int(now / width).
        self._cur_v = 0
        #: Non-empty physical buckets (drives resizing).
        self._occupied = 0
        #: Buckets whose tail append broke sorted order; sorted lazily
        #: on first read so pushes stay append-only.
        self._dirty: list[bool] = [False] * n_buckets

    # ---------------------------------------------------------- plumbing
    def push(self, entry: Entry) -> None:
        vb = int(entry[0] / self._width)
        i = vb % self._n_buckets
        bucket = self._buckets[i]
        if bucket:
            # Appends arriving in order (the common monotone schedule)
            # keep the bucket sorted for free; only an out-of-order
            # tail marks the bucket for a sort-on-first-read.
            if entry < bucket[-1]:
                self._dirty[i] = True
        else:
            self._occupied += 1
        bucket.append(entry)
        self._size += 1
        if vb < self._cur_v:
            # Earlier than the scan position (a re-push of a deferred
            # cohort remainder, or a fuzz push into the past): rewind so
            # the scan cannot skip it for a whole year.
            self._cur_v = vb
        if self._occupied * 4 > self._n_buckets * 3:
            self._resize(2 * self._n_buckets)

    def _locate_head(self) -> list:
        """Advance the scan to the bucket holding the minimum entry and
        return that bucket (its head is the minimum).  Requires a
        non-empty queue."""
        n = self._n_buckets
        width = self._width
        buckets = self._buckets
        dirty = self._dirty
        cur = self._cur_v
        for _ in range(n):
            i = cur % n
            bucket = buckets[i]
            if bucket:
                if dirty[i]:
                    bucket.sort()
                    dirty[i] = False
                if int(bucket[0][0] / width) == cur:
                    self._cur_v = cur
                    return bucket
            cur += 1
        # A full year scanned without a hit (sparse far-future jump):
        # direct search for the global minimum head.
        best: Optional[Entry] = None
        best_bucket: Optional[list] = None
        for i, bucket in enumerate(buckets):
            if not bucket:
                continue
            if dirty[i]:
                bucket.sort()
                dirty[i] = False
            if best is None or bucket[0] < best:
                best = bucket[0]
                best_bucket = bucket
        assert best is not None and best_bucket is not None
        self._cur_v = int(best[0] / width)
        return best_bucket

    def pop(self) -> Entry:
        if not self._size:
            raise IndexError("pop from an empty CalendarQueue")
        bucket = self._locate_head()
        entry = bucket.pop(0)
        self._size -= 1
        if not bucket:
            self._occupied -= 1
        if (
            self._occupied * 8 < self._n_buckets
            and self._n_buckets > self._MIN_BUCKETS
        ):
            self._resize(max(self._MIN_BUCKETS, self._n_buckets // 2))
        return entry

    def pop_cohort(self) -> list:
        """Slice the whole same-``(time, priority)`` run out in one cut.

        Equal times always map to the same physical bucket, so the run
        is a contiguous prefix of one sorted bucket: one ``bisect``
        finds its end and one slice removes it — the batch win the
        heap's per-entry sift cannot offer.
        """
        if not self._size:
            raise IndexError("pop from an empty CalendarQueue")
        bucket = self._locate_head()
        head = bucket[0]
        # (time, priority, inf) sorts after every (time, priority, seq):
        # bisect lands exactly past the cohort.
        end = bisect_right(bucket, (head[0], head[1], _INF))
        cohort = bucket[:end]
        del bucket[:end]
        self._size -= end
        if not bucket:
            self._occupied -= 1
        if (
            self._occupied * 8 < self._n_buckets
            and self._n_buckets > self._MIN_BUCKETS
        ):
            self._resize(max(self._MIN_BUCKETS, self._n_buckets // 2))
        return cohort

    def peek(self) -> float:
        if not self._size:
            return _INF
        return self._locate_head()[0][0]

    def peek_key(self) -> Optional[tuple]:
        if not self._size:
            return None
        head = self._locate_head()[0]
        return (head[0], head[1])

    def cancel(self, entry: Entry) -> bool:
        i = int(entry[0] / self._width) % self._n_buckets
        bucket = self._buckets[i]
        if self._dirty[i]:
            bucket.sort()
            self._dirty[i] = False
        # All entries sharing the time are contiguous; scan the run for
        # the matching seq (removal is eager — no tombstones to skip).
        i = bisect_right(bucket, (entry[0], -1, -1))
        seq = entry[2]
        while i < len(bucket) and bucket[i][0] == entry[0]:
            if bucket[i][2] == seq:
                del bucket[i]
                self._size -= 1
                if not bucket:
                    self._occupied -= 1
                return True
            i += 1
        return False

    def __len__(self) -> int:
        return self._size

    # ----------------------------------------------------------- resizing
    def _resize(self, n_buckets: int) -> None:
        """Rebuild with ``n_buckets`` buckets and a re-estimated width.

        Deterministic by construction: the new width is a pure function
        of the live entry times (sampled in sorted order), never of
        wall-clock or operation timing.
        """
        entries: list[Entry] = []
        for bucket in self._buckets:
            entries.extend(bucket)
        entries.sort()
        self._width = self._estimate_width(entries)
        self._n_buckets = n_buckets
        self._buckets = [[] for _ in range(n_buckets)]
        width = self._width
        for entry in entries:  # globally sorted -> appends stay sorted
            self._buckets[int(entry[0] / width) % n_buckets].append(entry)
        self._occupied = sum(1 for bucket in self._buckets if bucket)
        self._dirty = [False] * n_buckets
        if entries:
            self._cur_v = int(entries[0][0] / width)

    @staticmethod
    def _estimate_width(entries: list) -> float:
        """Brown's width heuristic: ~3x the mean gap between adjacent
        live entries, so a bucket holds ~1-3 events.  Sampling is an
        evenly-strided slice of the sorted population; duplicate
        timestamps contribute no gap (the cohort dispatcher absorbs
        them in one slice, so they should not shrink the width)."""
        if len(entries) < 2:
            return 1.0
        step = max(1, len(entries) // 64)
        times = [entries[i][0] for i in range(0, len(entries), step)]
        gaps = [
            b - a for a, b in zip(times, times[1:]) if b > a
        ]
        if not gaps:
            return 1.0
        width = 3.0 * (sum(gaps) / len(gaps))
        # Degenerate spacings (denormal-scale gaps) fall back to unit
        # width rather than creating astronomically many virtual years.
        return width if width > 1e-12 else 1.0
