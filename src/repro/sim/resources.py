"""Shared-resource primitives for the DES engine.

These mirror SimPy's resource set at the scale this library needs:

* :class:`Resource` — counted mutual exclusion (e.g. a NIC send engine,
  a DMA engine, a CPU control-path thread).
* :class:`Store` — FIFO buffer of Python objects with blocking get/put
  (e.g. a receive mailbox).
* :class:`PriorityStore` — like :class:`Store` but pops the smallest
  item first (used by the distributed priority queue model).
* :class:`Container` — a continuous quantity (e.g. buffer bytes).

All waiters are served in strict FIFO order, which keeps simulations
deterministic.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any

from repro.errors import SimulationError
from repro.sim.core import Environment, Event

__all__ = ["Resource", "Store", "PriorityStore", "Container"]


class Resource:
    """``capacity`` interchangeable slots; acquire with ``request()``.

    Usage inside a process::

        req = resource.request()
        yield req
        ...  # critical section
        resource.release(req)
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of pending (un-granted) requests."""
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that triggers when a slot is granted."""
        event = self.env.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self, request: Event) -> None:
        """Release a slot previously granted to ``request``."""
        if not request.triggered:
            # The request never got the slot: cancel it.
            try:
                self._waiters.remove(request)
            except ValueError:
                raise SimulationError("releasing an unknown request")
            request.succeed(None)
            return
        if self._in_use <= 0:
            raise SimulationError("release without matching request")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)
            # Slot is transferred; _in_use stays the same.
        else:
            self._in_use -= 1


class Store:
    """FIFO object buffer with blocking ``get`` and (bounded) ``put``."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def _do_put(self, item: Any) -> None:
        """Insert ``item``, serving a blocked getter directly if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self.items.append(item)

    def put(self, item: Any) -> Event:
        """Return an event that triggers once ``item`` is stored."""
        event = self.env.event()
        if len(self.items) < self.capacity:
            self._do_put(item)
            event.succeed(item)
        else:
            self._putters.append((event, item))
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the store is full."""
        if len(self.items) >= self.capacity and not self._getters:
            return False
        self._do_put(item)
        return True

    def get(self) -> Event:
        """Return an event that triggers with the next item."""
        event = self.env.event()
        if self.items:
            event.succeed(self._pop_item())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns ``(ok, item_or_None)``."""
        if not self.items:
            return False, None
        item = self._pop_item()
        self._admit_putter()
        return True, item

    def _pop_item(self) -> Any:
        return self.items.popleft()

    def _admit_putter(self) -> None:
        if self._putters and len(self.items) < self.capacity:
            event, item = self._putters.popleft()
            self._do_put(item)
            event.succeed(item)


class PriorityStore(Store):
    """A :class:`Store` that always yields its smallest item first.

    Items must be mutually comparable; use ``(priority, payload)``
    tuples when payloads are not.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        super().__init__(env, capacity)
        self._heap: list[Any] = []

    def __len__(self) -> int:
        return len(self._heap)

    def _do_put(self, item: Any) -> None:
        if self._getters:
            # Serve the waiter with the overall smallest element.
            heapq.heappush(self._heap, item)
            getter = self._getters.popleft()
            getter.succeed(heapq.heappop(self._heap))
        else:
            heapq.heappush(self._heap, item)

    def put(self, item: Any) -> Event:
        event = self.env.event()
        if len(self._heap) < self.capacity:
            self._do_put(item)
            event.succeed(item)
        else:
            self._putters.append((event, item))
        return event

    def try_put(self, item: Any) -> bool:
        if len(self._heap) >= self.capacity and not self._getters:
            return False
        self._do_put(item)
        return True

    def get(self) -> Event:
        event = self.env.event()
        if self._heap:
            event.succeed(heapq.heappop(self._heap))
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple[bool, Any]:
        if not self._heap:
            return False, None
        item = heapq.heappop(self._heap)
        self._admit_putter()
        return True, item

    def _admit_putter(self) -> None:
        if self._putters and len(self._heap) < self.capacity:
            event, item = self._putters.popleft()
            self._do_put(item)
            event.succeed(item)


class Container:
    """A continuous quantity (bytes, credits) with blocking get/put."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: deque[tuple[Event, float]] = deque()
        self._putters: deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError("amount must be positive")
        event = self.env.event()
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError("amount must be positive")
        event = self.env.event()
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self) -> None:
        """Grant FIFO waiters while their demands fit."""
        progress = True
        while progress:
            progress = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    event.succeed(amount)
                    progress = True
            if self._getters:
                event, amount = self._getters[0]
                if amount <= self._level:
                    self._getters.popleft()
                    self._level -= amount
                    event.succeed(amount)
                    progress = True
