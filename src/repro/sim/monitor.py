"""Instrumentation for simulations: traces, time series, utilization.

The runtime and framework models publish events ("message sent", "worker
busy", ...) to a :class:`Trace`; the harness digests those into the
per-experiment statistics the paper reports (e.g. smoothness of network
usage, communication/computation overlap).
"""

from __future__ import annotations

import warnings
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable, Optional

import numpy as np

from repro.sim.core import Environment

__all__ = ["TraceRecord", "Trace", "IntervalAccumulator", "UtilizationMeter"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace entry: what happened, when, and any payload."""

    time: float
    kind: str
    source: str
    payload: Any = None


class Trace:
    """Append-only event trace with simple querying.

    Tracing can be disabled (``enabled=False``) to make production runs
    allocation-free; all ``record`` calls become no-ops.

    ``max_records`` bounds memory for long chaos/soak runs: when set,
    the trace becomes a ring buffer keeping only the most recent
    ``max_records`` entries (oldest evicted first).  ``total_recorded``
    still counts every record ever made, so ``evicted`` reports exactly
    how much history was discarded.  The first eviction raises a loud
    (once-per-trace) :class:`RuntimeWarning` — a truncated trace must
    never silently read as a complete one.  The default (``None``)
    keeps the historical unbounded behavior.
    """

    def __init__(
        self,
        env: Environment,
        enabled: bool = True,
        max_records: Optional[int] = None,
    ):
        if max_records is not None and max_records <= 0:
            raise ValueError("max_records must be positive (or None)")
        self.env = env
        self.enabled = enabled
        self.max_records = max_records
        self.total_recorded = 0
        self._warned_eviction = False
        if max_records is None:
            self.records: Any = []
        else:
            self.records = deque(maxlen=max_records)

    @property
    def evicted(self) -> int:
        """How many records the ring buffer has discarded."""
        return self.total_recorded - len(self.records)

    def record(self, kind: str, source: str, payload: Any = None) -> None:
        if not self.enabled:
            return
        self.total_recorded += 1
        if (
            self.max_records is not None
            and not self._warned_eviction
            and self.total_recorded > self.max_records
        ):
            self._warned_eviction = True
            warnings.warn(
                f"Trace ring buffer full (max_records={self.max_records}): "
                "oldest records are being evicted — analyses over this "
                "trace see truncated history (raise max_records to keep "
                "it all)",
                RuntimeWarning,
                stacklevel=2,
            )
        self.records.append(
            TraceRecord(self.env.now, kind, source, payload)
        )

    def of_kind(self, kind: str) -> list[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def times(self, kind: str) -> np.ndarray:
        return np.array(
            [r.time for r in self.records if r.kind == kind], dtype=np.float64
        )

    def histogram(
        self, kind: str, n_bins: int, t_end: Optional[float] = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bin occurrences of ``kind`` over [0, t_end] into ``n_bins``.

        Returns (bin_edges, counts).  Used to measure how *smooth*
        communication is over the run (paper Section IV: spread-out
        communication vs. bursts at phase boundaries).
        """
        times = self.times(kind)
        end = t_end if t_end is not None else self.env.now
        if end <= 0:
            end = 1.0
        edges = np.linspace(0.0, end, n_bins + 1)
        counts, _ = np.histogram(times, bins=edges)
        return edges, counts

    def burstiness(self, kind: str, n_bins: int = 50) -> float:
        """Coefficient of variation of per-bin counts (0 = perfectly smooth)."""
        _, counts = self.histogram(kind, n_bins)
        mean = counts.mean()
        if mean == 0:
            return 0.0
        return float(counts.std() / mean)


class IntervalAccumulator:
    """Accumulates labeled [start, end) busy intervals per actor.

    Supports overlap queries used to quantify communication/computation
    overlap: the fraction of communication time hidden under compute.
    """

    def __init__(self) -> None:
        self._intervals: dict[str, list[tuple[float, float]]] = {}

    def add(self, label: str, start: float, end: float) -> None:
        if end < start:
            raise ValueError("interval ends before it starts")
        self._intervals.setdefault(label, []).append((start, end))

    def total(self, label: str) -> float:
        return sum(e - s for s, e in self._intervals.get(label, []))

    def merged(self, label: str) -> list[tuple[float, float]]:
        """Union of intervals for ``label`` as sorted disjoint spans."""
        spans = sorted(self._intervals.get(label, []))
        merged: list[tuple[float, float]] = []
        for s, e in spans:
            if merged and s <= merged[-1][1]:
                last_s, last_e = merged[-1]
                merged[-1] = (last_s, max(last_e, e))
            else:
                merged.append((s, e))
        return merged

    def overlap(self, label_a: str, label_b: str) -> float:
        """Total time during which both labels are active."""
        a = self.merged(label_a)
        b = self.merged(label_b)
        i = j = 0
        out = 0.0
        while i < len(a) and j < len(b):
            s = max(a[i][0], b[j][0])
            e = min(a[i][1], b[j][1])
            if e > s:
                out += e - s
            if a[i][1] <= b[j][1]:
                i += 1
            else:
                j += 1
        return out


class UtilizationMeter:
    """Tracks a step function (e.g. busy worker count) over time."""

    def __init__(self, env: Environment, initial: float = 0.0):
        self.env = env
        self._times: list[float] = [env.now]
        self._values: list[float] = [initial]

    @property
    def value(self) -> float:
        return self._values[-1]

    def set(self, value: float) -> None:
        now = self.env.now
        if now == self._times[-1]:
            self._values[-1] = value
        else:
            self._times.append(now)
            self._values.append(value)

    def add(self, delta: float) -> None:
        self.set(self._values[-1] + delta)

    def value_at(self, t: float) -> float:
        idx = bisect_right(self._times, t) - 1
        if idx < 0:
            return self._values[0]
        return self._values[idx]

    def time_average(self, t_end: Optional[float] = None) -> float:
        """Time-weighted mean of the step function over [t0, t_end]."""
        end = t_end if t_end is not None else self.env.now
        times = self._times + [end]
        total = 0.0
        for i, v in enumerate(self._values):
            span = max(0.0, min(times[i + 1], end) - min(times[i], end))
            total += v * span
        duration = end - self._times[0]
        return total / duration if duration > 0 else self._values[0]


def merge_traces(traces: Iterable[Trace]) -> list[TraceRecord]:
    """Merge multiple traces into one time-ordered record list."""
    records: list[TraceRecord] = []
    for trace in traces:
        records.extend(trace.records)
    records.sort(key=lambda r: r.time)
    return records
