"""Discrete-event simulation core.

A small, dependency-free event-loop in the style of SimPy: an
:class:`Environment` owns a time-ordered event queue (pluggable via
:mod:`repro.sim.equeue` — binary heap or calendar queue, selected by
``REPRO_ENGINE_QUEUE``), a :class:`Process` wraps a Python generator
that ``yield``\\ s events to wait on, and :class:`Timeout` models the
passage of simulated time.

The engine is deliberately deterministic: events scheduled for the same
simulated time fire in (priority, insertion-order) order, so repeated
runs of a simulation with the same seed produce identical traces.  This
determinism is what lets the benchmark harness reproduce the paper's
tables bit-for-bit across runs.

Simulated time is a ``float`` in *microseconds* throughout the library
(GPU-scale latencies are naturally expressed in us; milliseconds in the
paper's tables are obtained by dividing by 1000).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import DeadlockError, ProcessInterrupt, SimulationError
from repro.sim.equeue import EventQueue, make_queue

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "URGENT",
    "NORMAL",
]

#: Scheduling priority for control events that must fire before same-time
#: normal events (e.g. process resumption after an interrupt).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

# Sentinel distinguishing "not yet triggered" from "triggered with None".
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; it becomes *triggered* when
    :meth:`succeed` or :meth:`fail` schedules it on the environment's
    heap, and *processed* once the environment has fired its callbacks.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._processed = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self._ok = True
        self.env._schedule(self, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiting processes see ``exception``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self.env._schedule(self, delay=delay)
        return self

    def _fire(self) -> None:
        """Run and detach callbacks.  Called by the environment."""
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        for cb in callbacks:  # type: ignore[union-attr]
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed"
            if self._processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically ``delay`` time units later."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._ok = True
        # Fast-path schedule: timeouts dominate the queue traffic of a
        # busy simulation, and the delay was validated above, so push
        # directly instead of going through ``env._schedule`` (which
        # would re-validate).  The entry shape must stay identical to
        # ``_schedule``'s: (time, priority, sequence, event).
        env._push((env._now + delay, NORMAL, next(env._eid), self))


class _Initialize(Event):
    """Internal event used to start a process at the current time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._value = None
        self._ok = True
        self.callbacks.append(process._resume)
        env._schedule(self, priority=URGENT)


class Process(Event):
    """Wraps a generator; the process event triggers when it returns.

    The generator yields :class:`Event` instances; the process suspends
    until the yielded event fires, then resumes with the event's value
    (or with the exception thrown into it on failure/interrupt).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`ProcessInterrupt` into the process.

        The interrupt is delivered as an urgent event at the current
        simulation time.  Interrupting a finished process is an error.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        event = Event(self.env)
        event._value = ProcessInterrupt(cause)
        event._ok = False
        # Deliver directly to this process, bypassing the normal target:
        event.callbacks.append(self._resume)
        # Detach from whatever we were waiting on.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - already detached
                pass
        self._target = None
        self.env._schedule(event, priority=URGENT)

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        try:
            if event.ok:
                next_event = self._generator.send(event.value)
            else:
                next_event = self._generator.throw(event.value)
        except StopIteration as stop:
            self.env._active_process = None
            self._value = stop.value
            self._ok = True
            self.env._schedule(self, priority=URGENT)
            return
        except BaseException as exc:
            self.env._active_process = None
            self._value = exc
            self._ok = False
            self.env._schedule(self, priority=URGENT)
            return
        self.env._active_process = None

        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process {self.name!r} yielded a non-event: {next_event!r}"
            )
        if next_event.callbacks is None:
            # Already processed: resume immediately at the current time.
            immediate = Event(self.env)
            immediate._value = next_event._value
            immediate._ok = next_event._ok
            immediate.callbacks.append(self._resume)
            self.env._schedule(immediate, priority=URGENT)
            self._target = None
        else:
            next_event.callbacks.append(self._resume)
            self._target = next_event


class _MultiEvent(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("cannot mix events across environments")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._observe(ev)
            else:
                ev.callbacks.append(self._observe)

    def _observe(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_MultiEvent):
    """Triggers when *all* component events have triggered.

    Succeeds with the list of component values; fails with the first
    component failure.
    """

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([ev._value for ev in self.events])


class AnyOf(_MultiEvent):
    """Triggers when *any* component event triggers (value = that event's)."""

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)


class Environment:
    """Owns simulated time and the event queue.

    Usage::

        env = Environment()

        def proc(env):
            yield env.timeout(5.0)
            return "done"

        p = env.process(proc(env))
        env.run()
        assert env.now == 5.0 and p.value == "done"

    ``queue`` selects the event-queue implementation
    (:mod:`repro.sim.equeue`): ``None`` follows ``REPRO_ENGINE_QUEUE``
    (default ``heap``), a string names a variant (``"heap"`` /
    ``"calendar"``), an :class:`~repro.sim.equeue.EventQueue` instance
    is used as-is.  Read once at construction, so one simulation never
    mixes queue disciplines mid-run; every variant dispatches the
    bit-identical event order (the differential suite pins this).
    """

    __slots__ = (
        "_now",
        "_equeue",
        "_push",
        "engine_queue",
        "_eid",
        "_active_process",
        "trace_hook",
        "reference_loop",
    )

    def __init__(
        self,
        initial_time: float = 0.0,
        queue: "str | EventQueue | None" = None,
    ):
        self._now = float(initial_time)
        self._equeue: EventQueue = make_queue(queue)
        #: Bound push — the one scheduling entry point (``_schedule``
        #: and the :class:`Timeout` fast path both go through it, so
        #: there is exactly one access path to the queue).
        self._push = self._equeue.push
        #: Name of the active queue variant ("heap" / "calendar").
        self.engine_queue: str = self._equeue.name
        self._eid = itertools.count()
        self._active_process: Optional[Process] = None
        #: Optional instrumentation hook called once per dispatched
        #: event with the popped queue entry ``(time, priority, seq,
        #: event)`` *before* its callbacks run.  Used by the golden-
        #: trace determinism suite to digest the exact event order.
        #: Read once at the top of :meth:`run`; set it before running.
        self.trace_hook: Optional[
            Callable[[tuple[float, int, int, Event]], None]
        ] = None
        #: When True, :meth:`run` uses the straightforward one-
        #: ``step()``-per-event reference loop instead of the inlined
        #: cohort-batched fast loop.  Both must produce bit-identical
        #: traces; the golden-trace suite pins that equivalence.
        self.reference_loop: bool = False

    @property
    def now(self) -> float:
        """Current simulated time (microseconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------
    def _schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._push((self._now + delay, priority, next(self._eid), event))

    def schedule_at(
        self, event: Event, when: float, priority: int = NORMAL
    ) -> None:
        """Schedule a *triggered* ``event`` at the absolute time ``when``.

        Entry point for externally-sourced events — the partitioned
        engine (:mod:`repro.sim.partition`) injects cross-partition
        arrivals whose timestamps were computed on the sending
        partition's clock.  ``when`` must not lie in this
        environment's past; conservative windowing guarantees that for
        imports (an import's arrival time always exceeds the safe
        horizon the receiver last executed through).
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before now={self._now}"
            )
        if event._value is _PENDING:
            raise SimulationError("schedule_at requires a triggered event")
        self._push((when, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._equeue.peek()

    def step(self) -> None:
        """Process the single next event (the reference dispatch path).

        Pops through the same :class:`~repro.sim.equeue.EventQueue`
        interface as the fast loop — there is no second access path
        that could drift from it.
        """
        queue = self._equeue
        if not queue:
            raise DeadlockError("no scheduled events")
        entry = queue.pop()
        when, _prio, _eid, event = entry
        if when < self._now:  # pragma: no cover - queue invariant
            raise SimulationError("event scheduled in the past")
        self._now = when
        if self.trace_hook is not None:
            self.trace_hook(entry)
        if (
            isinstance(event, Process)
            and not event._ok
            and not event.callbacks
        ):
            # A process died with an unhandled exception and nothing was
            # waiting on it: surface the failure instead of losing it.
            event._fire()
            raise event._value  # type: ignore[misc]
        event._fire()

    def _dispatch(
        self,
        stop_event: Optional[Event],
        horizon: Optional[float],
    ) -> None:
        """The inlined hot loop behind :meth:`run`.

        Runs until ``stop_event`` is processed (if given), simulated
        time would pass ``horizon`` (if given), or the queue drains.
        Semantically identical to calling :meth:`step` in a loop — the
        golden-trace suite asserts bit-identical event order against
        that reference — but with queue methods and callback dispatch
        bound to locals, and whole same-``(time, priority)`` cohorts
        popped in one batch (:meth:`EventQueue.pop_cohort`) instead of
        one sift per event.

        Cohort batching preserves the documented (priority,
        insertion-order) tie contract exactly: a fired callback can
        only schedule entries with *larger* sequence numbers at the
        *current or a later* time, so the only way the popped cohort
        can become stale is an urgent (lower-priority-value) same-time
        push.  After any fire that grew the queue, the head key is
        compared against the next cohort member; on preemption the
        unfired remainder is pushed back (its keys are unchanged, so
        global order is untouched) and the outer loop re-pops.
        """
        queue = self._equeue
        pop_cohort = queue.pop_cohort
        push = queue.push
        hook = self.trace_hook
        while True:
            if stop_event is not None and stop_event._processed:
                return
            if not queue:
                if stop_event is not None:
                    raise DeadlockError(
                        f"event queue drained before {stop_event!r} "
                        "triggered"
                    )
                return
            if horizon is not None and queue.peek() > horizon:
                return
            cohort = pop_cohort()
            when = cohort[0][0]
            priority = cohort[0][1]
            if when < self._now:  # pragma: no cover - queue invariant
                raise SimulationError("event scheduled in the past")
            self._now = when
            pending = len(queue)
            for i, entry in enumerate(cohort):
                if i:
                    if stop_event is not None and stop_event._processed:
                        # The previous fire finished the run: the
                        # unfired remainder stays scheduled, exactly as
                        # the one-step reference loop would leave it.
                        for e in cohort[i:]:
                            push(e)
                        return
                    grown = len(queue)
                    if grown != pending:
                        key = queue.peek_key()
                        if key is not None and key < (when, priority):
                            # An urgent same-time event jumped ahead of
                            # the rest of this cohort: yield to it.
                            for e in cohort[i:]:
                                push(e)
                            break
                        pending = grown
                event = entry[3]
                if hook is not None:
                    hook(entry)
                callbacks = event.callbacks
                if (
                    callbacks is not None
                    and not callbacks
                    and not event._ok
                    and isinstance(event, Process)
                ):
                    # Dead process with no waiter: surface the failure.
                    for e in cohort[i + 1:]:
                        push(e)
                    event._fire()
                    raise event._value  # type: ignore[misc]
                # Inlined Event._fire(): detach callbacks, mark
                # processed, dispatch the batch.
                event.callbacks = None
                event._processed = True
                try:
                    for cb in callbacks:  # type: ignore[union-attr]
                        cb(event)
                except BaseException:
                    # A callback raised out of the loop: requeue the
                    # unfired remainder so the queue matches what the
                    # reference loop would hold at the same raise.
                    for e in cohort[i + 1:]:
                        push(e)
                    raise

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the event loop.

        ``until`` may be ``None`` (run until the queue drains), a time
        (run until simulated time reaches it), or an :class:`Event`
        (run until it is processed; returns/raises its value).
        """
        if isinstance(until, Event):
            stop_event = until
            if self.reference_loop:
                while not stop_event.processed:
                    if not self._equeue:
                        raise DeadlockError(
                            f"event queue drained before {stop_event!r} "
                            "triggered"
                        )
                    self.step()
            else:
                self._dispatch(stop_event, None)
            if stop_event.ok:
                return stop_event.value
            raise stop_event.value  # type: ignore[misc]
        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError("cannot run backwards in time")
            if self.reference_loop:
                while self._equeue.peek() <= horizon:
                    self.step()
            else:
                self._dispatch(None, horizon)
            self._now = horizon
            return None
        if self.reference_loop:
            while self._equeue:
                self.step()
        else:
            self._dispatch(None, None)
        return None
