"""Conservative time-windowed coordination for a partitioned DES run.

One simulation's ranks are grouped into *partitions*, each owning a
full :class:`~repro.sim.core.Environment` (and therefore its own
pluggable event queue).  Partitions advance in lockstep *windows* under
the classic conservative-PDES (Chandy–Misra–Bryant) contract:

* every cross-partition event must traverse a link with a known
  minimum latency — the **lookahead** ``L(q → p)`` (derived from
  :meth:`repro.interconnect.topology.Topology.partition_lookahead`);
* if partition ``q``'s earliest pending event is at time ``F_q`` (its
  **frontier**), nothing ``q`` does can affect ``p`` before
  ``F_q + L(q → p)``;
* so ``p`` may safely execute every event with
  ``t <= H_p = min over q != p of (F_q + L(q → p))`` — its **safe
  horizon** for the window, additionally clamped by the echo bound
  ``F_p + 2 L_min`` because a message ``p`` sends inside the window
  can bounce off a neighbor and return (see :func:`safe_horizons`).
  (Inclusive is safe because serialization time is strictly positive:
  an import generated inside the window arrives strictly *after* the
  horizon.)

At each window boundary partitions exchange the cross-partition events
their window produced (*exports*, carrying arrival times computed on
the sender's clock) plus their new frontier — the frontier exchange is
exactly a null-message broadcast, advancing neighbors even when no
real event crossed.

The module is engine-agnostic: a :class:`PartitionHost` is anything
that can inject imports, run to a horizon, and report.  The runtime's
in-process replica and the multiprocessing worker proxy both implement
it, so the :class:`WindowCoordinator` is *identical code* for the
local and pooled drivers — local/pooled digest equality holds by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Protocol, Sequence

from repro.errors import SimulationError

__all__ = [
    "partition_ranks",
    "lookahead_matrix",
    "safe_horizons",
    "Export",
    "WindowReport",
    "PartitionHost",
    "WindowStats",
    "WindowCoordinator",
]

_INF = float("inf")


def partition_ranks(n_ranks: int, n_partitions: int) -> list[list[int]]:
    """Contiguous rank → partition assignment.

    Contiguity matters on hierarchical machines: Summit-node's fast
    same-socket NVLinks stay *inside* a partition, so the lookahead
    between partitions is the (larger) cross-socket latency — wider
    windows, fewer synchronizations.
    """
    if n_partitions < 1:
        raise ValueError("need at least one partition")
    if n_partitions > n_ranks:
        raise ValueError(
            f"cannot split {n_ranks} rank(s) into {n_partitions} partitions"
        )
    base, extra = divmod(n_ranks, n_partitions)
    parts: list[list[int]] = []
    start = 0
    for p in range(n_partitions):
        size = base + (1 if p < extra else 0)
        parts.append(list(range(start, start + size)))
        start += size
    return parts


def lookahead_matrix(
    topology: Any,
    parts: Sequence[Sequence[int]],
    extra_latency: float = 0.0,
) -> dict[tuple[int, int], float]:
    """``(q, p) -> L(q → p)`` for every ordered partition pair.

    ``extra_latency`` is added to every link (the CPU control-path hop
    for Groute-like configurations, where even the minimum-latency
    message pays the host detour).
    """
    lookahead: dict[tuple[int, int], float] = {}
    for q, src_ranks in enumerate(parts):
        for p, dst_ranks in enumerate(parts):
            if p == q:
                continue
            lookahead[(q, p)] = topology.partition_lookahead(
                src_ranks, dst_ranks, extra_latency=extra_latency
            )
    return lookahead


def safe_horizons(
    frontiers: Sequence[float],
    lookahead: dict[tuple[int, int], float],
) -> list[float]:
    """Per-partition safe horizon from a consistent frontier snapshot.

    Two bounds compose, and both are necessary:

    * the classic neighbor bound ``min over q != p of F_q + L(q -> p)``
      — nothing a neighbor *already holds* can reach ``p`` earlier;
    * the **echo bound** ``F_p + 2 L_min`` (``L_min`` the smallest
      link lookahead) — windowed synchronization routes messages only
      at boundaries, so a message ``p`` itself sends *inside* the
      window can bounce off a neighbor and return while ``p`` is still
      executing.  The earliest such echo leaves no sooner than ``F_p``
      and traverses at least two links, so it cannot arrive before
      ``F_p + 2 L_min``; executing past that time would execute ``p``'s
      own future.  Per-message conservative engines get this for free
      (channel clocks advance as replies are seen); a windowed engine
      must bake it into the horizon.  The echo bound also keeps the
      horizon finite when every neighbor is drained (``F_q = inf``).
    """
    n = len(frontiers)
    l_min = min(lookahead.values()) if lookahead else _INF
    horizons = []
    for p in range(n):
        h = _INF
        for q in range(n):
            if q == p:
                continue
            h = min(h, frontiers[q] + lookahead.get((q, p), _INF))
        if n > 1 and frontiers[p] != _INF:
            h = min(h, frontiers[p] + 2.0 * l_min)
        horizons.append(h)
    return horizons


@dataclass(frozen=True, slots=True)
class Export:
    """One cross-partition message captured at its source.

    Everything the destination needs to replay the arrival: the wire
    times computed on the sender's clock plus the payload.  ``link_seq``
    is a per-source-partition monotone counter so same-arrival-time
    imports inject in a deterministic order (matching the sender-side
    creation order the serial engine's sequence numbers would impose).
    """

    arrival_time: float
    send_time: float
    src: int
    dst: int
    payload_bytes: int
    payload: Any
    link_seq: int


@dataclass(slots=True)
class WindowReport:
    """What one partition reports at a window boundary."""

    #: Time of the partition's earliest pending event (inf if none).
    frontier: float
    #: Cumulative local work-token balance (adds − removes; the global
    #: sum across partitions is the serial tracker's outstanding count).
    net_tokens: int
    #: Simulated time of the partition's latest token delta.
    last_delta_time: float
    #: Cross-partition messages produced by this window.
    exports: list[Export] = field(default_factory=list)
    #: Events dispatched during this window (progress/stats).
    events: int = 0
    #: Host-measured wall-clock seconds spent executing this window
    #: (excludes transport/IPC wait — the coordinator derives the
    #: parallel critical path from the per-window maxima).
    wall_s: float = 0.0


class PartitionHost(Protocol):
    """One partition as the coordinator sees it (in-process or proxy)."""

    def start(self) -> int:
        """Seed and launch; returns the global seed-task count."""
        ...

    def step_window(
        self, horizon: float, imports: Sequence[Export]
    ) -> WindowReport:
        """Inject ``imports``, execute every event with ``t <=
        horizon``, and report."""
        ...

    def finalize(self, t_done: float) -> Any:
        """Close out after global termination; returns driver-defined
        final state (counters, results, telemetry)."""
        ...

    # Hosts that execute windows *concurrently* (the pooled driver's
    # pipe proxies) may additionally implement the split-phase pair
    # ``begin_window(horizon, imports)`` / ``end_window() ->
    # WindowReport``; the coordinator then issues every begin before
    # gathering any report, so partitions genuinely overlap.  The
    # reports are identical to the synchronous path by construction —
    # a window's inputs are fixed at its start — so the two stepping
    # modes cannot diverge.


@dataclass(slots=True)
class WindowStats:
    """Aggregate synchronization accounting for one coordinated run."""

    windows: int = 0
    total_exports: int = 0
    total_events: int = 0
    #: Windows in which a given partition dispatched zero events —
    #: pure synchronization overhead (summed over partitions).
    idle_partition_windows: int = 0
    #: Σ over windows of the *slowest* partition's execution time: the
    #: run's parallel critical path.  With one core per partition, the
    #: run cannot finish faster than this (plus coordination).
    critical_wall_s: float = 0.0
    #: Σ over windows and partitions of execution time: the total
    #: compute the run performed (the serial engine's equivalent work).
    busy_wall_s: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "windows": self.windows,
            "total_exports": self.total_exports,
            "total_events": self.total_events,
            "idle_partition_windows": self.idle_partition_windows,
            "critical_wall_s": self.critical_wall_s,
            "busy_wall_s": self.busy_wall_s,
        }


class WindowCoordinator:
    """Runs hosts window-by-window until global quiescence.

    Round-robin and deterministic: every window computes all horizons
    from one frontier snapshot, steps every host (in partition order —
    the correctness spine the pooled driver parallelizes without
    changing observable order), routes exports, and checks the global
    termination condition: zero net work tokens *and* no export still
    in the coordinator's hands.

    Safety argument (why imports never land in a receiver's past): an
    import created during window ``W`` by partition ``q`` was sent at
    ``t >= F_q(W)`` and arrives at ``t + serialization + latency >
    F_q(W) + L(q → p) >= H_p(W)``.  The receiver injects it at the
    start of window ``W+1``, when its clock is exactly ``H_p(W)`` —
    strictly before the arrival.  Horizons are monotone in the
    frontiers, and frontiers never retreat, so the windows sweep time
    forward without revisiting it.
    """

    #: Safety valve: a conservative window always makes progress (the
    #: globally-earliest event is below its own partition's horizon),
    #: so hitting this means lookahead was computed wrong.
    MAX_WINDOWS = 50_000_000

    def __init__(
        self,
        hosts: Sequence[PartitionHost],
        lookahead: dict[tuple[int, int], float],
        on_window: Optional[Any] = None,
    ):
        if not hosts:
            raise ValueError("need at least one partition host")
        self.hosts = list(hosts)
        self.lookahead = lookahead
        self.stats = WindowStats()
        #: Optional callback ``(window_index, horizons, reports)`` fired
        #: after every window — telemetry taps sync spans here, tests
        #: pin the no-event-past-horizon property.
        self.on_window = on_window
        self.t_done: Optional[float] = None
        #: Lazily detected: all hosts offer begin/end split stepping.
        self._split_phase: Optional[bool] = None

    def run(self) -> float:
        """Drive all hosts to global quiescence; returns the serial
        termination time (the global last token-delta time)."""
        hosts = self.hosts
        n = len(hosts)
        seeded = [host.start() for host in hosts]
        if not any(seeded):
            raise SimulationError("no seed work on any partition")

        # Seeds are enqueued at t=0 on every partition that owns any,
        # and even seedless partitions schedule their rank processes at
        # t=0 — the exact initial frontier, no zeroth exchange needed.
        frontiers = [0.0] * n
        nets = [0] * n
        last_delta = [0.0] * n
        pending: list[list[Export]] = [[] for _ in range(n)]

        while True:
            if (
                sum(nets) == 0
                and not any(pending)
                and self.stats.windows > 0
            ):
                break
            if sum(nets) < 0:
                raise SimulationError(
                    "global work-token balance went negative: some "
                    "message was retired twice across partitions"
                )
            if self.stats.windows >= self.MAX_WINDOWS:
                raise SimulationError(
                    f"window count exceeded {self.MAX_WINDOWS}; "
                    "lookahead is likely zero or mis-derived"
                )
            # A partition's effective frontier includes the imports
            # routed to it at the last boundary but not yet injected —
            # its true next event may be one of them, and horizons
            # derived from the bare local frontier would over-advance
            # its neighbors.
            eff_frontiers = list(frontiers)
            for p in range(n):
                for exp in pending[p]:
                    if exp.arrival_time < eff_frontiers[p]:
                        eff_frontiers[p] = exp.arrival_time
            horizons = safe_horizons(eff_frontiers, self.lookahead)
            # A partition with no imports whose next event lies beyond
            # its horizon cannot execute anything this window — its
            # report is fully predictable, so skip the host call (and,
            # pooled, the IPC roundtrip) and synthesize it.  This is
            # what keeps alternating workloads from paying a full
            # exchange for every idle partition-window.  A *drained*
            # partition (frontier inf) is skipped even when its horizon
            # is unbounded: stepping it would advance its clock past
            # every finite time, poisoning later import injection.
            step = [
                bool(pending[p])
                or not (
                    self.stats.windows
                    and (
                        frontiers[p] > horizons[p]
                        or frontiers[p] == _INF
                    )
                )
                for p in range(n)
            ]
            if self._split_phase is None:
                self._split_phase = all(
                    callable(getattr(host, "begin_window", None))
                    for host in hosts
                )
            skipped = WindowReport(
                frontier=0.0, net_tokens=0, last_delta_time=0.0
            )
            if self._split_phase:
                # Fan out every window before gathering any report —
                # this is where pooled partitions actually overlap.
                for p, host in enumerate(hosts):
                    if step[p]:
                        imports, pending[p] = pending[p], []
                        host.begin_window(horizons[p], imports)
                reports = [
                    host.end_window() if step[p] else skipped
                    for p, host in enumerate(hosts)
                ]
            else:
                reports = []
                for p, host in enumerate(hosts):
                    if step[p]:
                        imports, pending[p] = pending[p], []
                        reports.append(
                            host.step_window(horizons[p], imports)
                        )
                    else:
                        reports.append(skipped)
            window_max_wall = 0.0
            for p, report in enumerate(reports):
                if report is skipped:
                    # Nothing executed; frontier/net/last-delta stand.
                    self.stats.idle_partition_windows += 1
                    continue
                frontiers[p] = report.frontier
                nets[p] = report.net_tokens
                last_delta[p] = max(last_delta[p], report.last_delta_time)
                self.stats.total_events += report.events
                if report.events == 0:
                    self.stats.idle_partition_windows += 1
                self.stats.busy_wall_s += report.wall_s
                if report.wall_s > window_max_wall:
                    window_max_wall = report.wall_s
                for exp in report.exports:
                    self.stats.total_exports += 1
                    pending[self._owner_of(exp.dst)].append(exp)
            self.stats.critical_wall_s += window_max_wall
            self.stats.windows += 1
            if self.on_window is not None:
                self.on_window(self.stats.windows - 1, horizons, reports)

        self.t_done = max(last_delta)
        return self.t_done

    # ------------------------------------------------------------ routing
    def set_rank_owners(self, parts: Sequence[Sequence[int]]) -> None:
        """Install the rank → partition map used to route exports."""
        owners: dict[int, int] = {}
        for p, ranks in enumerate(parts):
            for rank in ranks:
                if rank in owners:
                    raise ValueError(f"rank {rank} owned twice")
                owners[rank] = p
        self._owners = owners

    def _owner_of(self, rank: int) -> int:
        try:
            return self._owners[rank]
        except AttributeError:  # pragma: no cover - wiring error
            raise SimulationError(
                "WindowCoordinator.set_rank_owners was never called"
            ) from None
        except KeyError:  # pragma: no cover - wiring error
            raise SimulationError(f"no partition owns rank {rank}") from None
