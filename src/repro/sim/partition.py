"""Conservative time-windowed coordination for a partitioned DES run.

One simulation's ranks are grouped into *partitions*, each owning a
full :class:`~repro.sim.core.Environment` (and therefore its own
pluggable event queue).  Partitions advance in lockstep *windows* under
the classic conservative-PDES (Chandy–Misra–Bryant) contract:

* every cross-partition event must traverse a link with a known
  minimum latency — the **lookahead** ``L(q → p)`` (derived from
  :meth:`repro.interconnect.topology.Topology.partition_lookahead`);
* if partition ``q``'s earliest pending event is at time ``F_q`` (its
  **frontier**), nothing ``q`` does can affect ``p`` before
  ``F_q + L(q → p)``;
* so ``p`` may safely execute every event with
  ``t <= H_p = min over q != p of (F_q + L(q → p))`` — its **safe
  horizon** for the window, additionally clamped by the echo bound
  ``F_p + 2 L_min`` because a message ``p`` sends inside the window
  can bounce off a neighbor and return (see :func:`safe_horizons`).
  (Inclusive is safe because serialization time is strictly positive:
  an import generated inside the window arrives strictly *after* the
  horizon.)

At each window boundary partitions exchange the cross-partition events
their window produced (*exports*, carrying arrival times computed on
the sender's clock) plus their new frontier — the frontier exchange is
exactly a null-message broadcast, advancing neighbors even when no
real event crossed.

The module is engine-agnostic: a :class:`PartitionHost` is anything
that can inject imports, run to a horizon, and report.  The runtime's
in-process replica and the multiprocessing worker proxy both implement
it, so the :class:`WindowCoordinator` is *identical code* for the
local and pooled drivers — local/pooled digest equality holds by
construction.

Fault tolerance (fail-stop worker loss)
---------------------------------------
A window is a pure function of its inputs: given the seeded spec, a
partition's state after window ``w`` is fully determined by the
sequence of ``(horizon, imports)`` pairs it executed.  The coordinator
therefore keeps a **window journal** of exactly those inputs, and when
a host raises :class:`~repro.errors.PartitionWorkerLost` (the pooled
driver's typed pipe-EOF), it asks the driver for a replacement host and
**replays** the lost partition's journal into it — deterministically
regenerating the partition's state *and* the report the dead worker
never delivered.  Live partitions are untouched: all cross-partition
state (frontiers, pending exports) lives in the coordinator, so the
replayed exports of past windows are discarded as already-routed
duplicates.

Every K completed windows (``checkpoint_every``) the coordinator takes
a :class:`WindowCheckpoint` — the barrier's coordinator state plus a
per-partition replica snapshot (app arrays, queue frontiers, windowed
tracker counts, via :class:`repro.recovery.checkpoint.Checkpoint`).
Replica state mid-run contains live generator processes (in-flight
intra-partition messages, mid-round timers), which no snapshot can
capture, so checkpoints are not restore *sources* — replay is — but
they are restore **verifiers**: a replayed partition must pass through
bit-identical checkpoint digests at every barrier it crosses, and
window-by-window its replayed reports must match the journal.  Any
divergence raises :class:`~repro.errors.RecoveryError` instead of
silently producing a different answer.  Snapshots are read-only, so a
zero-kill run with checkpointing enabled is digest-identical to a
checkpoint-free run (pinned by ``repro pdes-chaos --verify-inert``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Protocol, Sequence

from repro.errors import (
    PartitionWorkerLost,
    RecoveryError,
    SimulationError,
)

__all__ = [
    "partition_ranks",
    "lookahead_matrix",
    "safe_horizons",
    "Export",
    "WindowReport",
    "PartitionHost",
    "WindowStats",
    "WindowCheckpoint",
    "WindowCoordinator",
]

_INF = float("inf")


def partition_ranks(n_ranks: int, n_partitions: int) -> list[list[int]]:
    """Contiguous rank → partition assignment.

    Contiguity matters on hierarchical machines: Summit-node's fast
    same-socket NVLinks stay *inside* a partition, so the lookahead
    between partitions is the (larger) cross-socket latency — wider
    windows, fewer synchronizations.
    """
    if n_partitions < 1:
        raise ValueError("need at least one partition")
    if n_partitions > n_ranks:
        raise ValueError(
            f"cannot split {n_ranks} rank(s) into {n_partitions} partitions"
        )
    base, extra = divmod(n_ranks, n_partitions)
    parts: list[list[int]] = []
    start = 0
    for p in range(n_partitions):
        size = base + (1 if p < extra else 0)
        parts.append(list(range(start, start + size)))
        start += size
    return parts


def lookahead_matrix(
    topology: Any,
    parts: Sequence[Sequence[int]],
    extra_latency: float = 0.0,
) -> dict[tuple[int, int], float]:
    """``(q, p) -> L(q → p)`` for every ordered partition pair.

    ``extra_latency`` is added to every link (the CPU control-path hop
    for Groute-like configurations, where even the minimum-latency
    message pays the host detour).
    """
    lookahead: dict[tuple[int, int], float] = {}
    for q, src_ranks in enumerate(parts):
        for p, dst_ranks in enumerate(parts):
            if p == q:
                continue
            lookahead[(q, p)] = topology.partition_lookahead(
                src_ranks, dst_ranks, extra_latency=extra_latency
            )
    return lookahead


def safe_horizons(
    frontiers: Sequence[float],
    lookahead: dict[tuple[int, int], float],
) -> list[float]:
    """Per-partition safe horizon from a consistent frontier snapshot.

    Two bounds compose, and both are necessary:

    * the classic neighbor bound ``min over q != p of F_q + L(q -> p)``
      — nothing a neighbor *already holds* can reach ``p`` earlier;
    * the **echo bound** ``F_p + 2 L_min`` (``L_min`` the smallest
      link lookahead) — windowed synchronization routes messages only
      at boundaries, so a message ``p`` itself sends *inside* the
      window can bounce off a neighbor and return while ``p`` is still
      executing.  The earliest such echo leaves no sooner than ``F_p``
      and traverses at least two links, so it cannot arrive before
      ``F_p + 2 L_min``; executing past that time would execute ``p``'s
      own future.  Per-message conservative engines get this for free
      (channel clocks advance as replies are seen); a windowed engine
      must bake it into the horizon.  The echo bound also keeps the
      horizon finite when every neighbor is drained (``F_q = inf``).
    """
    n = len(frontiers)
    l_min = min(lookahead.values()) if lookahead else _INF
    horizons = []
    for p in range(n):
        h = _INF
        for q in range(n):
            if q == p:
                continue
            h = min(h, frontiers[q] + lookahead.get((q, p), _INF))
        if n > 1 and frontiers[p] != _INF:
            h = min(h, frontiers[p] + 2.0 * l_min)
        horizons.append(h)
    return horizons


@dataclass(frozen=True, slots=True)
class Export:
    """One cross-partition message captured at its source.

    Everything the destination needs to replay the arrival: the wire
    times computed on the sender's clock plus the payload.  ``link_seq``
    is a per-source-partition monotone counter so same-arrival-time
    imports inject in a deterministic order (matching the sender-side
    creation order the serial engine's sequence numbers would impose).
    """

    arrival_time: float
    send_time: float
    src: int
    dst: int
    payload_bytes: int
    payload: Any
    link_seq: int


@dataclass(slots=True)
class WindowReport:
    """What one partition reports at a window boundary."""

    #: Time of the partition's earliest pending event (inf if none).
    frontier: float
    #: Cumulative local work-token balance (adds − removes; the global
    #: sum across partitions is the serial tracker's outstanding count).
    net_tokens: int
    #: Simulated time of the partition's latest token delta.
    last_delta_time: float
    #: Cross-partition messages produced by this window.
    exports: list[Export] = field(default_factory=list)
    #: Events dispatched during this window (progress/stats).
    events: int = 0
    #: Host-measured wall-clock seconds spent executing this window
    #: (excludes transport/IPC wait — the coordinator derives the
    #: parallel critical path from the per-window maxima).
    wall_s: float = 0.0


class PartitionHost(Protocol):
    """One partition as the coordinator sees it (in-process or proxy)."""

    def start(self) -> int:
        """Seed and launch; returns the global seed-task count."""
        ...

    def step_window(
        self, horizon: float, imports: Sequence[Export]
    ) -> WindowReport:
        """Inject ``imports``, execute every event with ``t <=
        horizon``, and report."""
        ...

    def finalize(self, t_done: float) -> Any:
        """Close out after global termination; returns driver-defined
        final state (counters, results, telemetry)."""
        ...

    # Hosts that execute windows *concurrently* (the pooled driver's
    # pipe proxies) may additionally implement the split-phase pair
    # ``begin_window(horizon, imports)`` / ``end_window() ->
    # WindowReport``; the coordinator then issues every begin before
    # gathering any report, so partitions genuinely overlap.  The
    # reports are identical to the synchronous path by construction —
    # a window's inputs are fixed at its start — so the two stepping
    # modes cannot diverge.


@dataclass(slots=True)
class WindowStats:
    """Aggregate synchronization accounting for one coordinated run."""

    windows: int = 0
    total_exports: int = 0
    total_events: int = 0
    #: Windows in which a given partition dispatched zero events —
    #: pure synchronization overhead (summed over partitions).
    idle_partition_windows: int = 0
    #: Σ over windows of the *slowest* partition's execution time: the
    #: run's parallel critical path.  With one core per partition, the
    #: run cannot finish faster than this (plus coordination).
    critical_wall_s: float = 0.0
    #: Σ over windows and partitions of execution time: the total
    #: compute the run performed (the serial engine's equivalent work).
    busy_wall_s: float = 0.0
    #: Barrier checkpoints taken (``checkpoint_every`` enabled).
    checkpoints_taken: int = 0
    #: Journal windows re-executed into respawned workers.
    windows_replayed: int = 0
    #: Replacement workers spawned after a fail-stop loss.
    workers_respawned: int = 0

    def as_dict(self) -> dict[str, float]:
        return {
            "windows": self.windows,
            "total_exports": self.total_exports,
            "total_events": self.total_events,
            "idle_partition_windows": self.idle_partition_windows,
            "critical_wall_s": self.critical_wall_s,
            "busy_wall_s": self.busy_wall_s,
            "checkpoints_taken": self.checkpoints_taken,
            "windows_replayed": self.windows_replayed,
            "workers_respawned": self.workers_respawned,
        }

    def resilience(self) -> dict[str, float]:
        """The run's :data:`repro.metrics.RESILIENCE_COUNTERS` slice.

        Kept out of :class:`repro.metrics.RunResult.counters` on
        purpose: a recovered run must digest bit-identical to an
        undisturbed one, so chaos tables pull these from the stats.
        """
        return {
            "resilience_checkpoints_taken": float(self.checkpoints_taken),
            "resilience_windows_replayed": float(self.windows_replayed),
            "resilience_workers_respawned": float(self.workers_respawned),
        }


@dataclass(frozen=True)
class WindowCheckpoint:
    """A consistency anchor at a window barrier.

    The coordinator-side barrier state (frontiers, token balances,
    pending-import counts) plus one replica snapshot per partition
    (duck-typed; the pooled driver supplies
    :class:`repro.recovery.checkpoint.Checkpoint` objects, each with a
    ``digest()``).  Used to *verify* respawn-and-replay — a replayed
    partition must reproduce ``parts[p].digest()`` exactly at this
    barrier — and as a post-mortem record of where the run provably
    still agreed with itself.
    """

    #: Completed-window count at the barrier (checkpoint taken *after*
    #: window ``window - 1``).
    window: int
    #: Journal length at the barrier — the replay position the digest
    #: verification keys on.
    journal_len: int
    frontiers: tuple[float, ...]
    nets: tuple[int, ...]
    last_delta: tuple[float, ...]
    #: Pending (routed, not yet injected) import counts per partition.
    pending: tuple[int, ...]
    #: Per-partition replica snapshots (``.digest()`` duck-typed).
    parts: tuple[Any, ...]

    def digest(self) -> str:
        h = hashlib.sha256()
        h.update(
            f"w={self.window}|f={self.frontiers!r}|n={self.nets!r}"
            f"|d={self.last_delta!r}|p={self.pending!r}\n".encode()
        )
        for part in self.parts:
            h.update(part.digest().encode())
        return h.hexdigest()


class WindowCoordinator:
    """Runs hosts window-by-window until global quiescence.

    Round-robin and deterministic: every window computes all horizons
    from one frontier snapshot, steps every host (in partition order —
    the correctness spine the pooled driver parallelizes without
    changing observable order), routes exports, and checks the global
    termination condition: zero net work tokens *and* no export still
    in the coordinator's hands.

    Safety argument (why imports never land in a receiver's past): an
    import created during window ``W`` by partition ``q`` was sent at
    ``t >= F_q(W)`` and arrives at ``t + serialization + latency >
    F_q(W) + L(q → p) >= H_p(W)``.  The receiver injects it at the
    start of window ``W+1``, when its clock is exactly ``H_p(W)`` —
    strictly before the arrival.  Horizons are monotone in the
    frontiers, and frontiers never retreat, so the windows sweep time
    forward without revisiting it.
    """

    #: Safety valve: a conservative window always makes progress (the
    #: globally-earliest event is below its own partition's horizon),
    #: so hitting this means lookahead was computed wrong.
    MAX_WINDOWS = 50_000_000

    def __init__(
        self,
        hosts: Sequence[PartitionHost],
        lookahead: dict[tuple[int, int], float],
        on_window: Optional[Any] = None,
        checkpoint_every: Optional[int] = None,
        recover_host: Optional[Callable[[int], PartitionHost]] = None,
        max_respawns: int = 3,
    ):
        if not hosts:
            raise ValueError("need at least one partition host")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.hosts = list(hosts)
        self.lookahead = lookahead
        self.stats = WindowStats()
        #: Optional callback ``(window_index, horizons, reports)`` fired
        #: after every window — telemetry taps sync spans here, tests
        #: pin the no-event-past-horizon property.
        self.on_window = on_window
        self.t_done: Optional[float] = None
        #: Lazily detected: all hosts offer begin/end split stepping.
        self._split_phase: Optional[bool] = None
        #: Take a :class:`WindowCheckpoint` every this many completed
        #: windows (None disables checkpointing; replay still works —
        #: the journal, not the checkpoint, is the restore source).
        self.checkpoint_every = checkpoint_every
        #: Driver callback ``partition -> fresh PartitionHost`` invoked
        #: on fail-stop loss.  None means losses are fatal (the
        #: in-process local driver has nothing to respawn).
        self.recover_host = recover_host
        #: Per-partition budget of replacement workers.
        self.max_respawns = max_respawns
        #: Barrier checkpoints, oldest first.
        self.checkpoints: list[WindowCheckpoint] = []
        #: Window journal: ``_journal[w][p]`` is the ``(horizon,
        #: imports)`` pair partition ``p`` executed in window ``w``
        #: (None when it was skipped) — everything needed to replay
        #: ``p`` from scratch.
        self._journal: list[list[Optional[tuple[float, list[Export]]]]] = []
        #: Report log mirroring the journal: the scalar summary
        #: ``(frontier, net_tokens, last_delta_time, n_exports)`` each
        #: stepped partition produced, verified against on replay.
        self._report_log: list[
            list[Optional[tuple[float, int, float, int]]]
        ] = []
        self._respawns = [0] * len(self.hosts)

    def run(self) -> float:
        """Drive all hosts to global quiescence; returns the serial
        termination time (the global last token-delta time)."""
        hosts = self.hosts
        n = len(hosts)
        seeded = []
        for p in range(n):
            try:
                seeded.append(hosts[p].start())
            except PartitionWorkerLost as lost:
                count, _report = self._revive(p, lost)
                seeded.append(count)
        if not any(seeded):
            raise SimulationError("no seed work on any partition")

        # Seeds are enqueued at t=0 on every partition that owns any,
        # and even seedless partitions schedule their rank processes at
        # t=0 — the exact initial frontier, no zeroth exchange needed.
        frontiers = [0.0] * n
        nets = [0] * n
        last_delta = [0.0] * n
        pending: list[list[Export]] = [[] for _ in range(n)]

        while True:
            if (
                sum(nets) == 0
                and not any(pending)
                and self.stats.windows > 0
            ):
                break
            if sum(nets) < 0:
                raise SimulationError(
                    "global work-token balance went negative: some "
                    "message was retired twice across partitions"
                )
            if self.stats.windows >= self.MAX_WINDOWS:
                raise SimulationError(
                    f"window count exceeded {self.MAX_WINDOWS}; "
                    "lookahead is likely zero or mis-derived"
                )
            # A partition's effective frontier includes the imports
            # routed to it at the last boundary but not yet injected —
            # its true next event may be one of them, and horizons
            # derived from the bare local frontier would over-advance
            # its neighbors.
            eff_frontiers = list(frontiers)
            for p in range(n):
                for exp in pending[p]:
                    if exp.arrival_time < eff_frontiers[p]:
                        eff_frontiers[p] = exp.arrival_time
            horizons = safe_horizons(eff_frontiers, self.lookahead)
            # A partition with no imports whose next event lies beyond
            # its horizon cannot execute anything this window — its
            # report is fully predictable, so skip the host call (and,
            # pooled, the IPC roundtrip) and synthesize it.  This is
            # what keeps alternating workloads from paying a full
            # exchange for every idle partition-window.  A *drained*
            # partition (frontier inf) is skipped even when its horizon
            # is unbounded: stepping it would advance its clock past
            # every finite time, poisoning later import injection.
            step = [
                bool(pending[p])
                or not (
                    self.stats.windows
                    and (
                        frontiers[p] > horizons[p]
                        or frontiers[p] == _INF
                    )
                )
                for p in range(n)
            ]
            if self._split_phase is None:
                self._split_phase = all(
                    callable(getattr(host, "begin_window", None))
                    for host in hosts
                )
            skipped = WindowReport(
                frontier=0.0, net_tokens=0, last_delta_time=0.0
            )
            # Journal the window's inputs *before* dispatching them:
            # a worker lost mid-window is replayed from exactly this
            # record, current window included.
            entry: list[Optional[tuple[float, list[Export]]]] = [None] * n
            for p in range(n):
                if step[p]:
                    imports, pending[p] = pending[p], []
                    entry[p] = (horizons[p], imports)
            self._journal.append(entry)
            lost_parts: dict[int, PartitionWorkerLost] = {}
            if self._split_phase:
                # Fan out every window before gathering any report —
                # this is where pooled partitions actually overlap.
                for p, host in enumerate(hosts):
                    if entry[p] is not None:
                        try:
                            host.begin_window(entry[p][0], entry[p][1])
                        except PartitionWorkerLost as exc:
                            exc.window = self.stats.windows
                            lost_parts[p] = exc
                reports = []
                for p, host in enumerate(hosts):
                    if entry[p] is None:
                        reports.append(skipped)
                    elif p in lost_parts:
                        reports.append(skipped)
                    else:
                        try:
                            reports.append(host.end_window())
                        except PartitionWorkerLost as exc:
                            exc.window = self.stats.windows
                            lost_parts[p] = exc
                            reports.append(skipped)
            else:
                reports = []
                for p, host in enumerate(hosts):
                    if entry[p] is None:
                        reports.append(skipped)
                    else:
                        try:
                            reports.append(
                                host.step_window(entry[p][0], entry[p][1])
                            )
                        except PartitionWorkerLost as exc:
                            exc.window = self.stats.windows
                            lost_parts[p] = exc
                            reports.append(skipped)
            for p, exc in sorted(lost_parts.items()):
                # The replay regenerates the current window's report
                # (exports intact — the dead worker never delivered
                # them, so nothing was routed twice).
                _count, report = self._revive(p, exc)
                assert report is not None
                reports[p] = report
            self._report_log.append(
                [
                    None
                    if entry[p] is None
                    else (
                        reports[p].frontier,
                        reports[p].net_tokens,
                        reports[p].last_delta_time,
                        len(reports[p].exports),
                    )
                    for p in range(n)
                ]
            )
            window_max_wall = 0.0
            for p, report in enumerate(reports):
                if report is skipped:
                    # Nothing executed; frontier/net/last-delta stand.
                    self.stats.idle_partition_windows += 1
                    continue
                frontiers[p] = report.frontier
                nets[p] = report.net_tokens
                last_delta[p] = max(last_delta[p], report.last_delta_time)
                self.stats.total_events += report.events
                if report.events == 0:
                    self.stats.idle_partition_windows += 1
                self.stats.busy_wall_s += report.wall_s
                if report.wall_s > window_max_wall:
                    window_max_wall = report.wall_s
                for exp in report.exports:
                    self.stats.total_exports += 1
                    pending[self._owner_of(exp.dst)].append(exp)
            self.stats.critical_wall_s += window_max_wall
            self.stats.windows += 1
            if self.on_window is not None:
                self.on_window(self.stats.windows - 1, horizons, reports)
            if (
                self.checkpoint_every
                and self.stats.windows % self.checkpoint_every == 0
            ):
                self._take_checkpoint(frontiers, nets, last_delta, pending)

        self.t_done = max(last_delta)
        return self.t_done

    # ------------------------------------------------- fault tolerance
    def revive(self, p: int, cause: PartitionWorkerLost) -> PartitionHost:
        """Respawn-and-replay partition ``p`` after a loss surfaced
        outside the window loop (e.g. during finalize); returns the
        replacement host, fully caught up to the last barrier."""
        self._revive(p, cause)
        return self.hosts[p]

    def _revive(
        self, p: int, cause: PartitionWorkerLost
    ) -> tuple[int, Optional[WindowReport]]:
        """Spawn a replacement host for ``p`` and replay its journal.

        Returns ``(seed_count, last_report)`` where ``last_report`` is
        the report of the most recent journaled window in which ``p``
        stepped (None when it never stepped) — when called from the
        window loop that is exactly the report the dead worker owed.
        Replay is verified window-by-window against the report log and
        digest-checked at every checkpoint barrier it crosses.
        """
        if self.recover_host is None:
            raise cause
        barriers = {
            ckpt.journal_len: (i, ckpt)
            for i, ckpt in enumerate(self.checkpoints)
        }
        last_error: Exception = cause
        while self._respawns[p] < self.max_respawns:
            self._respawns[p] += 1
            self.stats.workers_respawned += 1
            host = self.recover_host(p)
            self.hosts[p] = host
            try:
                seed_count = host.start()
                report: Optional[WindowReport] = None
                replayed = 0
                for w, entry in enumerate(self._journal):
                    inp = entry[p]
                    if inp is None:
                        continue
                    report = host.step_window(inp[0], inp[1])
                    replayed += 1
                    if w < len(self._report_log):
                        logged = self._report_log[w][p]
                        got = (
                            report.frontier,
                            report.net_tokens,
                            report.last_delta_time,
                            len(report.exports),
                        )
                        if logged != got:
                            raise RecoveryError(
                                f"replay of partition {p} diverged at "
                                f"window {w}: journal recorded {logged}, "
                                f"replay produced {got}"
                            )
                    at_barrier = barriers.get(w + 1)
                    if at_barrier is not None:
                        epoch, ckpt = at_barrier
                        snap = getattr(host, "snapshot_state", None)
                        if snap is not None:
                            fresh = snap(epoch)
                            want = ckpt.parts[p]
                            if fresh.digest() != want.digest():
                                raise RecoveryError(
                                    f"replay of partition {p} diverged "
                                    f"at checkpoint barrier (window "
                                    f"{w + 1}): snapshot digest mismatch"
                                )
                self.stats.windows_replayed += replayed
                return seed_count, report
            except PartitionWorkerLost as exc:
                # The replacement died too; loop while budget remains.
                last_error = exc
        raise SimulationError(
            f"partition {p} lost its worker and every replacement; "
            f"respawn budget ({self.max_respawns}) exhausted"
        ) from last_error

    def _take_checkpoint(
        self,
        frontiers: Sequence[float],
        nets: Sequence[int],
        last_delta: Sequence[float],
        pending: Sequence[Sequence[Export]],
    ) -> None:
        epoch = len(self.checkpoints)
        parts: list[Any] = []
        for p in range(len(self.hosts)):
            snap = getattr(self.hosts[p], "snapshot_state", None)
            if snap is None:
                # Hosts that cannot snapshot (bare protocol
                # implementations) simply run checkpoint-free.
                return
            try:
                parts.append(snap(epoch))
            except PartitionWorkerLost as exc:
                exc.window = self.stats.windows - 1
                self._revive(p, exc)
                parts.append(self.hosts[p].snapshot_state(epoch))
        self.checkpoints.append(
            WindowCheckpoint(
                window=self.stats.windows,
                journal_len=len(self._journal),
                frontiers=tuple(frontiers),
                nets=tuple(nets),
                last_delta=tuple(last_delta),
                pending=tuple(len(x) for x in pending),
                parts=tuple(parts),
            )
        )
        self.stats.checkpoints_taken += 1

    # ------------------------------------------------------------ routing
    def set_rank_owners(self, parts: Sequence[Sequence[int]]) -> None:
        """Install the rank → partition map used to route exports."""
        owners: dict[int, int] = {}
        for p, ranks in enumerate(parts):
            for rank in ranks:
                if rank in owners:
                    raise ValueError(f"rank {rank} owned twice")
                owners[rank] = p
        self._owners = owners

    def _owner_of(self, rank: int) -> int:
        try:
            return self._owners[rank]
        except AttributeError:  # pragma: no cover - wiring error
            raise SimulationError(
                "WindowCoordinator.set_rank_owners was never called"
            ) from None
        except KeyError:  # pragma: no cover - wiring error
            raise SimulationError(f"no partition owns rank {rank}") from None
