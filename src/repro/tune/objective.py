"""Pluggable objectives: a RunResult -> one scalar score (lower = better).

Objectives are the contract between the evaluation engine and the
searchers: every searcher minimizes a single float, and every float is
extracted from the fields a :class:`repro.metrics.counters.RunResult`
already carries — simulated makespan, the messaging counters, and (for
partitioned runs) the coordinator's ``host_stats``.

The ``composite`` objective exists for the Fig-4 study: at the repo's
1/200 dataset scale, per-message fixed costs are ~200x less material
than at paper scale, so a pure-makespan sweep under-weights the wire
traffic that WAIT_TIME exists to amortize.  Multiplying makespan by
``sqrt(fabric_messages)`` restores a per-message cost term and lets
the measured optimum be compared against the paper-scale analytic
derivation (:func:`repro.config.wait_time_for`) on its own terms; the
study reports **both** raw-makespan and composite optima.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError
from repro.metrics.counters import RunResult

__all__ = [
    "Objective",
    "OBJECTIVES",
    "get_objective",
    "makespan",
    "critical_path",
    "msg_throughput",
    "composite",
]


@dataclass(frozen=True)
class Objective:
    """One named scoring rule; ``extract`` maps a result to the score."""

    name: str
    description: str
    extract: Callable[[RunResult], float]

    def __call__(self, result: RunResult) -> float:
        return self.extract(result)


def _makespan(result: RunResult) -> float:
    return float(result.time_ms)


def _critical_path(result: RunResult) -> float:
    stats = result.host_stats
    if not isinstance(stats, dict) or "critical_wall_s" not in stats:
        raise ConfigError(
            "critical_path objective needs a partitioned run "
            "(point must set partitions >= 2); this result has no "
            "WindowStats"
        )
    return float(stats["critical_wall_s"])


def _msg_throughput(result: RunResult) -> float:
    if result.time_ms <= 0:
        raise ConfigError("non-positive makespan")
    return -float(result.counters["fabric_bytes"]) / float(result.time_ms)


def _composite(result: RunResult) -> float:
    messages = max(float(result.counters["fabric_messages"]), 1.0)
    return float(result.time_ms) * math.sqrt(messages)


makespan = Objective(
    "makespan",
    "simulated end-to-end runtime (ms); the paper's headline metric",
    _makespan,
)
critical_path = Objective(
    "critical_path",
    "measured parallel critical path (s) of a partitioned run's "
    "window schedule; requires partitions >= 2",
    _critical_path,
)
msg_throughput = Objective(
    "msg_throughput",
    "negated fabric bytes per simulated ms (maximize messaging "
    "throughput)",
    _msg_throughput,
)
composite = Objective(
    "composite",
    "makespan (ms) x sqrt(fabric messages): restores the paper-scale "
    "per-message cost term the 1/200 datasets lack",
    _composite,
)

#: Registry for ``--objective`` and study presets.
OBJECTIVES: dict[str, Objective] = {
    obj.name: obj
    for obj in (makespan, critical_path, msg_throughput, composite)
}


def get_objective(name: str) -> Objective:
    """Look up an objective by registry name; ConfigError if unknown."""
    try:
        return OBJECTIVES[name]
    except KeyError:
        raise ConfigError(
            f"unknown objective {name!r}; known: {sorted(OBJECTIVES)}"
        ) from None
