"""Pluggable searchers behind one ``ask()``/``tell()`` interface.

Every searcher proposes :class:`Trial`\\ s (a point plus a fidelity —
how many repetition seeds to average over) and consumes told
objectives (lower = better).  The protocol is batch-oriented so the
evaluation engine can fan a whole generation/rung out over the
process pool:

* ``ask()`` returns the next untold trial of the current batch, or
  ``None`` when the searcher needs tells (or is done) — drain with
  ``while (t := s.ask()) is not None``;
* ``tell(trial, objective)`` reports one result; once the current
  batch is fully told, the next ``ask()`` opens the next batch;
* ``done`` is True when the searcher will never propose again.

Determinism: searchers draw **only** through
:func:`repro.tune.space.hash_uniform` keyed on ``(seed, trial index /
generation, dim, purpose)`` — no stateful RNG anywhere — so the same
seed replays the identical trial sequence no matter how evaluations
were scheduled.  The shared contract suite pins this for every
registered searcher.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from repro.errors import ConfigError
from repro.tune.space import Space, canonical_point, hash_uniform

__all__ = [
    "Trial",
    "Searcher",
    "RandomSearcher",
    "GridSearcher",
    "EvolutionarySearcher",
    "SuccessiveHalvingSearcher",
    "SEARCHERS",
    "make_searcher",
]


@dataclass(frozen=True)
class Trial:
    """One proposed evaluation: a point at a repetition fidelity."""

    index: int
    point: Any  # mapping name -> value; kept generic for journaling
    #: Repetition seeds to average the objective over (fidelity axis:
    #: successive halving promotes survivors to higher ``reps``).
    reps: int = 1

    def key(self) -> str:
        """Identity of the evaluation: point content + fidelity."""
        return f"{canonical_point(self.point)}@{self.reps}"


class Searcher:
    """Base class: owns the space, the budget, and the ask/tell state.

    ``budget`` counts **evaluation units** — one unit is one repetition
    of one point — so fidelity-aware searchers (successive halving)
    conserve exactly the same currency as flat ones.
    """

    def __init__(self, space: Space, budget: int, seed: int = 0):
        if budget < 1:
            raise ConfigError(f"budget must be >= 1, got {budget}")
        self.space = space
        self.budget = int(budget)
        self.seed = int(seed)
        self.spent = 0  # evaluation units consumed by told trials
        self._asked: dict[int, Trial] = {}  # outstanding (asked, untold)
        self._told: list[tuple[Trial, float]] = []
        self._next_index = 0

    # -- protocol ------------------------------------------------------
    def ask(self) -> Optional[Trial]:
        """Next trial of the current batch, or None (need tells / done)."""
        if self.done:
            return None
        trial = self._propose()
        if trial is None:
            return None
        self._asked[trial.index] = trial
        return trial

    def tell(self, trial: Trial, objective: float) -> None:
        """Report one evaluated trial's objective (lower = better)."""
        if trial.index not in self._asked:
            raise ConfigError(
                f"tell for unknown/already-told trial #{trial.index}"
            )
        del self._asked[trial.index]
        self.spent += trial.reps
        self._told.append((trial, float(objective)))
        self._observe(trial, float(objective))

    @property
    def done(self) -> bool:
        """No further proposals will ever come."""
        return not self._asked and self._exhausted()

    def best(self) -> Optional[tuple[Trial, float]]:
        """The best told (trial, objective) so far, stable under ties."""
        if not self._told:
            return None
        return min(self._told, key=lambda pair: (pair[1], pair[0].index))

    def trials_told(self) -> list[tuple[Trial, float]]:
        """Every told (trial, objective), in tell order."""
        return list(self._told)

    # -- subclass hooks ------------------------------------------------
    def _propose(self) -> Optional[Trial]:
        raise NotImplementedError

    def _observe(self, trial: Trial, objective: float) -> None:
        pass

    def _exhausted(self) -> bool:
        raise NotImplementedError

    def _claim(self, point, reps: int = 1) -> Optional[Trial]:
        """Mint the next trial if ``reps`` units still fit the budget."""
        if self.spent + self._outstanding_units() + reps > self.budget:
            return None
        trial = Trial(index=self._next_index, point=point, reps=reps)
        self._next_index += 1
        return trial

    def _outstanding_units(self) -> int:
        return sum(t.reps for t in self._asked.values())


class RandomSearcher(Searcher):
    """Seeded random sampling: trial i is ``space.sample(seed, i)``."""

    name = "random"

    def _propose(self) -> Optional[Trial]:
        return self._claim(self.space.sample(self.seed, self._next_index))

    def _exhausted(self) -> bool:
        return self.spent + self._outstanding_units() >= self.budget


class GridSearcher(Searcher):
    """Exhaustive sweep of ``space.grid()`` in deterministic order."""

    name = "grid"

    def __init__(self, space: Space, budget: int, seed: int = 0):
        super().__init__(space, budget, seed)
        self._points = space.grid()

    def _propose(self) -> Optional[Trial]:
        if self._next_index >= len(self._points):
            return None
        return self._claim(self._points[self._next_index])

    def _exhausted(self) -> bool:
        return (
            self._next_index >= len(self._points)
            or self.spent + self._outstanding_units() >= self.budget
        )


class EvolutionarySearcher(Searcher):
    """(mu + lambda) evolution with per-dim mutation.

    Generation 0 is ``mu + lam`` random samples; each later generation
    keeps the best ``mu`` individuals seen so far (parents + children —
    the "+" strategy) and asks ``lam`` children, each a per-dim
    mutation of a parent chosen round-robin by rank.  All draws are
    counter-based on (seed, generation, child, dim), so the sequence
    is a pure function of the seed and the told objectives.
    """

    name = "evolutionary"

    def __init__(
        self,
        space: Space,
        budget: int,
        seed: int = 0,
        mu: int = 4,
        lam: int = 8,
    ):
        super().__init__(space, budget, seed)
        if mu < 1 or lam < 1:
            raise ConfigError(f"mu/lam must be >= 1, got {mu}/{lam}")
        self.mu = mu
        self.lam = lam
        self._generation = 0
        self._queue: list = [
            self.space.sample(self.seed, i) for i in range(mu + lam)
        ]
        self._queued = 0  # how many of _queue have been asked

    def _propose(self) -> Optional[Trial]:
        if self._queued >= len(self._queue):
            if self._asked:
                return None  # generation still in flight
            self._breed()
            if self._queued >= len(self._queue):
                return None
        trial = self._claim(self._queue[self._queued])
        if trial is not None:
            self._queued += 1
        return trial

    def _breed(self) -> None:
        """Select the best mu overall and queue lam mutated children."""
        if not self._told:
            return
        self._generation += 1
        ranked = sorted(self._told, key=lambda pair: (pair[1], pair[0].index))
        parents = [trial.point for trial, _ in ranked[: self.mu]]
        self._queue = [
            self.space.mutate(
                parents[child % len(parents)],
                self.seed,
                self._generation,
                child,
            )
            for child in range(self.lam)
        ]
        self._queued = 0

    def _exhausted(self) -> bool:
        return self.spent + self._outstanding_units() >= self.budget

    def _observe(self, trial: Trial, objective: float) -> None:
        # Breeding happens lazily in _propose once the batch drains.
        pass


class SuccessiveHalvingSearcher(Searcher):
    """Successive halving over repetition-seed fidelity rungs.

    Rung 0 evaluates ``n0`` random configs at 1 rep; each next rung
    keeps the top ``1/eta`` (at least one) and re-evaluates them at
    ``eta``x the reps.  Promotion is strictly by rung rank — the
    contract suite pins both that monotonicity and exact budget
    conservation (a promoted trial's *new* units are ``reps_hi -
    reps_lo``, because the evaluation engine's per-rep seeds are
    counter-based and already-cached lower-rung reps are free).
    """

    name = "sha"

    def __init__(
        self,
        space: Space,
        budget: int,
        seed: int = 0,
        eta: int = 2,
        n0: Optional[int] = None,
    ):
        super().__init__(space, budget, seed)
        if eta < 2:
            raise ConfigError(f"eta must be >= 2, got {eta}")
        self.eta = eta
        if n0 is None:
            # Spend roughly half the budget on rung 0.
            n0 = max(self.eta, budget // 2)
        self.n0 = min(n0, budget)
        self._rung = 0
        self._queue = [
            (self.space.sample(self.seed, i), 1) for i in range(self.n0)
        ]
        self._queued = 0
        self._rung_results: list[tuple[Trial, float]] = []
        self._promotions: list[dict] = []  # audit: one entry per promotion
        self._charged: dict[int, int] = {}  # trial index -> charged units

    def _propose(self) -> Optional[Trial]:
        if self._queued >= len(self._queue):
            if self._asked:
                return None
            self._promote()
            if self._queued >= len(self._queue):
                return None
        point, reps = self._queue[self._queued]
        prior = reps // self.eta if reps > 1 else 0
        trial = self._claim(point, reps=reps - prior)
        if trial is not None:
            # The engine must evaluate the full fidelity; only the
            # *new* reps were charged, so re-mint at full reps with
            # the charged units recorded via the claim above.
            trial = replace(trial, reps=reps)
            self._charged[trial.index] = reps - prior
            self._queued += 1
        return trial

    def tell(self, trial: Trial, objective: float) -> None:
        if trial.index not in self._asked:
            raise ConfigError(
                f"tell for unknown/already-told trial #{trial.index}"
            )
        del self._asked[trial.index]
        charged = self._charged.pop(trial.index, trial.reps)
        self.spent += charged
        self._told.append((trial, float(objective)))
        self._rung_results.append((trial, float(objective)))

    def _promote(self) -> None:
        if not self._rung_results:
            return
        ranked = sorted(
            self._rung_results, key=lambda pair: (pair[1], pair[0].index)
        )
        keep = max(1, len(ranked) // self.eta)
        if len(ranked) <= 1:
            self._queue, self._queued = [], 0
            self._rung_results = []
            return
        survivors = ranked[:keep]
        self._promotions.append(
            {
                "rung": self._rung,
                "evaluated": len(ranked),
                "promoted": keep,
                "objectives": [obj for _, obj in ranked],
                "cut": ranked[keep - 1][1],
            }
        )
        self._rung += 1
        next_reps = survivors[0][0].reps * self.eta
        self._queue = [
            (trial.point, next_reps) for trial, _ in survivors
        ]
        self._queued = 0
        self._rung_results = []

    def _outstanding_units(self) -> int:
        return sum(
            self._charged.get(i, t.reps) for i, t in self._asked.items()
        )

    def _exhausted(self) -> bool:
        if self._queued < len(self._queue):
            # Still queued work; only exhausted if nothing fits.
            point, reps = self._queue[self._queued]
            prior = reps // self.eta if reps > 1 else 0
            return self.spent + self._outstanding_units() + (
                reps - prior
            ) > self.budget
        return not self._asked and not self._rung_results

    def promotions(self) -> list[dict]:
        """Audit log: per-rung evaluation counts and promotion cuts."""
        return list(self._promotions)


#: Registry for ``--searcher``.
SEARCHERS = {
    "random": RandomSearcher,
    "grid": GridSearcher,
    "evolutionary": EvolutionarySearcher,
    "sha": SuccessiveHalvingSearcher,
}


def make_searcher(
    name: str, space: Space, budget: int, seed: int = 0, **kwargs
) -> Searcher:
    """Instantiate a registered searcher by name; ConfigError if unknown."""
    try:
        cls = SEARCHERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown searcher {name!r}; known: {sorted(SEARCHERS)}"
        ) from None
    return cls(space, budget, seed=seed, **kwargs)
