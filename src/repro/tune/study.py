"""Study runner: searcher x evaluator loops, NDJSON journal, BENCH doc.

A **study** is one or more search phases over a parameter space.  Every
trial is journaled to a resumable NDJSON log as soon as it is scored:
re-running the same study (same space, searcher, budget, seed, and
code version) replays the journal instead of re-evaluating — zero
simulations, which the CI tune-smoke job asserts — and a partially
journaled study resumes from where it stopped, paying only for the
missing trials.

The committed artifact is ``BENCH_tune.json`` (schema
``repro-tune/1``).  Its headline mode is the **fig4 preset**: the
paper's Fig-4 BATCH_SIZE x WAIT_TIME sensitivity sweep per app, run
as a full grid (the reproduced figure) followed by an evolutionary
search at half the grid's evaluation budget (the extension: the tuner
matches the sweep's optimum without sweeping).  The document records
the measured optimum, the analytic :func:`repro.config.wait_time_for`
prediction and whether it lands on the measured plateau, and the
evolutionary-vs-grid budget comparison.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.config import wait_time_for
from repro.errors import ConfigError
from repro.harness.bench import write_bench
from repro.harness.cache import code_fingerprint, get_cache
from repro.metrics.tables import format_cache_line
from repro.tune.evaluate import EvaluationEngine
from repro.tune.objective import get_objective
from repro.tune.search import Trial, make_searcher
from repro.tune.space import CategoricalDim, Space, canonical_point

__all__ = [
    "SCHEMA",
    "JOURNAL_SCHEMA",
    "StudyJournal",
    "trial_journal_key",
    "run_search_phase",
    "run_study",
    "fig4_space",
    "run_fig4_study",
    "render_tune_bench",
    "validate_tune_bench",
    "write_bench",
]

SCHEMA = "repro-tune/1"
JOURNAL_SCHEMA = "repro-tune-journal/1"

#: Fig-4 sweep levels: BATCH_SIZE 64 KiB..16 MiB, WAIT_TIME 1..64.
FIG4_BATCH_LEVELS = (1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24)
FIG4_WAIT_LEVELS = (1, 2, 4, 8, 16, 32, 64)
FIG4_QUICK_BATCH_LEVELS = (1 << 18, 1 << 20, 1 << 22)
FIG4_QUICK_WAIT_LEVELS = (1, 4, 16, 64)

#: Objective per app in the fig4 preset.  Both apps optimize the
#: composite (makespan x sqrt(messages)) objective, which restores the
#: paper-scale per-message cost the 1/200 datasets lack; under raw
#: makespan the measured optimum for both apps degenerates to
#: WAIT_TIME=1, so the doc reports the raw-makespan optimum alongside
#: for honesty (see ``makespan_best`` in the per-app analysis).
FIG4_OBJECTIVES = {"bfs": "composite", "pagerank": "composite"}

#: A measured point is "on the plateau" when its objective is within
#: this factor of the measured optimum.
PLATEAU_FACTOR = 1.10


# ------------------------------------------------------------- journal
def trial_journal_key(space: Space, objective_name: str, trial: Trial) -> str:
    """The evaluation identity of a trial: what its outcome depends on.

    Keyed on the *compiled* coordinates — objective, the space's base
    merged with the point, and the repetition fidelity — NOT on which
    searcher or phase proposed it.  An evolutionary phase that
    re-proposes a point the grid phase already swept therefore replays
    it from the journal for free; two apps' studies never collide
    because their bases differ.  (The study seed and code version are
    part of the journal *header*, so they scope every key.)
    """
    merged = dict(Space._SPEC_DEFAULTS)
    merged.update(space.base)
    merged.update(trial.point)
    return f"{objective_name}|{canonical_point(merged)}@{trial.reps}"


class StudyJournal:
    """Append-only NDJSON log of scored trials, keyed for replay.

    Line 1 is a header scoping every entry (study seed + code
    version); every other line is one scored trial keyed by
    :func:`trial_journal_key`.  ``lookup`` serves a previously scored
    evaluation without re-running it; a header mismatch (different
    seed, edited code) ignores the old log and starts the file over,
    so a stale journal can never leak objectives into a different
    study.
    """

    def __init__(self, path: Optional[str], identity: dict):
        self.path = path
        self.identity = dict(identity)
        self.identity.setdefault("schema", JOURNAL_SCHEMA)
        self.identity.setdefault("code_version", code_fingerprint())
        self.replays = 0
        self._entries: dict[tuple, dict] = {}
        self._fh = None
        if path:
            self._load()
            self._open()

    def _load(self) -> None:
        if not self.path or not os.path.exists(self.path):
            return
        try:
            with open(self.path) as fh:
                lines = fh.read().splitlines()
        except OSError:
            return
        if not lines:
            return
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return
        if header != self.identity:
            return  # different seed or code version: start over
        for line in lines[1:]:
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                break  # truncated tail (crashed writer): keep the prefix
            self._entries[entry.get("key")] = entry

    def _open(self) -> None:
        fresh = not self._entries
        mode = "w" if fresh else "a"
        self._fh = open(self.path, mode)
        if fresh:
            self._fh.write(
                json.dumps(self.identity, sort_keys=True) + "\n"
            )
            self._fh.flush()

    def lookup(self, key: str) -> Optional[dict]:
        """A previously journaled trial entry, or None."""
        entry = self._entries.get(key)
        if entry is not None:
            self.replays += 1
        return entry

    def append(self, phase: str, key: str, trial: Trial, outcome) -> dict:
        """Journal one scored trial; returns the written entry."""
        entry = {
            "phase": phase,
            "key": key,
            "index": trial.index,
            "point": dict(trial.point),
            "reps": trial.reps,
            "status": outcome.status,
            "objective": (
                None if math.isinf(outcome.objective)
                else outcome.objective
            ),
            "per_rep": list(outcome.per_rep),
            "wall_s": round(outcome.wall_s, 6),
            "simulations": outcome.simulations,
            "disk_hits": outcome.disk_hits,
            "repeat_hits": outcome.repeat_hits,
        }
        if outcome.aux:
            entry["aux"] = dict(outcome.aux)
        if outcome.error:
            entry["error"] = outcome.error
        self._entries[key] = entry
        if self._fh:
            self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
            self._fh.flush()
        return entry

    def close(self) -> None:
        if self._fh:
            self._fh.close()
            self._fh = None


# --------------------------------------------------------- phase loop
def run_search_phase(
    space: Space,
    searcher_name: str,
    budget: int,
    objective_name: str,
    seed: int = 0,
    jobs: Optional[int] = None,
    timeout_s: Optional[float] = None,
    journal: Optional[StudyJournal] = None,
    phase: str = "search",
    searcher_kwargs: Optional[dict] = None,
) -> dict:
    """Run one ask/evaluate/tell loop to completion; returns the phase doc.

    Each drained batch of asks is evaluated in parallel (minus journal
    replays), told back, and journaled.  The phase doc carries every
    trial, the best point, and the phase's cost accounting.
    """
    objective = get_objective(objective_name)
    searcher = make_searcher(
        searcher_name, space, budget, seed=seed, **(searcher_kwargs or {})
    )
    engine = EvaluationEngine(
        space, objective, study_seed=seed, jobs=jobs, timeout_s=timeout_s
    )
    trials_doc: list[dict] = []
    journal_replays = 0
    while True:
        batch: list[Trial] = []
        while (trial := searcher.ask()) is not None:
            batch.append(trial)
        if not batch:
            break
        replayed: dict[int, dict] = {}
        to_run: list[Trial] = []
        keys = {
            trial.index: trial_journal_key(space, objective_name, trial)
            for trial in batch
        }
        for trial in batch:
            entry = journal.lookup(keys[trial.index]) if journal else None
            if entry is not None:
                replayed[trial.index] = entry
                journal_replays += 1
            else:
                to_run.append(trial)
        fresh = {
            outcome.trial.index: outcome
            for outcome in engine.evaluate(to_run)
        }
        for trial in batch:
            if trial.index in replayed:
                entry = replayed[trial.index]
                value = entry.get("objective")
                score = math.inf if value is None else float(value)
                doc_entry = dict(entry)
            else:
                outcome = fresh[trial.index]
                score = outcome.objective
                doc_entry = (
                    journal.append(phase, keys[trial.index], trial, outcome)
                    if journal
                    else {
                        "phase": phase,
                        "index": trial.index,
                        "point": dict(trial.point),
                        "reps": trial.reps,
                        "status": outcome.status,
                        "objective": (
                            None if math.isinf(score) else score
                        ),
                    }
                )
            searcher.tell(trial, score)
            trials_doc.append(doc_entry)
    best = searcher.best()
    return {
        "searcher": searcher_name,
        "objective": objective_name,
        "budget": budget,
        "spent_units": searcher.spent,
        "trials": trials_doc,
        "journal_replays": journal_replays,
        "accounting": engine.accounting(),
        "best": (
            None
            if best is None or math.isinf(best[1])
            else {
                "point": dict(best[0].point),
                "reps": best[0].reps,
                "objective": best[1],
                "trial_index": best[0].index,
            }
        ),
    }


def _merge_accounting(doc: dict, phases: list[dict]) -> None:
    acct = {
        "trials": 0,
        "eval_units": 0,
        "simulations": 0,
        "disk_cache_hits": 0,
        "journal_replays": 0,
        "repeat_hits": 0,
        "errors": 0,
    }
    for phase in phases:
        acct["trials"] += len(phase["trials"])
        acct["eval_units"] += phase["spent_units"]
        acct["journal_replays"] += phase["journal_replays"]
        inner = phase["accounting"]
        acct["simulations"] += inner["simulations"]
        acct["disk_cache_hits"] += inner["disk_cache_hits"]
        acct["repeat_hits"] += inner["repeat_hits"]
        acct["errors"] += inner["errors"]
    acct["evaluations_saved"] = (
        acct["disk_cache_hits"] + acct["journal_replays"]
        + acct["repeat_hits"]
    )
    acct["single_flight_waits"] = get_cache().single_flight_waits
    doc["accounting"] = acct


# ------------------------------------------------------- custom studies
def run_study(
    space: Space,
    searcher: str = "random",
    budget: int = 16,
    objective: str = "makespan",
    seed: int = 0,
    jobs: Optional[int] = None,
    timeout_s: Optional[float] = None,
    journal_path: Optional[str] = None,
    quick: bool = False,
    searcher_kwargs: Optional[dict] = None,
) -> dict:
    """One-phase study over an explicit space; returns the BENCH doc."""
    # Identity holds only what every journaled outcome depends on —
    # the study seed (repetition seeds derive from it) and the code
    # version (added by the journal).  Searcher/budget/space stay out
    # so different searchers over the same cells share one journal.
    log = StudyJournal(journal_path, {"seed": seed})
    try:
        phase = run_search_phase(
            space,
            searcher,
            budget,
            objective,
            seed=seed,
            jobs=jobs,
            timeout_s=timeout_s,
            journal=log,
            phase="search",
            searcher_kwargs=searcher_kwargs,
        )
    finally:
        log.close()
    doc = {
        "schema": SCHEMA,
        "mode": "custom",
        "quick": quick,
        "seed": seed,
        "searcher": searcher,
        "objective": objective,
        "budget": budget,
        "space": space.to_dict(),
        "best": phase["best"],
        "trials": phase["trials"],
        "headline": "best point of a custom study",
    }
    _merge_accounting(doc, [phase])
    return doc


# --------------------------------------------------------- fig4 preset
def fig4_space(app: str, quick: bool = False) -> Space:
    """The Fig-4 sweep space for one app: BATCH_SIZE x WAIT_TIME.

    Both knobs are *ordered categoricals* pinned to the sweep levels,
    so the evolutionary searcher mutates along the measured lattice
    (and its revisits are exact cache hits) while the grid searcher
    sweeps the full cross product.
    """
    batch = FIG4_QUICK_BATCH_LEVELS if quick else FIG4_BATCH_LEVELS
    wait = FIG4_QUICK_WAIT_LEVELS if quick else FIG4_WAIT_LEVELS
    return Space(
        dims=(
            CategoricalDim("batch_size", choices=batch, ordered=True),
            CategoricalDim("wait_time", choices=wait, ordered=True),
        ),
        base={
            "app": app,
            "dataset": "road-usa",
            "framework": "atos-standard-persistent",
            "machine": "summit-ib",
            "n_gpus": 8,
        },
    )


def _fig4_analysis(
    app: str, space: Space, grid_phase: dict, evo_phase: dict
) -> dict:
    """Per-app sensitivity analysis: optimum, plateau, analytic check."""
    cells = [
        t for t in grid_phase["trials"] if t["status"] == "ok"
    ]
    if not cells:
        raise ConfigError(f"fig4 {app}: no successful grid cells")
    best = min(cells, key=lambda t: (t["objective"], t["index"]))
    optimum = best["objective"]
    plateau = sorted(
        t["point"]["wait_time"]
        for t in cells
        if t["point"]["batch_size"] == best["point"]["batch_size"]
        and t["objective"] <= optimum * PLATEAU_FACTOR
    )
    analytic_wait = wait_time_for(app)
    wait_levels = sorted({t["point"]["wait_time"] for t in cells})
    # The analytic prediction's own measured objective (its best cell).
    analytic_cells = [
        t for t in cells if t["point"]["wait_time"] == analytic_wait
    ]
    analytic_obj = (
        min(t["objective"] for t in analytic_cells)
        if analytic_cells
        else None
    )
    evo_best = evo_phase["best"]
    # The raw-makespan optimum, from the journaled aux metrics: at
    # 1/200 dataset scale it degenerates toward WAIT_TIME=1, which is
    # exactly why the composite objective exists — report both.
    timed = [t for t in cells if "aux" in t]
    raw_best = (
        min(timed, key=lambda t: (t["aux"]["time_ms"], t["index"]))
        if timed
        else None
    )
    return {
        "objective": grid_phase["objective"],
        "grid_budget": grid_phase["spent_units"],
        "grid_best": {
            "point": best["point"],
            "objective": optimum,
        },
        "makespan_best": (
            None
            if raw_best is None
            else {
                "point": raw_best["point"],
                "time_ms": raw_best["aux"]["time_ms"],
            }
        ),
        "wait_levels": wait_levels,
        "plateau_wait_values": plateau,
        "plateau_factor": PLATEAU_FACTOR,
        "analytic_wait": analytic_wait,
        "analytic_objective": analytic_obj,
        "analytic_in_plateau": analytic_wait in plateau,
        #: How far the shipped analytic WAIT_TIME sits from the
        #: measured optimum (1.0 = it IS the optimum).  Reported even
        #: when off-plateau: a conservative shipped default is a
        #: finding, not a failure.
        "analytic_within_factor": (
            None if analytic_obj is None else analytic_obj / optimum
        ),
        "evo_budget": evo_phase["spent_units"],
        "evo_best": evo_best,
        "evo_matches_grid": (
            evo_best is not None
            and evo_best["objective"] <= optimum * (1 + 1e-12)
        ),
        "sensitivity": [
            {
                "batch_size": t["point"]["batch_size"],
                "wait_time": t["point"]["wait_time"],
                "objective": t["objective"],
                "time_ms": t.get("aux", {}).get("time_ms"),
            }
            for t in cells
        ],
    }


def run_fig4_study(
    quick: bool = False,
    seed: int = 0,
    jobs: Optional[int] = None,
    timeout_s: Optional[float] = None,
    journal_path: Optional[str] = None,
    apps: Optional[tuple] = None,
) -> dict:
    """The headline study: Fig-4 sweep + evolutionary rematch per app."""
    apps = tuple(apps) if apps else (("bfs",) if quick else ("bfs", "pagerank"))
    log = StudyJournal(journal_path, {"seed": seed})
    fig4: dict[str, dict] = {}
    phases: list[dict] = []
    try:
        for app in apps:
            space = fig4_space(app, quick=quick)
            objective = FIG4_OBJECTIVES[app]
            grid_budget = len(space.grid())
            grid_phase = run_search_phase(
                space, "grid", grid_budget, objective,
                seed=seed, jobs=jobs, timeout_s=timeout_s,
                journal=log, phase=f"{app}-grid",
            )
            evo_budget = grid_budget // 2
            evo_phase = run_search_phase(
                space, "evolutionary", evo_budget, objective,
                seed=seed, jobs=jobs, timeout_s=timeout_s,
                journal=log, phase=f"{app}-evo",
                searcher_kwargs={"mu": 3, "lam": 6},
            )
            phases.extend([grid_phase, evo_phase])
            fig4[app] = _fig4_analysis(app, space, grid_phase, evo_phase)
    finally:
        log.close()
    doc = {
        "schema": SCHEMA,
        "mode": "fig4",
        "quick": quick,
        "seed": seed,
        "searcher": "grid+evolutionary",
        "objective": "+".join(FIG4_OBJECTIVES[a] for a in apps),
        "budget": sum(p["spent_units"] for p in phases),
        "fig4": fig4,
        "trials": [t for p in phases for t in p["trials"]],
        "best": None,
        "headline": (
            "fig4 sensitivity: analytic wait_time_for vs measured "
            "optimum; evolutionary rematch at half the grid budget"
        ),
    }
    _merge_accounting(doc, phases)
    return doc


# ------------------------------------------------------ render/validate
def render_tune_bench(doc: dict) -> str:
    """Human-readable summary of a tune document."""
    lines = [f"tune study ({doc.get('mode')}, seed {doc.get('seed')})"]
    acct = doc.get("accounting", {})
    lines.append(
        format_cache_line(
            acct.get("disk_cache_hits", 0),
            acct.get("simulations", 0),
            waits=acct.get("single_flight_waits", 0),
        )
    )
    lines.append(
        f"evaluations saved: {acct.get('evaluations_saved', 0)} "
        f"(journal {acct.get('journal_replays', 0)}, disk "
        f"{acct.get('disk_cache_hits', 0)}, repeat "
        f"{acct.get('repeat_hits', 0)}); simulations actually run: "
        f"{acct.get('simulations', 0)}"
    )
    if doc.get("mode") == "fig4":
        for app, cell in doc.get("fig4", {}).items():
            grid_best = cell["grid_best"]
            evo = cell["evo_best"] or {}
            lines.append("")
            lines.append(
                f"{app} ({cell['objective']}): grid optimum "
                f"batch={grid_best['point']['batch_size']} "
                f"wait={grid_best['point']['wait_time']} "
                f"-> {grid_best['objective']:.4g} "
                f"[{cell['grid_budget']} evals]"
            )
            factor = cell.get("analytic_within_factor")
            lines.append(
                f"  analytic wait_time_for({app}) = "
                f"{cell['analytic_wait']} "
                f"{'IS' if cell['analytic_in_plateau'] else 'is NOT'} "
                f"on the measured plateau "
                f"(waits within {cell['plateau_factor']:.2f}x: "
                f"{cell['plateau_wait_values']}"
                + (
                    f"; analytic sits at {factor:.2f}x the optimum"
                    if factor is not None
                    else ""
                )
                + ")"
            )
            raw = cell.get("makespan_best")
            if raw:
                lines.append(
                    f"  raw-makespan optimum (reported for honesty): "
                    f"wait={raw['point']['wait_time']} "
                    f"-> {raw['time_ms']:.4g} ms"
                )
            lines.append(
                f"  evolutionary: {evo.get('objective', float('nan')):.4g} "
                f"at batch={evo.get('point', {}).get('batch_size')} "
                f"wait={evo.get('point', {}).get('wait_time')} "
                f"[{cell['evo_budget']} evals, "
                f"{'matches' if cell['evo_matches_grid'] else 'misses'} "
                f"the grid optimum]"
            )
    elif doc.get("best"):
        best = doc["best"]
        lines.append(
            f"best: {best['point']} -> {best['objective']:.6g} "
            f"(trial #{best['trial_index']}, {best['reps']} rep(s))"
        )
    else:
        lines.append("no successful trials")
    return "\n".join(lines)


def validate_tune_bench(doc: dict) -> int:
    """Schema-check a tune document; returns the trial count.

    The contract CI's tune-smoke job enforces on the emitted
    ``BENCH_tune.json``: schema tag, mode, accounting block with every
    counter, non-empty trials each carrying a point and a status, and
    — in fig4 mode — the per-app sensitivity analysis with the
    analytic comparison and the evolutionary budget at most half the
    grid's.  Raises :class:`ValueError` on the first violation.
    """
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}"
        )
    if doc.get("mode") not in ("custom", "fig4"):
        raise ValueError(f"bad mode {doc.get('mode')!r}")
    acct = doc.get("accounting")
    if not isinstance(acct, dict):
        raise ValueError("missing accounting block")
    for key in (
        "trials",
        "eval_units",
        "simulations",
        "disk_cache_hits",
        "journal_replays",
        "repeat_hits",
        "evaluations_saved",
    ):
        if not isinstance(acct.get(key), int) or acct[key] < 0:
            raise ValueError(f"accounting.{key} must be a non-negative int")
    trials = doc.get("trials")
    if not isinstance(trials, list) or not trials:
        raise ValueError("trials must be a non-empty list")
    for trial in trials:
        if not isinstance(trial.get("point"), dict):
            raise ValueError(f"trial missing point: {trial!r}")
        if trial.get("status") not in ("ok", "error"):
            raise ValueError(f"trial bad status: {trial!r}")
        if trial["status"] == "ok" and not isinstance(
            trial.get("objective"), (int, float)
        ):
            raise ValueError(f"ok trial missing objective: {trial!r}")
    if doc["mode"] == "custom":
        if doc.get("best") is None:
            raise ValueError("custom study produced no best point")
    else:
        fig4 = doc.get("fig4")
        if not isinstance(fig4, dict) or not fig4:
            raise ValueError("fig4 mode needs a non-empty fig4 block")
        for app, cell in fig4.items():
            for key in (
                "grid_best",
                "analytic_wait",
                "analytic_in_plateau",
                "plateau_wait_values",
                "evo_best",
                "sensitivity",
            ):
                if key not in cell:
                    raise ValueError(f"fig4.{app} missing {key}")
            if cell["evo_budget"] * 2 > cell["grid_budget"]:
                raise ValueError(
                    f"fig4.{app}: evolutionary budget "
                    f"{cell['evo_budget']} exceeds half the grid's "
                    f"{cell['grid_budget']}"
                )
            if not cell["sensitivity"]:
                raise ValueError(f"fig4.{app}: empty sensitivity sweep")
    return len(trials)
