"""Design-space exploration over the simulated GPU runtime.

``repro.tune`` turns the repo's deterministic simulator + persistent
run cache into a tuning harness, the ArchGym observation applied to
this codebase: once the evaluation backend is cheap, reproducible, and
memoized, *any* search algorithm can be bolted on and compared
fairly.

The subsystem has four layers:

* :mod:`repro.tune.space` — a typed, serializable parameter space
  (int/float/log/categorical/conditional dims) whose points compile
  into :class:`repro.harness.pool.RunSpec` +
  :class:`repro.config.ConfigOverlay`;
* :mod:`repro.tune.objective` — pluggable scalar objectives over
  :class:`repro.metrics.counters.RunResult`;
* :mod:`repro.tune.search` — seeded random, grid, evolutionary, and
  successive-halving searchers behind one ``ask()``/``tell()``
  protocol, deterministic under a study seed;
* :mod:`repro.tune.evaluate` / :mod:`repro.tune.study` — the pooled,
  cached evaluation engine and the journaled (resumable) study
  runner, including the headline Fig-4 sensitivity preset
  (``python -m repro tune --preset fig4``).
"""

from repro.tune.evaluate import EvaluationEngine, TrialOutcome, derive_rep_seed
from repro.tune.objective import OBJECTIVES, Objective, get_objective
from repro.tune.search import (
    SEARCHERS,
    EvolutionarySearcher,
    GridSearcher,
    RandomSearcher,
    Searcher,
    SuccessiveHalvingSearcher,
    Trial,
    make_searcher,
)
from repro.tune.space import (
    CategoricalDim,
    ConditionalDim,
    Dim,
    FloatDim,
    IntDim,
    Space,
    canonical_point,
    hash_uniform,
)
from repro.tune.study import (
    SCHEMA,
    StudyJournal,
    fig4_space,
    render_tune_bench,
    run_fig4_study,
    run_search_phase,
    run_study,
    validate_tune_bench,
)

__all__ = [
    "SCHEMA",
    "Dim",
    "IntDim",
    "FloatDim",
    "CategoricalDim",
    "ConditionalDim",
    "Space",
    "canonical_point",
    "hash_uniform",
    "Objective",
    "OBJECTIVES",
    "get_objective",
    "Trial",
    "Searcher",
    "RandomSearcher",
    "GridSearcher",
    "EvolutionarySearcher",
    "SuccessiveHalvingSearcher",
    "SEARCHERS",
    "make_searcher",
    "derive_rep_seed",
    "TrialOutcome",
    "EvaluationEngine",
    "StudyJournal",
    "run_search_phase",
    "run_study",
    "fig4_space",
    "run_fig4_study",
    "render_tune_bench",
    "validate_tune_bench",
]
