"""Evaluation engine: candidate points -> objectives, cached + pooled.

The tuner composes the two ingredients the harness already owns:

* the **process pool** (:mod:`repro.harness.pool`) — a batch of
  candidate trials fans out over crash-isolated workers, so one
  diverging configuration cannot take the study down;
* the **persistent run cache** (:mod:`repro.harness.cache`) — a
  revisited point (same spec + overlay + seed + code version) is
  served from disk, so searchers that re-propose known points (grid
  refinement, evolutionary convergence, successive-halving
  promotions) pay nothing.

Per-trial repetition seeds are **counter-based** off the study seed
(`derive_rep_seed`), never drawn from a shared RNG: rep *k* of every
trial uses the same seed, so (a) parallel evaluation order cannot
perturb the sequence, (b) repetitions are paired across points
(variance reduction), and (c) a successive-halving promotion to
higher fidelity re-uses its lower-rung reps straight from the cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.tune.objective import Objective
from repro.tune.search import Trial
from repro.tune.space import Space, hash_uniform

__all__ = [
    "derive_rep_seed",
    "TrialOutcome",
    "EvaluationEngine",
]


def derive_rep_seed(study_seed: int, rep: int) -> int:
    """Partition seed for repetition ``rep`` of any trial.

    Rep 0 is seed 0 — the evaluation default, so single-rep studies
    share cache entries with the main tables.  Higher reps hash
    ``(study_seed, rep)`` into a 31-bit seed: a pure function of the
    coordinates, like :func:`repro.faults.plan.uniform`.
    """
    if rep == 0:
        return 0
    return int(hash_uniform(study_seed, "rep-seed", rep) * (2**31 - 1)) + 1


@dataclass
class TrialOutcome:
    """One evaluated trial: the score plus full cost accounting."""

    trial: Trial
    status: str  # "ok" | "error"
    objective: float  # +inf when status != ok
    per_rep: list = field(default_factory=list)
    #: RunResults in rep order (ok trials only; not journaled).
    results: list = field(default_factory=list)
    #: Journaled raw metrics (mean over reps) so the study doc can
    #: report e.g. the raw-makespan optimum next to a composite one.
    aux: dict = field(default_factory=dict)
    wall_s: float = 0.0
    simulations: int = 0  # fresh DES runs this trial actually cost
    disk_hits: int = 0  # reps served from the persistent cache
    repeat_hits: int = 0  # reps served from this study's own memory
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class EvaluationEngine:
    """Routes trials through the pool + cache and scores them.

    One engine per study phase: it remembers every spec it has
    resolved, so a point re-proposed within the study is a free
    ``repeat_hit`` without even touching the disk cache.
    """

    def __init__(
        self,
        space: Space,
        objective: Objective,
        study_seed: int = 0,
        jobs: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ):
        self.space = space
        self.objective = objective
        self.study_seed = int(study_seed)
        self.jobs = jobs
        self.timeout_s = timeout_s
        self._results: dict[Any, Any] = {}  # RunSpec -> RunResult
        self._failures: dict[Any, str] = {}  # RunSpec -> error text
        # Study-level accounting.
        self.simulations = 0
        self.disk_hits = 0
        self.repeat_hits = 0
        self.errors = 0

    # -- spec derivation ----------------------------------------------
    def specs_for(self, trial: Trial) -> list:
        """The per-rep RunSpecs of one trial, in rep order."""
        base = self.space.compile(trial.point)
        specs = []
        for rep in range(max(trial.reps, 1)):
            seed = derive_rep_seed(self.study_seed, rep)
            specs.append(base if rep == 0 and base.seed == seed
                         else replace(base, seed=seed))
        return specs

    # -- evaluation ----------------------------------------------------
    def evaluate(self, trials: list) -> list:
        """Evaluate a batch of trials; returns TrialOutcomes in order.

        Specs are deduplicated across the batch *and* against every
        earlier batch of this study, then fanned out over the pool;
        failures are isolated per trial (status ``error``,
        objective +inf) so a crashing configuration is just a bad
        point, not a dead study.
        """
        from repro.harness import runner
        from repro.harness.pool import run_grid

        per_trial_specs = {t.index: self.specs_for(t) for t in trials}
        fresh: list = []
        seen: set = set()
        for trial in trials:
            for spec in per_trial_specs[trial.index]:
                if (
                    spec not in self._results
                    and spec not in self._failures
                    and spec not in seen
                ):
                    seen.add(spec)
                    fresh.append(spec)
        if fresh:
            for cell in run_grid(
                fresh, jobs=self.jobs, timeout_s=self.timeout_s
            ):
                if cell.ok:
                    result = runner.seed_memo(cell.spec, cell.result)
                    self._results[cell.spec] = result
                    self.simulations += result.cache_misses
                    self.disk_hits += result.cache_hits
                else:
                    self._failures[cell.spec] = (
                        f"{cell.status}: {cell.error.strip()}"
                    )
                    self.errors += 1

        outcomes = []
        for trial in trials:
            outcomes.append(
                self._score(trial, per_trial_specs[trial.index], seen)
            )
        return outcomes

    def _score(self, trial: Trial, specs: list, fresh_specs: set):
        failures = [
            self._failures[s] for s in specs if s in self._failures
        ]
        if failures or any(s not in self._results for s in specs):
            missing = [s.label() for s in specs if s not in self._results]
            return TrialOutcome(
                trial=trial,
                status="error",
                objective=math.inf,
                error="; ".join(failures) or f"missing cells: {missing}",
            )
        results = [self._results[s] for s in specs]
        try:
            per_rep = [float(self.objective(r)) for r in results]
        except Exception as exc:
            self.errors += 1
            return TrialOutcome(
                trial=trial,
                status="error",
                objective=math.inf,
                error=f"objective extraction failed: {exc}",
            )
        repeat = sum(1 for s in specs if s not in fresh_specs)
        self.repeat_hits += repeat
        n = len(results)
        aux = {
            "time_ms": sum(r.time_ms for r in results) / n,
            "fabric_messages": sum(
                r.counters.get("fabric_messages", 0) for r in results
            ) / n,
        }
        return TrialOutcome(
            trial=trial,
            status="ok",
            objective=sum(per_rep) / len(per_rep),
            per_rep=per_rep,
            results=results,
            aux=aux,
            wall_s=sum(r.wall_clock_s for r in results),
            simulations=sum(
                r.cache_misses for s, r in zip(specs, results)
                if s in fresh_specs
            ),
            disk_hits=sum(
                r.cache_hits for s, r in zip(specs, results)
                if s in fresh_specs
            ),
            repeat_hits=repeat,
        )

    def accounting(self) -> dict:
        """Study-level cost summary (what the cache saved us)."""
        return {
            "simulations": self.simulations,
            "disk_cache_hits": self.disk_hits,
            "repeat_hits": self.repeat_hits,
            "errors": self.errors,
        }
