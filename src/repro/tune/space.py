"""Typed, serializable parameter spaces for design-space exploration.

A :class:`Space` is an ordered list of typed dimensions
(:class:`IntDim`, :class:`FloatDim`, :class:`CategoricalDim`, and
:class:`ConditionalDim` wrappers) plus a ``base`` of fixed run
parameters.  A sampled **point** is a plain ``{name: value}`` dict —
JSON-serializable, journal-friendly — and :meth:`Space.compile` turns
a point into the concrete execution request: a
:class:`repro.harness.pool.RunSpec` carrying a
:class:`repro.config.ConfigOverlay` of tuning-knob overrides.

Dimension names split into two vocabularies, both validated loudly:

* **spec fields** — ``framework``, ``app``, ``dataset``, ``machine``,
  ``n_gpus`` (which cell of the evaluation grid to run);
* **overlay knobs** — ``batch_size``, ``wait_time``, ``fetch_size``,
  ``engine_queue``, ``partitions``, ``pdes_driver`` (how to run it).

Randomness is **counter-based** throughout (the :mod:`repro.faults`
idiom): every draw is a pure function of ``(seed, *coordinates)``, so
a sampled point depends only on its trial index — never on how many
draws other trials made, and never on evaluation order under a
parallel pool.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional

from repro.config import ConfigOverlay
from repro.errors import ConfigError

__all__ = [
    "SPEC_FIELDS",
    "OVERLAY_FIELDS",
    "hash_uniform",
    "Dim",
    "IntDim",
    "FloatDim",
    "CategoricalDim",
    "ConditionalDim",
    "Space",
    "canonical_point",
]

#: Point keys that select *which* evaluation cell runs.
SPEC_FIELDS = ("framework", "app", "dataset", "machine", "n_gpus")

#: Point keys that become :class:`repro.config.ConfigOverlay` knobs.
OVERLAY_FIELDS = (
    "batch_size",
    "wait_time",
    "fetch_size",
    "engine_queue",
    "partitions",
    "pdes_driver",
)

#: Default grid resolution for numeric dims without an explicit grid.
_DEFAULT_LEVELS = 8


def hash_uniform(seed: int, *key: object) -> float:
    """Deterministic uniform in [0, 1) for a mixed seed/key tuple.

    Counter-based (blake2b of the canonical key repr) rather than a
    stateful RNG: the value depends only on the coordinates.  Unlike
    :func:`repro.faults.plan.uniform` the key may contain strings
    (dimension names), so searchers can coordinate draws per
    ``(trial, dim, purpose)`` without maintaining an index mapping.
    """
    blob = repr((int(seed),) + tuple(key)).encode("utf-8")
    digest = hashlib.blake2b(blob, digest_size=8).digest()
    return int.from_bytes(digest, "little") / 2.0**64


def canonical_point(point: Mapping[str, Any]) -> str:
    """Stable JSON identity of a point (sorted keys, exact floats)."""
    return json.dumps(
        {k: point[k] for k in sorted(point)}, sort_keys=True,
        separators=(",", ":"),
    )


# ---------------------------------------------------------------- dims
@dataclass(frozen=True)
class Dim:
    """Base class: one named, sampleable, enumerable dimension."""

    name: str

    kind = "dim"

    # Subclasses implement sample/grid_values/mutate/contains.
    def sample(self, u: float) -> Any:
        raise NotImplementedError

    def grid_values(self) -> tuple:
        raise NotImplementedError

    def mutate(self, value: Any, u: float) -> Any:
        raise NotImplementedError

    def contains(self, value: Any) -> bool:
        raise NotImplementedError

    def to_dict(self) -> dict:
        raise NotImplementedError


def _nearest_index(levels: tuple, value: Any) -> int:
    best, best_d = 0, None
    for i, level in enumerate(levels):
        try:
            d = abs(float(level) - float(value))
        except (TypeError, ValueError):
            d = 0.0 if level == value else math.inf
        if best_d is None or d < best_d:
            best, best_d = i, d
    return best


def _step_mutate(levels: tuple, value: Any, u: float) -> Any:
    """Move one or two grid steps from ``value``, never off the ends.

    The workhorse for ordered dims: half the probability mass on the
    +/-1 neighbours, the rest split between +/-2 jumps, reflected at
    the boundaries so edge values still mutate.
    """
    if len(levels) <= 1:
        return value
    i = _nearest_index(levels, value)
    step = (-2, -1, 1, 2)[min(int(u * 4), 3)]
    j = i + step
    if j < 0 or j >= len(levels):
        j = i - step
    j = min(max(j, 0), len(levels) - 1)
    if j == i:
        j = i + (1 if i == 0 else -1)
    return levels[j]


@dataclass(frozen=True)
class IntDim(Dim):
    """Integer range [low, high], optionally sampled on a log scale."""

    low: int = 0
    high: int = 0
    log: bool = False
    #: Explicit grid levels; empty = derive ~:data:`_DEFAULT_LEVELS`
    #: evenly (or geometrically, when ``log``) spaced unique values.
    grid: tuple = ()

    kind = "int"

    def __post_init__(self):
        if self.low > self.high:
            raise ConfigError(f"dim {self.name!r}: low > high")
        if self.log and self.low < 1:
            raise ConfigError(f"dim {self.name!r}: log scale needs low >= 1")
        for v in self.grid:
            if not self.contains(v):
                raise ConfigError(
                    f"dim {self.name!r}: grid value {v!r} out of range"
                )

    def sample(self, u: float) -> int:
        if self.log:
            lo, hi = math.log(self.low), math.log(self.high)
            value = int(round(math.exp(lo + u * (hi - lo))))
        else:
            value = self.low + int(u * (self.high - self.low + 1))
        return min(max(value, self.low), self.high)

    def grid_values(self) -> tuple:
        if self.grid:
            return tuple(self.grid)
        n = min(_DEFAULT_LEVELS, self.high - self.low + 1)
        if n <= 1:
            return (self.low,)
        out: list[int] = []
        for i in range(n):
            u = i / (n - 1)
            if self.log:
                lo, hi = math.log(self.low), math.log(self.high)
                v = int(round(math.exp(lo + u * (hi - lo))))
            else:
                v = int(round(self.low + u * (self.high - self.low)))
            if not out or v != out[-1]:
                out.append(min(max(v, self.low), self.high))
        return tuple(out)

    def mutate(self, value: int, u: float) -> int:
        return _step_mutate(self.grid_values(), value, u)

    def contains(self, value: Any) -> bool:
        return (
            isinstance(value, int)
            and not isinstance(value, bool)
            and self.low <= value <= self.high
        )

    def to_dict(self) -> dict:
        out = {"kind": self.kind, "name": self.name, "low": self.low,
               "high": self.high}
        if self.log:
            out["log"] = True
        if self.grid:
            out["grid"] = list(self.grid)
        return out


@dataclass(frozen=True)
class FloatDim(Dim):
    """Float range [low, high], optionally sampled on a log scale."""

    low: float = 0.0
    high: float = 0.0
    log: bool = False
    grid: tuple = ()

    kind = "float"

    def __post_init__(self):
        if self.low > self.high:
            raise ConfigError(f"dim {self.name!r}: low > high")
        if self.log and self.low <= 0:
            raise ConfigError(f"dim {self.name!r}: log scale needs low > 0")
        for v in self.grid:
            if not self.contains(v):
                raise ConfigError(
                    f"dim {self.name!r}: grid value {v!r} out of range"
                )

    def sample(self, u: float) -> float:
        if self.log:
            lo, hi = math.log(self.low), math.log(self.high)
            return min(max(math.exp(lo + u * (hi - lo)), self.low), self.high)
        return self.low + u * (self.high - self.low)

    def grid_values(self) -> tuple:
        if self.grid:
            return tuple(self.grid)
        n = _DEFAULT_LEVELS
        out = []
        for i in range(n):
            u = i / (n - 1)
            out.append(self.sample(u))
        return tuple(out)

    def mutate(self, value: float, u: float) -> float:
        # Local perturbation: +/- up to one grid-step's worth of span,
        # multiplicative on log scales, reflected into range.
        if self.log:
            spread = (math.log(self.high) - math.log(self.low)) / (
                _DEFAULT_LEVELS - 1
            )
            moved = value * math.exp((2 * u - 1) * 2 * spread)
        else:
            spread = (self.high - self.low) / (_DEFAULT_LEVELS - 1)
            moved = value + (2 * u - 1) * 2 * spread
        return min(max(moved, self.low), self.high)

    def contains(self, value: Any) -> bool:
        return (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and self.low <= float(value) <= self.high
        )

    def to_dict(self) -> dict:
        out = {"kind": self.kind, "name": self.name, "low": self.low,
               "high": self.high}
        if self.log:
            out["log"] = True
        if self.grid:
            out["grid"] = list(self.grid)
        return out


@dataclass(frozen=True)
class CategoricalDim(Dim):
    """A finite set of choices; ``ordered`` makes mutation step-local."""

    choices: tuple = ()
    #: Ordered categories mutate to neighbours (like a numeric grid);
    #: unordered ones mutate to any *other* choice.
    ordered: bool = False

    kind = "categorical"

    def __post_init__(self):
        if not self.choices:
            raise ConfigError(f"dim {self.name!r}: no choices")
        if len(set(self.choices)) != len(self.choices):
            raise ConfigError(f"dim {self.name!r}: duplicate choices")

    def sample(self, u: float) -> Any:
        return self.choices[min(int(u * len(self.choices)),
                                len(self.choices) - 1)]

    def grid_values(self) -> tuple:
        return tuple(self.choices)

    def mutate(self, value: Any, u: float) -> Any:
        if len(self.choices) <= 1:
            return value
        if self.ordered:
            return _step_mutate(self.choices, value, u)
        others = [c for c in self.choices if c != value]
        return others[min(int(u * len(others)), len(others) - 1)]

    def contains(self, value: Any) -> bool:
        return value in self.choices

    def to_dict(self) -> dict:
        out = {"kind": self.kind, "name": self.name,
               "choices": list(self.choices)}
        if self.ordered:
            out["ordered"] = True
        return out


@dataclass(frozen=True)
class ConditionalDim(Dim):
    """A dimension active only when another parameter takes a value.

    ``when_param`` must name an *earlier* dim (or a base field); the
    wrapped dim participates in a point only when that parameter's
    value is in ``when_in`` — e.g. ``pdes_driver`` only when
    ``partitions >= 2`` (spelled as the activating values).
    """

    dim: Optional[Dim] = None
    when_param: str = ""
    when_in: tuple = ()

    kind = "conditional"

    def __post_init__(self):
        if self.dim is None or not self.when_param or not self.when_in:
            raise ConfigError(
                f"conditional dim {self.name!r} needs dim/when_param/when_in"
            )
        if self.dim.name != self.name:
            raise ConfigError(
                f"conditional dim name {self.name!r} != inner "
                f"{self.dim.name!r}"
            )

    def active(self, partial_point: Mapping[str, Any]) -> bool:
        """Whether this dim participates given the values so far."""
        return partial_point.get(self.when_param) in self.when_in

    def sample(self, u: float) -> Any:
        return self.dim.sample(u)

    def grid_values(self) -> tuple:
        return self.dim.grid_values()

    def mutate(self, value: Any, u: float) -> Any:
        return self.dim.mutate(value, u)

    def contains(self, value: Any) -> bool:
        return self.dim.contains(value)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "dim": self.dim.to_dict(),
            "when_param": self.when_param,
            "when_in": list(self.when_in),
        }


_DIM_KINDS = {"int": IntDim, "float": FloatDim, "categorical": CategoricalDim}


def _dim_from_dict(data: Mapping[str, Any]) -> Dim:
    kind = data.get("kind")
    if kind == "conditional":
        return ConditionalDim(
            name=data["name"],
            dim=_dim_from_dict(data["dim"]),
            when_param=data["when_param"],
            when_in=tuple(data["when_in"]),
        )
    if kind not in _DIM_KINDS:
        raise ConfigError(f"unknown dim kind {kind!r}")
    cls = _DIM_KINDS[kind]
    kwargs = dict(data)
    kwargs.pop("kind")
    for tup in ("grid", "choices"):
        if tup in kwargs:
            kwargs[tup] = tuple(kwargs[tup])
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ConfigError(f"bad dim spec {data!r}: {exc}") from None


# --------------------------------------------------------------- space
@dataclass
class Space:
    """An ordered set of dims plus the fixed ``base`` run parameters.

    ``base`` must cover every spec field a point leaves unspecified
    (``app`` and ``dataset`` have no defaults — a study that does not
    pin them must search them).  Conditional dims may only reference
    parameters defined before them (earlier dims or base fields).
    """

    dims: tuple = ()
    base: dict = field(default_factory=dict)

    _SPEC_DEFAULTS = {
        "framework": "atos-standard-persistent",
        "machine": "summit-ib",
        "n_gpus": 4,
    }

    def __post_init__(self):
        self.dims = tuple(self.dims)
        seen: set[str] = set(self.base)
        for dim in self.dims:
            if not isinstance(dim, Dim):
                raise ConfigError(f"not a Dim: {dim!r}")
            if dim.name in seen and dim.name not in self.base:
                raise ConfigError(f"duplicate dim {dim.name!r}")
            known = SPEC_FIELDS + OVERLAY_FIELDS
            if dim.name not in known:
                raise ConfigError(
                    f"unknown dim name {dim.name!r}; known: {known}"
                )
            if isinstance(dim, ConditionalDim) and dim.when_param not in seen:
                raise ConfigError(
                    f"conditional dim {dim.name!r} references "
                    f"{dim.when_param!r} before it is defined"
                )
            seen.add(dim.name)
        for key in self.base:
            if key not in SPEC_FIELDS + OVERLAY_FIELDS + ("validate", "seed"):
                raise ConfigError(f"unknown base field {key!r}")

    # -- sampling ------------------------------------------------------
    def sample(self, seed: int, index: int) -> dict:
        """The ``index``-th random point of stream ``seed``.

        Pure function of (seed, index): each dim draws
        ``hash_uniform(seed, index, dim.name)``, so points are
        reproducible regardless of evaluation order or parallelism.
        """
        point: dict[str, Any] = {}
        context = dict(self.base)
        for dim in self.dims:
            if isinstance(dim, ConditionalDim) and not dim.active(context):
                continue
            value = dim.sample(hash_uniform(seed, index, dim.name))
            point[dim.name] = value
            context[dim.name] = value
        return point

    def mutate(self, point: Mapping[str, Any], seed: int, *key: object) -> dict:
        """Mutate a point: each dim flips with prob 1/n_dims, >= 1 flips.

        Counter-based on ``(seed, *key, dim.name, purpose)``.  After
        mutation, conditional dims are re-resolved: a newly activated
        dim samples fresh, a deactivated one drops out.
        """
        n = max(len(self.dims), 1)
        mutated: dict[str, Any] = {}
        context = dict(self.base)
        forced = None
        if self.dims:
            # Pre-pick one dim that must mutate so a child never
            # degenerates to its parent.
            forced_u = hash_uniform(seed, *key, "__forced__")
            forced = self.dims[min(int(forced_u * n), n - 1)].name
        for dim in self.dims:
            if isinstance(dim, ConditionalDim) and not dim.active(context):
                continue
            old = point.get(dim.name)
            flip = hash_uniform(seed, *key, dim.name, "flip") < 1.0 / n
            draw = hash_uniform(seed, *key, dim.name, "value")
            if old is None or not dim.contains(old):
                value = dim.sample(draw)
            elif flip or dim.name == forced:
                value = dim.mutate(old, draw)
            else:
                value = old
            mutated[dim.name] = value
            context[dim.name] = value
        return mutated

    def grid(self) -> list[dict]:
        """Every grid point, in deterministic nested-loop order."""
        points: list[tuple[dict, dict]] = [({}, dict(self.base))]
        for dim in self.dims:
            next_points = []
            for point, context in points:
                if isinstance(dim, ConditionalDim) and not dim.active(context):
                    next_points.append((point, context))
                    continue
                for value in dim.grid_values():
                    p2 = dict(point)
                    c2 = dict(context)
                    p2[dim.name] = value
                    c2[dim.name] = value
                    next_points.append((p2, c2))
            points = next_points
        return [p for p, _ in points]

    # -- validation / compilation -------------------------------------
    def validate_point(self, point: Mapping[str, Any]) -> None:
        """Check a point is well-formed for this space; ConfigError if not."""
        by_name = {d.name: d for d in self.dims}
        for key in point:
            if key not in by_name:
                raise ConfigError(f"point key {key!r} is not a dim")
        context = dict(self.base)
        for dim in self.dims:
            active = not isinstance(dim, ConditionalDim) or dim.active(context)
            present = dim.name in point
            if active and not present:
                raise ConfigError(f"point missing dim {dim.name!r}")
            if not active and present:
                raise ConfigError(
                    f"point sets inactive conditional dim {dim.name!r}"
                )
            if present:
                if not dim.contains(point[dim.name]):
                    raise ConfigError(
                        f"point value {dim.name}={point[dim.name]!r} "
                        f"out of range"
                    )
                context[dim.name] = point[dim.name]

    def compile(self, point: Mapping[str, Any]) -> "RunSpec":
        """A point -> the concrete RunSpec (+overlay) that evaluates it."""
        from repro.harness.pool import RunSpec

        self.validate_point(point)
        merged = dict(self._SPEC_DEFAULTS)
        merged.update(self.base)
        merged.update(point)
        for required in ("app", "dataset"):
            if required not in merged:
                raise ConfigError(
                    f"space fixes no {required!r} and no dim samples it"
                )
        overlay_kwargs = {
            k: merged[k] for k in OVERLAY_FIELDS if k in merged
        }
        overlay = ConfigOverlay(**overlay_kwargs) if overlay_kwargs else None
        if overlay is not None and not overlay:
            overlay = None
        return RunSpec(
            framework=merged["framework"],
            app=merged["app"],
            dataset=merged["dataset"],
            machine=merged["machine"],
            n_gpus=int(merged["n_gpus"]),
            validate=bool(merged.get("validate", True)),
            seed=int(merged.get("seed", 0)),
            overlay=overlay,
        )

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "base": dict(self.base),
            "dims": [d.to_dict() for d in self.dims],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Space":
        """Inverse of :meth:`to_dict`; raises ConfigError on bad input."""
        if not isinstance(data, Mapping):
            raise ConfigError(f"space spec must be a mapping, got {data!r}")
        dims = [_dim_from_dict(d) for d in data.get("dims", [])]
        return cls(dims=tuple(dims), base=dict(data.get("base", {})))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Space":
        """Parse a space from its JSON form."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"bad space JSON: {exc}") from None
        return cls.from_dict(data)
