"""The Atos counter-based concurrent queue (paper Listing 6).

Five monotonically increasing virtual counters manage the ring buffer:

* ``start``      — pop cursor: everything in ``[start, end)`` is valid.
* ``end``        — publication frontier: all data before it is committed.
* ``end_alloc``  — reservation cursor (``atomicAdd`` on push).
* ``end_max``    — highest index+count any committed push has reached
  (``atomicMax`` after the data write).
* ``end_count``  — total number of committed items (``atomicAdd`` after
  the fence).

The protocol's key move: ``end`` only advances (to ``end_max``) when
``end_count == end_max``, i.e. when *every* reservation below
``end_max`` has finished writing.  A later reservation committing
before an earlier one leaves a gap (``end_count < end_max``), so the
unwritten region is never exposed to poppers — this is how Atos gets
data consistency without per-item flags and without kernel-boundary
synchronization.

Compared to flag-based designs (broker queue), the paper notes two
wins, both visible in this model: no per-item flag storage, and a pop
query is a single ``end`` read instead of per-item flag polling.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import QueueFullError
from repro.queues.base import ConcurrentQueue, Ticket

__all__ = ["AtosQueue"]


class AtosQueue(ConcurrentQueue):
    """Counter-based lock-free FIFO (functional model)."""

    def __init__(self, capacity: int, dtype=np.int64):
        super().__init__(capacity, dtype)
        self.start = 0
        self.end = 0
        self.end_alloc = 0
        self.end_max = 0
        self.end_count = 0

    # ------------------------------------------------------------- state
    @property
    def readable(self) -> int:
        return self.end - self.start

    @property
    def pending(self) -> int:
        return self.end_alloc - self.end

    @property
    def free_slots(self) -> int:
        return self.capacity - (self.end_alloc - self.start)

    # ------------------------------------------------------ two-phase push
    def reserve(self, count: int) -> Ticket:
        """``atomicAdd(&end_alloc, total)`` by the worker's leader thread."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if self.end_alloc + count - self.start > self.capacity:
            self.stats.full_failures += 1
            raise QueueFullError(
                f"reserve({count}): {self.end_alloc - self.start} of "
                f"{self.capacity} slots in use"
            )
        ticket = Ticket(index=self.end_alloc, count=count)
        self.end_alloc += count
        return ticket

    def commit(self, ticket: Ticket, items: Sequence | np.ndarray) -> None:
        """Write the data, then run the counter-update mechanism."""
        items = np.asarray(items, dtype=self.storage.dtype)
        if len(items) != ticket.count:
            raise ValueError(
                f"ticket is for {ticket.count} items, got {len(items)}"
            )
        if ticket.count == 0:
            return
        # queue[reserv_index + rank] = item  (all worker threads)
        self._ring_write(ticket.index, items)
        # atomicMax(&end_max, reserv_index + total); __threadfence();
        self.end_max = max(self.end_max, ticket.index + ticket.count)
        # if (atomicAdd(&end_count, total) + total == end_max)
        #     atomicMax(&end, end_max);
        self.end_count += ticket.count
        if self.end_count == self.end_max:
            self.end = max(self.end, self.end_max)
        self.stats.pushes += 1
        self.stats.items_pushed += ticket.count

    # ----------------------------------------------------------------- pop
    def pop(self, max_items: int) -> np.ndarray:
        """Pop a batch; a single broadcast read of ``end`` bounds it."""
        if max_items < 0:
            raise ValueError("max_items must be non-negative")
        available = self.end - self.start
        take = min(max_items, available)
        if take == 0:
            self.stats.empty_failures += 1
            return np.empty(0, dtype=self.storage.dtype)
        out = self._ring_read(self.start, take)
        self.start += take
        self.stats.pops += 1
        self.stats.items_popped += take
        return out

    def snapshot(self) -> np.ndarray:
        """Copy of the committed window ``[start, end)`` — the exact
        items a drain would pop — without consuming anything
        (checkpointing)."""
        take = self.end - self.start
        if take == 0:
            return np.empty(0, dtype=self.storage.dtype)
        return self._ring_read(self.start, take)

    def check_invariants(self) -> None:
        """Assert the counter invariants (used heavily by tests)."""
        assert 0 <= self.start <= self.end, "pop cursor passed end"
        assert self.end <= self.end_max <= self.end_alloc, (
            "publication frontier beyond reservations"
        )
        assert self.end_count <= self.end_max, "more commits than reserved"
        assert self.end_alloc - self.start <= self.capacity, "overflow"
