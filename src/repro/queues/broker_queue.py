"""Flag-based concurrent queue in the style of the broker queue.

Kerbl et al.'s broker queue (and Troendle et al.'s design) wrap every
queue slot in a (value, flag) tuple.  A push (1) reserves a slot with a
ticket counter, (2) writes the value, (3) fences, then (4) sets the
slot's flag to READY.  A pop must observe a READY flag before it can
take the item, and clears the flag afterwards.

Functional consequence vs. the Atos counter queue: poppability is
tracked *per item*, so a pop can proceed past a gap only up to the
first unset flag it polls — and every poll of an unready slot is a
wasted memory transaction.  Cost consequences (extra flag word per
item, per-item flag polling instead of one ``end`` broadcast) are
charged in :mod:`repro.queues.contention`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import QueueFullError
from repro.queues.base import ConcurrentQueue, Ticket

__all__ = ["BrokerQueue"]


class BrokerQueue(ConcurrentQueue):
    """Per-item-flag FIFO (functional model)."""

    def __init__(self, capacity: int, dtype=np.int64):
        super().__init__(capacity, dtype)
        self.flags = np.zeros(capacity, dtype=bool)
        self.head = 0  # pop ticket counter
        self.tail = 0  # push ticket counter
        #: Number of flag words polled that turned out unready — the
        #: wasted-bandwidth metric the paper's design avoids.
        self.failed_polls = 0

    def _ready_run(self, bound: int) -> int:
        """Length of the contiguous READY run from head, up to ``bound``.

        Vectorized replacement for the per-item flag walk: the ring
        region is at most two contiguous flag segments, and the first
        unset flag in a segment is one ``argmin`` (bools sort False
        first), so the readable-run computation costs O(1) numpy calls
        instead of O(run) Python iterations.
        """
        if bound <= 0:
            return 0
        pos = self.head % self.capacity
        head_len = min(bound, self.capacity - pos)
        seg = self.flags[pos:pos + head_len]
        stop = int(np.argmin(seg))
        if not seg[stop]:
            return stop
        run = head_len
        rest = bound - head_len
        if rest:
            seg = self.flags[:rest]
            stop = int(np.argmin(seg))
            if not seg[stop]:
                return run + stop
            run += rest
        return run

    @property
    def readable(self) -> int:
        """Contiguous READY prefix starting at head."""
        return self._ready_run(self.tail - self.head)

    @property
    def pending(self) -> int:
        return (self.tail - self.head) - self.readable

    @property
    def free_slots(self) -> int:
        return self.capacity - (self.tail - self.head)

    def reserve(self, count: int) -> Ticket:
        if count < 0:
            raise ValueError("count must be non-negative")
        if self.tail + count - self.head > self.capacity:
            self.stats.full_failures += 1
            raise QueueFullError(
                f"reserve({count}): {self.tail - self.head} of "
                f"{self.capacity} slots in use"
            )
        ticket = Ticket(index=self.tail, count=count)
        self.tail += count
        return ticket

    def commit(self, ticket: Ticket, items: Sequence | np.ndarray) -> None:
        items = np.asarray(items, dtype=self.storage.dtype)
        if len(items) != ticket.count:
            raise ValueError(
                f"ticket is for {ticket.count} items, got {len(items)}"
            )
        if ticket.count == 0:
            return
        self._ring_write(ticket.index, items)
        # threadfence(), then set each slot's flag to READY (the ring
        # region is at most two contiguous segments — slice fills).
        self._flag_fill(ticket.index, ticket.count, True)
        self.stats.pushes += 1
        self.stats.items_pushed += ticket.count

    def _flag_fill(self, index: int, count: int, value: bool) -> None:
        pos = index % self.capacity
        head_len = min(count, self.capacity - pos)
        self.flags[pos:pos + head_len] = value
        if head_len < count:
            self.flags[:count - head_len] = value

    def pop(self, max_items: int) -> np.ndarray:
        if max_items < 0:
            raise ValueError("max_items must be non-negative")
        bound = min(max_items, self.tail - self.head)
        take = self._ready_run(bound)
        if take < bound:
            # The walk stopped on an unready slot: one wasted poll,
            # exactly as the per-item loop charged it.
            self.failed_polls += 1
        if take == 0:
            self.stats.empty_failures += 1
            return np.empty(0, dtype=self.storage.dtype)
        out = self._ring_read(self.head, take)
        self._flag_fill(self.head, take, False)
        self.head += take
        self.stats.pops += 1
        self.stats.items_popped += take
        return out

    def check_invariants(self) -> None:
        assert 0 <= self.head <= self.tail, "head passed tail"
        assert self.tail - self.head <= self.capacity, "overflow"
        in_queue = self.tail - self.head
        assert int(self.flags.sum()) <= in_queue, (
            "more READY flags than reserved slots"
        )
