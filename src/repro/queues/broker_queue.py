"""Flag-based concurrent queue in the style of the broker queue.

Kerbl et al.'s broker queue (and Troendle et al.'s design) wrap every
queue slot in a (value, flag) tuple.  A push (1) reserves a slot with a
ticket counter, (2) writes the value, (3) fences, then (4) sets the
slot's flag to READY.  A pop must observe a READY flag before it can
take the item, and clears the flag afterwards.

Functional consequence vs. the Atos counter queue: poppability is
tracked *per item*, so a pop can proceed past a gap only up to the
first unset flag it polls — and every poll of an unready slot is a
wasted memory transaction.  Cost consequences (extra flag word per
item, per-item flag polling instead of one ``end`` broadcast) are
charged in :mod:`repro.queues.contention`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import QueueFullError
from repro.queues.base import ConcurrentQueue, Ticket

__all__ = ["BrokerQueue"]


class BrokerQueue(ConcurrentQueue):
    """Per-item-flag FIFO (functional model)."""

    def __init__(self, capacity: int, dtype=np.int64):
        super().__init__(capacity, dtype)
        self.flags = np.zeros(capacity, dtype=bool)
        self.head = 0  # pop ticket counter
        self.tail = 0  # push ticket counter
        #: Number of flag words polled that turned out unready — the
        #: wasted-bandwidth metric the paper's design avoids.
        self.failed_polls = 0

    @property
    def readable(self) -> int:
        """Contiguous READY prefix starting at head."""
        count = 0
        while (
            count < self.tail - self.head
            and self.flags[(self.head + count) % self.capacity]
        ):
            count += 1
        return count

    @property
    def pending(self) -> int:
        return (self.tail - self.head) - self.readable

    def reserve(self, count: int) -> Ticket:
        if count < 0:
            raise ValueError("count must be non-negative")
        if self.tail + count - self.head > self.capacity:
            self.stats.full_failures += 1
            raise QueueFullError(
                f"reserve({count}): {self.tail - self.head} of "
                f"{self.capacity} slots in use"
            )
        ticket = Ticket(index=self.tail, count=count)
        self.tail += count
        return ticket

    def commit(self, ticket: Ticket, items: Sequence | np.ndarray) -> None:
        items = np.asarray(items, dtype=self.storage.dtype)
        if len(items) != ticket.count:
            raise ValueError(
                f"ticket is for {ticket.count} items, got {len(items)}"
            )
        if ticket.count == 0:
            return
        self._ring_write(ticket.index, items)
        # threadfence(), then set each slot's flag to READY.
        pos = np.arange(ticket.index, ticket.index + ticket.count) % self.capacity
        self.flags[pos] = True
        self.stats.pushes += 1
        self.stats.items_pushed += ticket.count

    def pop(self, max_items: int) -> np.ndarray:
        if max_items < 0:
            raise ValueError("max_items must be non-negative")
        take = 0
        while take < max_items and self.head + take < self.tail:
            if not self.flags[(self.head + take) % self.capacity]:
                self.failed_polls += 1
                break
            take += 1
        if take == 0:
            self.stats.empty_failures += 1
            return np.empty(0, dtype=self.storage.dtype)
        out = self._ring_read(self.head, take)
        pos = np.arange(self.head, self.head + take) % self.capacity
        self.flags[pos] = False
        self.head += take
        self.stats.pops += 1
        self.stats.items_popped += take
        return out

    def check_invariants(self) -> None:
        assert 0 <= self.head <= self.tail, "head passed tail"
        assert self.tail - self.head <= self.capacity, "overflow"
        in_queue = self.tail - self.head
        assert int(self.flags.sum()) <= in_queue, (
            "more READY flags than reserved slots"
        )
