"""Concurrent GPU queue models: the Atos counter queue and baselines."""

from repro.queues.atos_queue import AtosQueue
from repro.queues.base import ConcurrentQueue, QueueStats, Ticket
from repro.queues.broker_queue import BrokerQueue
from repro.queues.cas_queue import CASQueue
from repro.queues.contention import WORKER_SIZES, QueueContentionModel
from repro.queues.priority import BucketedPriorityQueue

__all__ = [
    "ConcurrentQueue",
    "Ticket",
    "QueueStats",
    "AtosQueue",
    "BrokerQueue",
    "CASQueue",
    "BucketedPriorityQueue",
    "QueueContentionModel",
    "WORKER_SIZES",
]
