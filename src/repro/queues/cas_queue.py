"""CAS-based concurrent queue (the paper's own comparison baseline).

Classic GPU work-queue designs (Cederman & Tsigas; Tzeng et al.)
publish items by advancing the ``end`` cursor with an
``atomicCAS(end, old, old+count)`` loop: a pusher can only publish
once every *earlier* reservation has published, retrying its CAS until
the cursor reaches its own reservation index.

Functionally this yields in-order publication — observable as: a
commit for a reservation whose predecessors have not all committed yet
*stalls* (we queue it internally until its turn; the external effect is
identical to the GPU thread spinning on CAS failure).  The cost model
charges those retries, whose count grows with contention — the reason
the paper's atomicAdd design wins under load (Figure 1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import QueueFullError
from repro.queues.base import ConcurrentQueue, Ticket

__all__ = ["CASQueue"]


class CASQueue(ConcurrentQueue):
    """In-order CAS-published FIFO (functional model)."""

    def __init__(self, capacity: int, dtype=np.int64):
        super().__init__(capacity, dtype)
        self.start = 0
        self.end = 0  # publication cursor: advanced in reservation order
        self.end_alloc = 0
        #: Commits waiting for their turn, keyed by reservation index.
        self._stalled: dict[int, int] = {}
        #: Total simulated CAS failures (each stalled commit retries).
        self.cas_failures = 0

    @property
    def readable(self) -> int:
        return self.end - self.start

    @property
    def pending(self) -> int:
        return self.end_alloc - self.end

    @property
    def free_slots(self) -> int:
        return self.capacity - (self.end_alloc - self.start)

    def reserve(self, count: int) -> Ticket:
        if count < 0:
            raise ValueError("count must be non-negative")
        if self.end_alloc + count - self.start > self.capacity:
            self.stats.full_failures += 1
            raise QueueFullError(
                f"reserve({count}): {self.end_alloc - self.start} of "
                f"{self.capacity} slots in use"
            )
        ticket = Ticket(index=self.end_alloc, count=count)
        self.end_alloc += count
        return ticket

    def commit(self, ticket: Ticket, items: Sequence | np.ndarray) -> None:
        items = np.asarray(items, dtype=self.storage.dtype)
        if len(items) != ticket.count:
            raise ValueError(
                f"ticket is for {ticket.count} items, got {len(items)}"
            )
        if ticket.count == 0:
            return
        self._ring_write(ticket.index, items)
        self.stats.pushes += 1
        self.stats.items_pushed += ticket.count
        if ticket.index != self.end:
            # CAS(end, ticket.index, ...) fails until predecessors land.
            self.cas_failures += 1
            self._stalled[ticket.index] = ticket.count
            return
        self.end += ticket.count
        # Drain any successors that were spinning behind us.
        while self.end in self._stalled:
            self.end += self._stalled.pop(self.end)

    def pop(self, max_items: int) -> np.ndarray:
        if max_items < 0:
            raise ValueError("max_items must be non-negative")
        take = min(max_items, self.end - self.start)
        if take == 0:
            self.stats.empty_failures += 1
            return np.empty(0, dtype=self.storage.dtype)
        out = self._ring_read(self.start, take)
        self.start += take
        self.stats.pops += 1
        self.stats.items_popped += take
        return out

    def check_invariants(self) -> None:
        assert 0 <= self.start <= self.end <= self.end_alloc, "cursor order"
        assert self.end_alloc - self.start <= self.capacity, "overflow"
        assert all(idx >= self.end for idx in self._stalled), (
            "stalled commit below publication cursor"
        )
