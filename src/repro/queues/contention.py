"""Contention timing model for the queue microbenchmarks (Figure 1).

The paper benchmarks concurrent push / pop / pop-and-push with *n*
threads each performing 10 operations, comparing the Atos counter
queue (warp and CTA worker APIs) against the broker queue and an
atomicCAS queue.  We reproduce those curves from an atomic-operation
cost model rather than wall-clock Python time (Python cannot exhibit
GPU atomic contention).

Model ingredients, per queue design:

* **Atos queue** — each worker (warp=32 or CTA=512 threads) aggregates
  its requests and only the leader issues atomics, so the serialized
  atomic stream is ``ops * n / worker_size`` long.  The five counters
  live in distinct cache lines (padded), so the three atomics per push
  pipeline rather than serialize.  Pop needs a single ``end``
  broadcast, not per-item polling.
* **CAS queue** — same warp aggregation (our implementation "leverages
  warp intrinsics to avoid inter-warp contention"), but publication
  retries on CAS failure; the failure probability grows with the
  number of concurrently contending workers, adding a contention-
  dependent multiplier.
* **Broker queue** — per-*item* tickets and flags: the serialized
  atomic stream is per item (hardware same-address combining gives
  warp-level relief, modeled as a constant), plus a flag write + fence
  per item on push and a flag poll per item on pop.

Constants are calibrated to land in the magnitude range of Figure 1
(tens of microseconds at n = 10^5) — shapes and ordering are the
reproduction target; the module docstring of each bench states this.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QueueContentionModel", "WORKER_SIZES"]

WORKER_SIZES = {"warp": 32, "cta": 512}

#: Serialized conflicting atomic on one cache line (us) — ~1.2 ns.
T_ATOMIC = 0.0012
#: Fixed cost: kernel launch + queue-state initialization (us).
T_BASE = 20.0
#: Broker queue per-item overhead multiplier over the aggregated
#: atomic cost (ticket + flag set + threadfence per item, with
#: hardware same-address combining assumed at warp granularity).
BROKER_PUSH_FACTOR = 2.5
#: Broker pop flag-poll cost per item (us) — one extra memory
#: transaction per item that the Atos `end` broadcast avoids.
T_FLAG_POLL = 0.00016
#: CAS retry growth coefficient.  A failed CAS forces the whole worker
#: to re-read and retry, so the wasted work per failure scales with the
#: worker's width; the failure probability itself grows with how many
#: workers contend concurrently (log-dampened: the L2 serializes the
#: winners, spreading out the losers' retries).  Multiplier:
#: ``1 + C * (worker/32) * log2(1 + resident_workers)``.
CAS_RETRY_COEFF = 0.35
#: Max threads concurrently resident on the modeled GPU.
MAX_RESIDENT_THREADS = 163840


@dataclass(frozen=True)
class QueueContentionModel:
    """Figure 1 timing model; all times in microseconds."""

    t_atomic: float = T_ATOMIC
    t_base: float = T_BASE

    # ------------------------------------------------------------ helpers
    def _groups(self, n_threads: int, worker_size: int, ops: int) -> float:
        if n_threads < 1 or ops < 1:
            raise ValueError("n_threads and ops must be positive")
        return ops * n_threads / worker_size

    def _resident_groups(self, n_threads: int, worker_size: int) -> float:
        return min(n_threads, MAX_RESIDENT_THREADS) / worker_size

    def _cas_multiplier(self, n_threads: int, worker_size: int) -> float:
        resident = self._resident_groups(n_threads, worker_size)
        width_factor = worker_size / 32.0
        return 1.0 + CAS_RETRY_COEFF * width_factor * np.log2(1.0 + resident)

    # ------------------------------------------------------------- atos
    def atos_push(self, n_threads: int, worker: str, ops: int = 10) -> float:
        groups = self._groups(n_threads, WORKER_SIZES[worker], ops)
        # Three atomics per push, each on its own padded line: they
        # pipeline, so the serialized stream is one atomic per group.
        return self.t_base + groups * self.t_atomic

    def atos_pop(self, n_threads: int, worker: str, ops: int = 10) -> float:
        groups = self._groups(n_threads, WORKER_SIZES[worker], ops)
        # One `end` broadcast (amortized, free) + one start atomicAdd.
        return self.t_base + groups * self.t_atomic

    def atos_pop_push(self, n_threads: int, worker: str, ops: int = 10) -> float:
        # Unsynchronized push-then-pop: streams on start and end_alloc
        # lines interleave; mild interference factor.
        return (
            self.t_base
            + (self.atos_push(n_threads, worker, ops) - self.t_base) * 1.1
            + (self.atos_pop(n_threads, worker, ops) - self.t_base) * 1.1
        )

    # -------------------------------------------------------------- cas
    def cas_push(self, n_threads: int, worker: str, ops: int = 10) -> float:
        size = WORKER_SIZES[worker]
        groups = self._groups(n_threads, size, ops)
        return self.t_base + groups * self.t_atomic * self._cas_multiplier(
            n_threads, size
        )

    def cas_pop(self, n_threads: int, worker: str, ops: int = 10) -> float:
        return self.cas_push(n_threads, worker, ops)

    def cas_pop_push(self, n_threads: int, worker: str, ops: int = 10) -> float:
        return (
            self.t_base
            + 1.1
            * 2.0
            * (self.cas_push(n_threads, worker, ops) - self.t_base)
        )

    # ------------------------------------------------------------ broker
    def broker_push(self, n_threads: int, ops: int = 10) -> float:
        # Per-item tickets with hardware warp combining + per-item flag
        # write and fence.
        per_warp = self._groups(n_threads, 32, ops)
        return self.t_base + per_warp * self.t_atomic * BROKER_PUSH_FACTOR

    def broker_pop(self, n_threads: int, ops: int = 10) -> float:
        per_warp = self._groups(n_threads, 32, ops)
        items = n_threads * ops
        return (
            self.t_base
            + per_warp * self.t_atomic * BROKER_PUSH_FACTOR
            + items * T_FLAG_POLL
        )

    def broker_pop_push(self, n_threads: int, ops: int = 10) -> float:
        return (
            self.t_base
            + 1.1 * (self.broker_push(n_threads, ops) - self.t_base)
            + 1.1 * (self.broker_pop(n_threads, ops) - self.t_base)
        )

    # ---------------------------------------------------------- figure 1
    def figure1_series(
        self, thread_counts: np.ndarray, ops: int = 10
    ) -> dict[str, dict[str, np.ndarray]]:
        """All 15 curves of Figure 1 (3 plots × 5 queue variants), in ms."""
        counts = np.asarray(thread_counts)
        us_to_ms = 1e-3

        def series(fn, *args) -> np.ndarray:
            return np.array([fn(int(n), *args, ops) for n in counts]) * us_to_ms

        return {
            "push": {
                "our queue(warp)": series(self.atos_push, "warp"),
                "our queue(cta)": series(self.atos_push, "cta"),
                "Broker queue": series(self.broker_push),
                "CAS queue(warp)": series(self.cas_push, "warp"),
                "CAS queue(cta)": series(self.cas_push, "cta"),
            },
            "pop": {
                "our queue(warp)": series(self.atos_pop, "warp"),
                "our queue(cta)": series(self.atos_pop, "cta"),
                "Broker queue": series(self.broker_pop),
                "CAS queue(warp)": series(self.cas_pop, "warp"),
                "CAS queue(cta)": series(self.cas_pop, "cta"),
            },
            "pop_and_push": {
                "our queue(warp)": series(self.atos_pop_push, "warp"),
                "our queue(cta)": series(self.atos_pop_push, "cta"),
                "Broker queue": series(self.broker_pop_push),
                "CAS queue(warp)": series(self.cas_pop_push, "warp"),
                "CAS queue(cta)": series(self.cas_pop_push, "cta"),
            },
        }
