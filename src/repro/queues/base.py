"""Common interface for the concurrent GPU queue models.

Real Atos queues are operated concurrently by thousands of GPU threads;
functionally what matters (and what the paper's Listing 6 protocol
guarantees) is *when pushed items become poppable*.  We model this with
an explicit two-phase push:

* ``reserve(k)`` — a worker atomically reserves ``k`` slots
  (``atomicAdd(end_alloc)`` in the paper) and receives a ticket;
* ``commit(ticket, items)`` — the worker finishes writing its items
  and publishes them (the ``end_max`` / ``end_count`` / ``end`` dance).

Interleaving reserve/commit calls from different logical workers
reproduces every consistency-relevant state of the concurrent queue,
which is what the property-based tests exercise.  ``push`` is the
common reserve-then-commit convenience, and ``push_batch`` is its wide
form: one reserve/commit pair covering a whole sequence of payloads,
with the ring written by slice assignment instead of per-item ticket
bookkeeping.  ``push_batch`` is observably equivalent to pushing each
payload in order (same poppable contents, same gap exposure, same
``QueueFullError`` point) — the batch-equivalence property suite pins
this for all three queue models.

Performance (contention) is modeled separately in
:mod:`repro.queues.contention`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import QueueFullError

__all__ = ["Ticket", "ConcurrentQueue", "QueueStats"]


@dataclass(frozen=True, slots=True)
class Ticket:
    """A slot reservation: ``count`` slots starting at virtual ``index``."""

    index: int
    count: int


@dataclass(slots=True)
class QueueStats:
    """Operation counters (feed the contention cost model)."""

    pushes: int = 0
    pops: int = 0
    items_pushed: int = 0
    items_popped: int = 0
    full_failures: int = 0
    empty_failures: int = 0


class ConcurrentQueue:
    """Abstract FIFO with two-phase push. Subclasses define publication."""

    def __init__(self, capacity: int, dtype=np.int64):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.storage = np.zeros(self.capacity, dtype=dtype)
        self.stats = QueueStats()

    # -- state queries (subclass responsibility) -------------------------
    @property
    def readable(self) -> int:
        """Number of items currently poppable."""
        raise NotImplementedError

    @property
    def pending(self) -> int:
        """Items reserved but not yet poppable (in-flight writes)."""
        raise NotImplementedError

    @property
    def free_slots(self) -> int:
        """Ring slots not covered by any live reservation."""
        raise NotImplementedError

    def __len__(self) -> int:
        return self.readable

    @property
    def empty(self) -> bool:
        return self.readable == 0

    # -- two-phase push ---------------------------------------------------
    def reserve(self, count: int) -> Ticket:
        raise NotImplementedError

    def commit(self, ticket: Ticket, items: Sequence | np.ndarray) -> None:
        raise NotImplementedError

    def push(self, items: Sequence | np.ndarray) -> Ticket:
        """reserve + commit in one step (a worker that runs to completion)."""
        items = np.asarray(items)
        ticket = self.reserve(len(items))
        self.commit(ticket, items)
        return ticket

    def push_batch(
        self, batches: Sequence[Sequence | np.ndarray]
    ) -> Optional[Ticket]:
        """Push a sequence of payloads with ONE reserve/commit pair.

        Equivalent to ``for b in batches: self.push(b)`` as observed
        through pops: items land contiguously in batch order, and if
        the ring cannot hold every payload, the longest prefix that
        fits is committed before :class:`~repro.errors.QueueFullError`
        is raised — exactly where the per-payload loop would have
        raised.  Operation *counters* record one wide operation (one
        push, one potential full-failure) rather than one per payload;
        that reduction in protocol steps is the point of the batch API.

        Returns the spanning ticket (``None`` for an empty batch).
        """
        arrays = [
            np.asarray(b, dtype=self.storage.dtype) for b in batches
        ]
        if not arrays:
            return None
        lengths = np.fromiter(
            (len(a) for a in arrays), dtype=np.int64, count=len(arrays)
        )
        total = int(lengths.sum())
        free = self.free_slots
        if total <= free:
            n_fit = len(arrays)
        else:
            # Longest payload prefix that fits — the per-payload loop
            # would commit exactly these before its first failed
            # reserve.
            n_fit = int(
                np.searchsorted(np.cumsum(lengths), free, side="right")
            )
        ticket: Optional[Ticket] = None
        if n_fit:
            flat = (
                arrays[0]
                if n_fit == 1
                else np.concatenate(arrays[:n_fit])
            )
            ticket = self.reserve(len(flat))
            self.commit(ticket, flat)
        if n_fit < len(arrays):
            self.stats.full_failures += 1
            raise QueueFullError(
                f"push_batch: payload {n_fit} of {len(arrays)} "
                f"({int(lengths[n_fit])} items) does not fit "
                f"({self.capacity - self.free_slots} of "
                f"{self.capacity} slots in use)"
            )
        return ticket

    # -- pop ---------------------------------------------------------------
    def pop(self, max_items: int) -> np.ndarray:
        """Pop up to ``max_items`` committed items in FIFO order."""
        raise NotImplementedError

    # -- helpers ------------------------------------------------------------
    # Ring access is slice-based (at most two contiguous segments per
    # operation) instead of the old ``np.arange % capacity`` fancy
    # indexing: no per-item index array is allocated, which is what
    # makes wide pushes/pops allocation-light.  A reservation can never
    # exceed ``capacity`` (``reserve`` checks), so two segments always
    # suffice.
    def _ring_write(self, index: int, items: np.ndarray) -> None:
        """Write items at virtual position ``index`` into the ring."""
        n = len(items)
        pos = index % self.capacity
        head = min(n, self.capacity - pos)
        self.storage[pos:pos + head] = items[:head]
        if head < n:
            self.storage[:n - head] = items[head:]

    def _ring_read(self, index: int, count: int) -> np.ndarray:
        pos = index % self.capacity
        head = min(count, self.capacity - pos)
        if head == count:
            return self.storage[pos:pos + count].copy()
        return np.concatenate(
            (self.storage[pos:], self.storage[:count - head])
        )
