"""Common interface for the concurrent GPU queue models.

Real Atos queues are operated concurrently by thousands of GPU threads;
functionally what matters (and what the paper's Listing 6 protocol
guarantees) is *when pushed items become poppable*.  We model this with
an explicit two-phase push:

* ``reserve(k)`` — a worker atomically reserves ``k`` slots
  (``atomicAdd(end_alloc)`` in the paper) and receives a ticket;
* ``commit(ticket, items)`` — the worker finishes writing its items
  and publishes them (the ``end_max`` / ``end_count`` / ``end`` dance).

Interleaving reserve/commit calls from different logical workers
reproduces every consistency-relevant state of the concurrent queue,
which is what the property-based tests exercise.  ``push`` is the
common reserve-then-commit convenience.

Performance (contention) is modeled separately in
:mod:`repro.queues.contention`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Ticket", "ConcurrentQueue", "QueueStats"]


@dataclass(frozen=True, slots=True)
class Ticket:
    """A slot reservation: ``count`` slots starting at virtual ``index``."""

    index: int
    count: int


@dataclass(slots=True)
class QueueStats:
    """Operation counters (feed the contention cost model)."""

    pushes: int = 0
    pops: int = 0
    items_pushed: int = 0
    items_popped: int = 0
    full_failures: int = 0
    empty_failures: int = 0


class ConcurrentQueue:
    """Abstract FIFO with two-phase push. Subclasses define publication."""

    def __init__(self, capacity: int, dtype=np.int64):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.storage = np.zeros(self.capacity, dtype=dtype)
        self.stats = QueueStats()

    # -- state queries (subclass responsibility) -------------------------
    @property
    def readable(self) -> int:
        """Number of items currently poppable."""
        raise NotImplementedError

    @property
    def pending(self) -> int:
        """Items reserved but not yet poppable (in-flight writes)."""
        raise NotImplementedError

    def __len__(self) -> int:
        return self.readable

    @property
    def empty(self) -> bool:
        return self.readable == 0

    # -- two-phase push ---------------------------------------------------
    def reserve(self, count: int) -> Ticket:
        raise NotImplementedError

    def commit(self, ticket: Ticket, items: Sequence | np.ndarray) -> None:
        raise NotImplementedError

    def push(self, items: Sequence | np.ndarray) -> Ticket:
        """reserve + commit in one step (a worker that runs to completion)."""
        items = np.asarray(items)
        ticket = self.reserve(len(items))
        self.commit(ticket, items)
        return ticket

    # -- pop ---------------------------------------------------------------
    def pop(self, max_items: int) -> np.ndarray:
        """Pop up to ``max_items`` committed items in FIFO order."""
        raise NotImplementedError

    # -- helpers ------------------------------------------------------------
    def _ring_write(self, index: int, items: np.ndarray) -> None:
        """Write items at virtual position ``index`` into the ring."""
        pos = np.arange(index, index + len(items)) % self.capacity
        self.storage[pos] = items

    def _ring_read(self, index: int, count: int) -> np.ndarray:
        pos = np.arange(index, index + count) % self.capacity
        return self.storage[pos].copy()
