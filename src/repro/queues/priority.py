"""Bucketed priority queue (the Atos distributed priority queue).

The paper's ``DistributedPriorityQueues`` prioritize tasks below a
moving ``threshold``: workers pop only tasks whose priority (for BFS,
the depth) is under the threshold; when no such task exists, the
threshold is raised by ``threshold_delta``.  This is a delta-stepping-
style bucket structure, and its effect — measured in Table III — is to
process low-depth vertices first, cutting the redundant re-visits that
asynchronous speculation otherwise causes.

Items are (priority, value) pairs; buckets are Atos counter queues, one
per priority band of width ``threshold_delta``.
"""

from __future__ import annotations

import numpy as np

from repro.queues.atos_queue import AtosQueue

__all__ = ["BucketedPriorityQueue"]


class BucketedPriorityQueue:
    """Priority buckets of width ``threshold_delta`` over AtosQueues."""

    def __init__(
        self,
        capacity_per_bucket: int,
        threshold: float = 1.0,
        threshold_delta: float = 1.0,
        dtype=np.int64,
    ):
        if threshold_delta <= 0:
            raise ValueError("threshold_delta must be positive")
        self.capacity_per_bucket = int(capacity_per_bucket)
        self.threshold = float(threshold)
        self.threshold_delta = float(threshold_delta)
        self.dtype = dtype
        self._buckets: dict[int, AtosQueue] = {}
        #: How many times workers had to raise the threshold.
        self.threshold_raises = 0

    def _bucket_of(self, priority: float) -> int:
        return int(priority // self.threshold_delta)

    def _bucket(self, key: int) -> AtosQueue:
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = AtosQueue(self.capacity_per_bucket, dtype=self.dtype)
            self._buckets[key] = bucket
        return bucket

    # ------------------------------------------------------------- push
    def push(self, priorities: np.ndarray, values: np.ndarray) -> None:
        """Insert (priority, value) pairs, vectorized by bucket."""
        priorities = np.asarray(priorities)
        values = np.asarray(values, dtype=self.dtype)
        if priorities.shape != values.shape:
            raise ValueError("priorities and values must match in shape")
        if len(values) == 0:
            return
        keys = (priorities // self.threshold_delta).astype(np.int64)
        for key in np.unique(keys):
            self._bucket(int(key)).push(values[keys == key])

    # -------------------------------------------------------------- pop
    def pop(self, max_items: int) -> np.ndarray:
        """Pop up to ``max_items`` from buckets below the threshold.

        If no eligible bucket holds items but the structure is
        non-empty, the threshold is raised (by whole deltas) until the
        lowest non-empty bucket becomes eligible — mirroring the
        cooperative threshold bump in the paper's design.
        """
        if max_items < 0:
            raise ValueError("max_items must be non-negative")
        out: list[np.ndarray] = []
        remaining = max_items
        while remaining > 0:
            key = self._lowest_nonempty()
            if key is None:
                break
            if (key + 1) * self.threshold_delta > self.threshold:
                # Bucket is above the current threshold: raise it.
                self.threshold = (key + 1) * self.threshold_delta
                self.threshold_raises += 1
            got = self._buckets[key].pop(remaining)
            if len(got) == 0:
                break
            out.append(got)
            remaining -= len(got)
        if not out:
            return np.empty(0, dtype=self.dtype)
        return np.concatenate(out)

    def pop_bucket(self, key: int) -> np.ndarray:
        """Drain one bucket entirely (delta-stepping discrete rounds)."""
        bucket = self._buckets.get(key)
        if bucket is None or bucket.readable == 0:
            return np.empty(0, dtype=self.dtype)
        eligible_end = (key + 1) * self.threshold_delta
        if eligible_end > self.threshold:
            self.threshold = eligible_end
            self.threshold_raises += 1
        return bucket.pop(bucket.readable)

    def snapshot(self) -> tuple[np.ndarray, np.ndarray]:
        """Non-destructive (priorities, values) copy of every bucket.

        Exact priorities are not stored inside a bucket (pushing
        quantizes them to the band), so each item comes back with its
        band's *representative* priority — the band midpoint — which
        re-inserts into the same bucket.  Buckets are visited in key
        order, so the snapshot is deterministic.
        """
        priorities: list[np.ndarray] = []
        values: list[np.ndarray] = []
        for key in sorted(self._buckets):
            items = self._buckets[key].snapshot()
            if len(items) == 0:
                continue
            representative = (key + 0.5) * self.threshold_delta
            priorities.append(np.full(len(items), representative))
            values.append(items)
        if not values:
            return np.empty(0), np.empty(0, dtype=self.dtype)
        return np.concatenate(priorities), np.concatenate(values)

    def _lowest_nonempty(self) -> int | None:
        live = [k for k, b in self._buckets.items() if b.readable > 0]
        return min(live) if live else None

    # ------------------------------------------------------------ state
    @property
    def readable(self) -> int:
        return sum(b.readable for b in self._buckets.values())

    def __len__(self) -> int:
        return self.readable

    @property
    def empty(self) -> bool:
        return self.readable == 0
