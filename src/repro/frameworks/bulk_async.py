"""Galois/Gluon-like bulk-asynchronous driver (the IB comparison).

D-Galois runs rounds: each GPU computes on its local partition, then
the Gluon communication substrate performs a *bulk* synchronization of
boundary state — host-orchestrated, with per-round bookkeeping
(bitvector construction, MPI message setup, reduction/broadcast
phases) that dominates on high-diameter graphs.  BFS uses direction
optimization (which is why Galois's single-GPU twitter time beats
push-only BFS in Table V), PageRank a bulk-asynchronous residual
sweep.

Cost per round = max-PE compute + Gluon sync:

* fixed host orchestration (``GLUON_ROUND_HOST_US``), paid per round
  even single-GPU (D-IrGL's round machinery runs regardless) —
  consistent with Galois's high 1-GPU mesh BFS times in Table V,
* per-peer message setup scaling with participating PEs,
* bulk transfer of the boundary updates over the slowest link.

The algorithm is executed exactly (trace-based), so outputs validate.
"""

from __future__ import annotations

import numpy as np

from repro.config import MachineConfig
from repro.gpu.memory import MemoryModel
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition
from repro.metrics.counters import Counters, RunResult
from repro.apps.bfs_variants import direction_optimized_bfs_trace
from repro.apps.pagerank_variants import bsp_pagerank_trace
from repro.frameworks.base import FrameworkDriver, bulk_exchange_time

__all__ = ["GaloisLikeDriver", "GLUON_ROUND_HOST_US", "GLUON_PER_PEER_US"]

#: Host-side Gluon round orchestration (us): bitvector extraction,
#: serialization setup, MPI progress.  Calibrated against Table V's
#: single-GPU Galois mesh BFS runtimes (~100x Atos on road graphs).
GLUON_ROUND_HOST_US = 60.0
#: Additional per-communication-peer setup cost per round (us).
GLUON_PER_PEER_US = 40.0


class GaloisLikeDriver(FrameworkDriver):
    """Bulk-asynchronous rounds with Gluon-style synchronization."""

    name = "galois"

    def _round_time(
        self,
        machine: MachineConfig,
        memory: MemoryModel,
        edges_per_pe: np.ndarray,
        items_per_pe: np.ndarray,
        remote_updates: np.ndarray,
    ) -> float:
        cost = machine.cost
        compute = max(
            memory.edge_batch_time(int(e)) + memory.queue_ops_time(int(f))
            for e, f in zip(edges_per_pe, items_per_pe)
        )
        time = (
            cost.kernel_launch_overhead
            + compute
            + cost.cpu_sync_overhead
            + GLUON_ROUND_HOST_US
        )
        if machine.n_gpus > 1:
            peers = machine.n_gpus - 1
            time += GLUON_PER_PEER_US * peers
            if remote_updates.sum() > 0:
                ib_overhead = (
                    cost.ib_message_overhead if machine.inter_node else 0.0
                )
                time += bulk_exchange_time(
                    machine,
                    remote_updates,
                    cost.bytes_per_remote_update,
                    cost.cpu_control_path_latency,
                    ib_overhead,
                )
        return time

    def run_bfs(
        self,
        graph: CSRGraph,
        partition: Partition,
        source: int,
        machine: MachineConfig,
        dataset: str = "",
    ) -> RunResult:
        trace = direction_optimized_bfs_trace(graph, partition, source)
        memory = MemoryModel(machine.gpu, machine.cost)
        total = sum(
            self._round_time(
                machine,
                memory,
                level.edges_per_pe,
                level.frontier_per_pe,
                level.remote_updates,
            )
            for level in trace.levels
        )
        counters = Counters()
        counters["levels"] = trace.n_levels
        counters["pull_levels"] = sum(
            1 for t in trace.levels if t.direction == "pull"
        )
        counters["edges_processed"] = trace.total_edges()
        return RunResult(
            framework=self.name,
            app="bfs",
            dataset=dataset,
            n_gpus=machine.n_gpus,
            time_ms=total / 1000.0,
            counters=counters,
            output=trace.depth,
        )

    def run_pagerank(
        self,
        graph: CSRGraph,
        partition: Partition,
        machine: MachineConfig,
        alpha: float = 0.85,
        epsilon: float = 1e-4,
        dataset: str = "",
    ) -> RunResult:
        trace = bsp_pagerank_trace(graph, partition, alpha, epsilon)
        memory = MemoryModel(machine.gpu, machine.cost)
        total = 0.0
        for it in trace.iterations:
            # Gluon syncs the full boundary set each round for PR
            # (reduce+broadcast over memoized boundary vertices).
            remote = (
                trace.static_boundary
                if trace.static_boundary is not None
                else it.remote_updates
            )
            total += self._round_time(
                machine,
                memory,
                it.edges_per_pe,
                it.active_per_pe,
                remote,
            )
        counters = Counters()
        counters["iterations"] = trace.n_iterations
        counters["edges_processed"] = trace.total_edges()
        return RunResult(
            framework=self.name,
            app="pagerank",
            dataset=dataset,
            n_gpus=machine.n_gpus,
            time_ms=total / 1000.0,
            counters=counters,
            output=trace.rank,
        )
