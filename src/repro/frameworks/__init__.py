"""Framework drivers: Atos and the three baselines it is compared to."""

from repro.frameworks.atos import AtosDriver
from repro.frameworks.async_cpu import GrouteLikeDriver
from repro.frameworks.base import FrameworkDriver, bulk_exchange_time
from repro.frameworks.bsp import GunrockLikeDriver
from repro.frameworks.bulk_async import GaloisLikeDriver

__all__ = [
    "FrameworkDriver",
    "bulk_exchange_time",
    "AtosDriver",
    "GunrockLikeDriver",
    "GrouteLikeDriver",
    "GaloisLikeDriver",
]
