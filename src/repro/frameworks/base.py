"""Common driver interface for all frameworks under evaluation.

A driver turns (graph, partition, machine) into a validated
:class:`~repro.metrics.counters.RunResult`.  The four drivers mirror
the paper's comparison set:

* ``atos`` — the contribution (DES execution of the real async apps).
* ``gunrock`` — BSP, CPU control path (analytic cost over BSP traces).
* ``groute`` — asynchronous, CPU control path, kernel-segment comms
  (DES execution with the control-path knobs flipped).
* ``galois`` — bulk-asynchronous Gluon-style rounds, direction-
  optimized BFS (analytic cost over DO traces).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.config import MachineConfig
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition
from repro.metrics.counters import RunResult

__all__ = ["FrameworkDriver", "bulk_exchange_time"]


class FrameworkDriver(ABC):
    """One framework's way of running the two applications."""

    name: str = "framework"

    @abstractmethod
    def run_bfs(
        self,
        graph: CSRGraph,
        partition: Partition,
        source: int,
        machine: MachineConfig,
        dataset: str = "",
    ) -> RunResult:
        ...

    @abstractmethod
    def run_pagerank(
        self,
        graph: CSRGraph,
        partition: Partition,
        machine: MachineConfig,
        alpha: float = 0.85,
        epsilon: float = 1e-4,
        dataset: str = "",
    ) -> RunResult:
        ...


def bulk_exchange_time(
    machine: MachineConfig,
    update_matrix: np.ndarray,
    bytes_per_update: int,
    control_latency: float,
    per_message_overhead: float = 0.0,
) -> float:
    """Time for one BSP all-pairs boundary exchange (us).

    Every PE pair's bulk message moves concurrently on its own link;
    the phase completes when the slowest transfer lands.  Each active
    pair pays the control-path latency (CPU-mediated for the baseline
    frameworks) plus optional per-message overhead (IB NIC cost).
    """
    n = machine.n_gpus
    worst = 0.0
    for i in range(n):
        for j in range(n):
            if i == j or update_matrix[i, j] == 0:
                continue
            spec = machine.link(i, j)
            n_bytes = int(update_matrix[i, j]) * bytes_per_update
            t = (
                spec.latency
                + control_latency
                + per_message_overhead
                + n_bytes / spec.bandwidth
            )
            worst = max(worst, t)
    return worst
