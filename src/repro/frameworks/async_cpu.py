"""Groute-like driver: asynchronous, but with a CPU control path.

Groute runs the same asynchronous algorithms as Atos with persistent
kernels (paper §IV-A1a: "Groute and Atos use the same algorithm ...
and kernel strategy, so these factors do not contribute to the
performance difference").  The differences the paper identifies — and
the only knobs this driver turns — are:

1. **CPU control path**: every transfer is triggered and signaled
   through the host, adding ``cpu_control_path_latency`` per send.
2. **Segment-boundary communication**: outgoing updates leave only at
   kernel-segment boundaries instead of immediately, coarsening the
   message pipeline (``segment_rounds``).

No priority queue, no aggregator (Groute is single-node/NVLink only).
"""

from __future__ import annotations

from repro.frameworks.atos import AtosDriver
from repro.gpu.kernel import KernelStrategy
from repro.runtime.executor import AtosConfig

__all__ = ["GrouteLikeDriver", "GROUTE_SEGMENT_ROUNDS"]

#: Rounds per kernel segment: Groute pipelines its input in a handful
#: of chunks per iteration, so updates wait several scheduling rounds.
GROUTE_SEGMENT_ROUNDS = 4
#: Host-side router/link coordination per scheduling round (us): the
#: Groute runtime's soft-RR scheduler and distributed worklist router
#: run on the CPU and signal the GPU between segments, a cost Atos's
#: GPU-resident scheduling avoids even at one GPU (Table II shows
#: Groute ~3x slower than Atos on single-GPU road graphs).
GROUTE_ROUND_HOST_US = 3.0


class GrouteLikeDriver(AtosDriver):
    """Async engine with host-mediated, segment-granular communication."""

    def __init__(self) -> None:
        super().__init__(
            kernel=KernelStrategy.PERSISTENT,
            priority=False,
            variant_name="groute",
            base_config=AtosConfig(
                control_path="cpu",
                segment_rounds=GROUTE_SEGMENT_ROUNDS,
                use_aggregator=False,
                round_host_overhead=GROUTE_ROUND_HOST_US,
            ),
        )
