"""Gunrock-like BSP driver.

Gunrock's multi-GPU execution (paper §IV): per BSP phase, each GPU
launches an advance kernel over its frontier slice, the host
synchronizes the stream, remote updates are exchanged in bulk, and a
merge kernel folds received updates in before the next phase.  The
communication control path runs on the CPU.

Costs per level/iteration:

* advance kernel launch + teardown sync (host-side),
* ``max_pe`` of the edge work at GPU throughput (BSP waits for the
  slowest GPU — no overlap across the phase boundary),
* bulk exchange over the slowest link, with CPU control latency,
* a merge kernel launch when anything was received.

The algorithm itself is executed exactly (BSP traces), so the result
validates against the serial reference.
"""

from __future__ import annotations

import numpy as np

from repro.config import MachineConfig
from repro.gpu.memory import MemoryModel
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition
from repro.metrics.counters import Counters, RunResult
from repro.apps.bfs_variants import bsp_bfs_trace
from repro.apps.pagerank_variants import bsp_pagerank_trace
from repro.frameworks.base import FrameworkDriver, bulk_exchange_time

__all__ = ["GunrockLikeDriver"]


class GunrockLikeDriver(FrameworkDriver):
    """BSP engine with CPU-mediated communication."""

    name = "gunrock"

    def _phase_time(
        self,
        machine: MachineConfig,
        memory: MemoryModel,
        edges_per_pe: np.ndarray,
        items_per_pe: np.ndarray,
        remote_updates: np.ndarray,
    ) -> tuple[float, float, float]:
        """(total phase time, time until comm starts, comm bytes)."""
        cost = machine.cost
        compute = max(
            memory.edge_batch_time(int(e)) + memory.queue_ops_time(int(f))
            for e, f in zip(edges_per_pe, items_per_pe)
        )
        pre_comm = (
            cost.kernel_launch_overhead
            + compute
            + cost.cpu_sync_overhead
        )
        time = pre_comm
        comm_bytes = (
            float(remote_updates.sum()) * cost.bytes_per_remote_update
        )
        if remote_updates.sum() > 0:
            ib_overhead = (
                cost.ib_message_overhead if machine.inter_node else 0.0
            )
            time += bulk_exchange_time(
                machine,
                remote_updates,
                cost.bytes_per_remote_update,
                cost.cpu_control_path_latency,
                ib_overhead,
            )
            # Merge kernel for received updates.
            time += cost.kernel_launch_overhead + cost.cpu_sync_overhead
        return time, pre_comm, comm_bytes

    def _accumulate(self, machine, memory, phases):
        """Walk phases with a time cursor, recording the communication
        timeline: all of a phase's bytes leave in one burst at the
        phase boundary — the BSP traffic pattern the paper contrasts
        with Atos's spread-out sends."""
        cursor = 0.0
        timeline: list[tuple[float, float]] = []
        for edges, items, remote in phases:
            total, pre_comm, comm_bytes = self._phase_time(
                machine, memory, edges, items, remote
            )
            if comm_bytes > 0:
                timeline.append((cursor + pre_comm, comm_bytes))
            cursor += total
        return cursor, timeline

    def run_bfs(
        self,
        graph: CSRGraph,
        partition: Partition,
        source: int,
        machine: MachineConfig,
        dataset: str = "",
    ) -> RunResult:
        trace = bsp_bfs_trace(graph, partition, source)
        memory = MemoryModel(machine.gpu, machine.cost)
        total, timeline = self._accumulate(
            machine,
            memory,
            [
                (l.edges_per_pe, l.frontier_per_pe, l.remote_updates)
                for l in trace.levels
            ],
        )
        counters = Counters()
        counters["levels"] = trace.n_levels
        counters["edges_processed"] = trace.total_edges()
        counters["remote_updates"] = int(
            sum(t.remote_updates.sum() for t in trace.levels)
        )
        return RunResult(
            framework=self.name,
            app="bfs",
            dataset=dataset,
            n_gpus=machine.n_gpus,
            time_ms=total / 1000.0,
            counters=counters,
            output=trace.depth,
            timeline=timeline,
        )

    def run_pagerank(
        self,
        graph: CSRGraph,
        partition: Partition,
        machine: MachineConfig,
        alpha: float = 0.85,
        epsilon: float = 1e-4,
        dataset: str = "",
    ) -> RunResult:
        trace = bsp_pagerank_trace(
            graph, partition, alpha, epsilon, work_model="full"
        )
        memory = MemoryModel(machine.gpu, machine.cost)
        total, timeline = self._accumulate(
            machine,
            memory,
            [
                (it.edges_per_pe, it.active_per_pe, it.remote_updates)
                for it in trace.iterations
            ],
        )
        counters = Counters()
        counters["iterations"] = trace.n_iterations
        counters["edges_processed"] = trace.total_edges()
        counters["remote_updates"] = int(
            sum(t.remote_updates.sum() for t in trace.iterations)
        )
        return RunResult(
            framework=self.name,
            app="pagerank",
            dataset=dataset,
            n_gpus=machine.n_gpus,
            time_ms=total / 1000.0,
            counters=counters,
            output=trace.rank,
            timeline=timeline,
        )
