"""The Atos driver: runs the real async applications on the executor.

Configurations match the paper's evaluated variants:

* ``standard-persistent`` — FIFO distributed queue + persistent kernel
  (best on mesh-like graphs: no launch overhead on tiny frontiers).
* ``priority-discrete`` — distributed priority queue + discrete
  kernels (best on scale-free graphs: suppresses redundant work).
* PageRank uses the standard queue with either kernel strategy.

On inter-node (IB) machines the communication aggregator engages
automatically with the paper's settings: BATCH_SIZE = 1 MiB;
WAIT_TIME = 4 for BFS (eager/latency-bound), 32 for PageRank
(batched/bandwidth-bound).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.config import MachineConfig, wait_time_for
from repro.gpu.kernel import KernelStrategy
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition
from repro.metrics.counters import RunResult
from repro.apps.bfs import AtosBFS
from repro.apps.pagerank import AtosPageRank
from repro.frameworks.base import FrameworkDriver
from repro.runtime.executor import AtosConfig, AtosExecutor

__all__ = ["AtosDriver"]


class AtosDriver(FrameworkDriver):
    """Runs BFS/PageRank through the Atos runtime."""

    name = "atos"

    def __init__(
        self,
        kernel: KernelStrategy = KernelStrategy.PERSISTENT,
        priority: bool = False,
        variant_name: str | None = None,
        base_config: AtosConfig | None = None,
        overrides: "dict[str, Any] | None" = None,
    ):
        self.kernel = kernel
        self.priority = priority
        self.base_config = base_config or AtosConfig()
        #: Knob overrides (batch_size / wait_time / fetch_size) applied
        #: *after* the per-app defaults in :meth:`_config`, so a tuner
        #: overlay wins over the analytic wait_time_for derivation.
        self.overrides = dict(overrides) if overrides else {}
        if variant_name:
            self.name = variant_name
        else:
            queue = "priority" if priority else "standard"
            self.name = f"atos-{queue}-{kernel.value}"

    def _config(self, app: str, machine: MachineConfig) -> AtosConfig:
        # BFS pops shallow batches (fetch 1) to mirror the fine-grained
        # interleaving that drives the paper's speculation numbers;
        # PageRank has abundant parallelism and uses deeper fetches.
        fetch = 1 if app == "bfs" else 8
        cfg = replace(
            self.base_config,
            kernel=self.kernel,
            priority=self.priority and app == "bfs",
            fetch_size=fetch,
            wait_time=wait_time_for(app),
        )
        if self.overrides:
            cfg = replace(cfg, **self.overrides)
        return cfg

    def run_bfs(
        self,
        graph: CSRGraph,
        partition: Partition,
        source: int,
        machine: MachineConfig,
        dataset: str = "",
    ) -> RunResult:
        app = AtosBFS(graph, partition, source)
        executor = AtosExecutor(machine, app, self._config("bfs", machine))
        makespan, counters = executor.run()
        return RunResult(
            framework=self.name,
            app="bfs",
            dataset=dataset,
            n_gpus=machine.n_gpus,
            time_ms=makespan / 1000.0,
            counters=counters,
            output=app.result(),
            timeline=executor.fabric.timeline,
            telemetry=executor.telemetry,
        )

    def run_pagerank(
        self,
        graph: CSRGraph,
        partition: Partition,
        machine: MachineConfig,
        alpha: float = 0.85,
        epsilon: float = 1e-4,
        dataset: str = "",
    ) -> RunResult:
        app = AtosPageRank(graph, partition, alpha=alpha, epsilon=epsilon)
        executor = AtosExecutor(
            machine, app, self._config("pagerank", machine)
        )
        makespan, counters = executor.run()
        return RunResult(
            framework=self.name,
            app="pagerank",
            dataset=dataset,
            n_gpus=machine.n_gpus,
            time_ms=makespan / 1000.0,
            counters=counters,
            output=app.result(),
            timeline=executor.fabric.timeline,
            telemetry=executor.telemetry,
        )
