"""Machine and cost-model configuration.

All simulated-time quantities are **microseconds**; all sizes are
**bytes**; bandwidths are **bytes per microsecond** (1 GB/s == 1000 B/us).
The constants below come from the paper where it states them (link
speeds, topologies, batch sizes) and from public V100 / EDR-IB
characteristics otherwise.  They are deliberately centralized so the
ablation benchmarks can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Literal

from repro.errors import ConfigError, ConfigurationError

__all__ = [
    "GB_PER_S",
    "DEFAULT_BATCH_SIZE",
    "BFS_WAIT_TIME",
    "PAGERANK_WAIT_TIME",
    "DEFAULT_WAIT_TIME",
    "ENGINE_QUEUES",
    "PDES_DRIVERS",
    "wait_time_for",
    "validate_tuning",
    "ConfigOverlay",
    "GPUSpec",
    "LinkSpec",
    "CostModel",
    "MachineConfig",
    "daisy",
    "summit_node",
    "summit_ib",
    "V100_32GB",
    "V100_16GB",
]

#: Conversion: 1 GB/s expressed in bytes per microsecond.
GB_PER_S = 1000.0

#: Aggregator BATCH_SIZE (bytes): 1 MiB, the knee of the paper's
#: Figure 4 IB bandwidth curve.  The one source of truth — the
#: aggregator default, ``AtosConfig``, and
#: :func:`repro.interconnect.infiniband.optimal_batch_size` all derive
#: from here.
DEFAULT_BATCH_SIZE = 1 << 20

#: Aggregator WAIT_TIME (inspection visits before a timeout flush) for
#: latency-oriented apps: BFS sends eagerly (paper Section V-C).
BFS_WAIT_TIME = 4

#: WAIT_TIME for bandwidth-oriented apps: PageRank batches harder.
PAGERANK_WAIT_TIME = 32

#: WAIT_TIME used when an app has no tuned value of its own.
DEFAULT_WAIT_TIME = BFS_WAIT_TIME

_WAIT_TIMES = {"bfs": BFS_WAIT_TIME, "pagerank": PAGERANK_WAIT_TIME}


def wait_time_for(app: str) -> int:
    """The paper's per-application aggregator WAIT_TIME tuning."""
    return _WAIT_TIMES.get(app, DEFAULT_WAIT_TIME)


#: The pluggable DES event-queue variants (:mod:`repro.sim.equeue`
#: reads its registry keys from here, keeping one source of truth for
#: overlay validation and the engine selector).
ENGINE_QUEUES = ("heap", "calendar")

#: The partitioned-engine drivers (:mod:`repro.runtime.partitioned`).
PDES_DRIVERS = ("local", "pooled")


def validate_tuning(
    *,
    batch_size: "int | None" = None,
    wait_time: "int | None" = None,
    fetch_size: "int | None" = None,
    engine_queue: "str | None" = None,
    partitions: "int | None" = None,
    pdes_driver: "str | None" = None,
) -> None:
    """Central bounds validation for every tunable knob.

    The one place the legal ranges live — executor configs, the
    aggregator, and design-space overlays all call through here, so a
    malformed tune point raises one typed :class:`ConfigError` in the
    parent process instead of a scattered assert deep inside a forked
    worker.  ``None`` means "not being set" and is always accepted.
    """
    if batch_size is not None and (
        not isinstance(batch_size, int) or batch_size < 1
    ):
        raise ConfigError(f"BATCH_SIZE must be an int >= 1, got {batch_size!r}")
    if wait_time is not None and (
        not isinstance(wait_time, int) or wait_time < 0
    ):
        raise ConfigError(f"WAIT_TIME must be an int >= 0, got {wait_time!r}")
    if fetch_size is not None and (
        not isinstance(fetch_size, int) or fetch_size < 1
    ):
        raise ConfigError(f"fetch_size must be an int >= 1, got {fetch_size!r}")
    if engine_queue is not None and engine_queue not in ENGINE_QUEUES:
        raise ConfigError(
            f"unknown engine_queue {engine_queue!r}; known: {ENGINE_QUEUES}"
        )
    if partitions is not None and (
        not isinstance(partitions, int) or partitions < 1
    ):
        raise ConfigError(f"partitions must be an int >= 1, got {partitions!r}")
    if pdes_driver is not None and pdes_driver not in PDES_DRIVERS:
        raise ConfigError(
            f"unknown pdes_driver {pdes_driver!r}; known: {PDES_DRIVERS}"
        )


@dataclass(frozen=True)
class ConfigOverlay:
    """A validated, hashable bundle of tuning-knob overrides.

    The unit of configuration a design-space point compiles into: every
    field is optional (``None`` = keep the default), bounds are checked
    centrally in ``__post_init__`` via :func:`validate_tuning` so a
    malformed overlay raises :class:`repro.errors.ConfigError` before
    any worker forks, and the frozen dataclass is hashable so it can
    ride inside a :class:`repro.harness.pool.RunSpec` and participate
    in run-cache keys.
    """

    #: Aggregator flush threshold in bytes (``AtosConfig.batch_size``).
    batch_size: "int | None" = None
    #: Aggregator poll visits before a timeout flush.
    wait_time: "int | None" = None
    #: Tasks popped per worker per scheduling round.
    fetch_size: "int | None" = None
    #: DES event-queue variant (``heap`` | ``calendar``).
    engine_queue: "str | None" = None
    #: Partition the simulation across N event loops (>= 2 engages the
    #: windowed PDES engine; results stay digest-identical to serial).
    partitions: "int | None" = None
    #: Partitioned-engine driver (``local`` | ``pooled``).
    pdes_driver: "str | None" = None

    def __post_init__(self) -> None:
        validate_tuning(
            batch_size=self.batch_size,
            wait_time=self.wait_time,
            fetch_size=self.fetch_size,
            engine_queue=self.engine_queue,
            partitions=self.partitions,
            pdes_driver=self.pdes_driver,
        )
        if self.pdes_driver is not None and (
            self.partitions is None or self.partitions < 2
        ):
            raise ConfigError(
                "pdes_driver requires partitions >= 2 "
                f"(got partitions={self.partitions!r})"
            )

    def __bool__(self) -> bool:
        """True when at least one knob is actually overridden."""
        return any(
            getattr(self, f.name) is not None for f in fields(self)
        )

    def as_dict(self) -> dict[str, Any]:
        """The overridden knobs only — the overlay's cache identity."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) is not None
        }

    def executor_overrides(self) -> dict[str, Any]:
        """The subset applied to :class:`repro.runtime.AtosConfig`."""
        out: dict[str, Any] = {}
        for name in ("batch_size", "wait_time", "fetch_size"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ConfigOverlay":
        """Rebuild an overlay from :meth:`as_dict` output (validated)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown overlay knob(s) {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**data)


@dataclass(frozen=True, slots=True)
class GPUSpec:
    """Static description of one GPU device."""

    name: str
    n_sms: int
    max_threads_per_sm: int
    max_ctas_per_sm: int
    registers_per_sm: int
    shared_mem_per_sm: int  # bytes
    memory_bandwidth: float  # bytes/us
    memory_capacity: int  # bytes
    #: Sustained irregular edge-update throughput (edge updates per us).
    #: ~2 GTEPS for V100 graph traversal (memory-bound, scattered atomics).
    edge_throughput: float = 2000.0
    #: Latency of one global-memory atomic (us).
    atomic_latency: float = 0.0006
    #: Additional serialization cost per conflicting atomic on the same
    #: address/cache line (us).  Zero by default: L2 same-address
    #: combining makes hub-update serialization a second-order effect,
    #: and the sustained ``edge_throughput`` is calibrated with it
    #: folded in.  The contention ablation bench raises it.
    atomic_conflict_penalty: float = 0.0

    def resident_threads(self) -> int:
        return self.n_sms * self.max_threads_per_sm


V100_32GB = GPUSpec(
    name="V100-SXM2-32GB",
    n_sms=80,
    max_threads_per_sm=2048,
    max_ctas_per_sm=32,
    registers_per_sm=65536,
    shared_mem_per_sm=96 * 1024,
    memory_bandwidth=900.0 * GB_PER_S,
    memory_capacity=32 * 1024**3,
)

V100_16GB = replace(V100_32GB, name="V100-SXM2-16GB",
                    memory_capacity=16 * 1024**3)


@dataclass(frozen=True, slots=True)
class LinkSpec:
    """One directed interconnect link."""

    kind: Literal["nvlink", "pcie", "ib"]
    bandwidth: float  # bytes/us
    latency: float  # us, one-way, excluding serialization
    #: Max payload per packet/message unit (bytes); None = unbounded.
    max_payload: int | None = None


@dataclass(frozen=True, slots=True)
class CostModel:
    """Execution-model cost constants shared by all framework drivers."""

    #: Host-side CUDA kernel launch overhead (us per launch).
    kernel_launch_overhead: float = 6.0
    #: cudaStreamSynchronize + host logic at a BSP phase boundary (us).
    cpu_sync_overhead: float = 12.0
    #: Extra one-way latency when the *communication control path* runs
    #: on the CPU (Groute/Gunrock/Galois) instead of the GPU (Atos).
    cpu_control_path_latency: float = 10.0
    #: GPU-resident control path cost for initiating one send (us).
    gpu_control_path_latency: float = 0.8
    #: Per-message NIC processing cost for InfiniBand (us).
    ib_message_overhead: float = 2.0
    #: Base one-way latency of a GPU-initiated IB message (us).
    ib_base_latency: float = 6.0
    #: Per-task queue pop/push bookkeeping amortized per task (us).
    queue_op_cost: float = 0.002
    #: Bytes moved per processed edge update (index + depth/residual).
    bytes_per_edge_update: int = 12
    #: Bytes on the wire per remote vertex update message payload.
    bytes_per_remote_update: int = 8
    #: Polling interval of an idle persistent worker (us).
    idle_poll_interval: float = 1.0


@dataclass(frozen=True, slots=True)
class MachineConfig:
    """A whole machine: GPUs plus the interconnect layout.

    ``links[(i, j)]`` gives the link spec used from GPU ``i`` to GPU
    ``j``.  Multi-node IB machines additionally set ``inter_node=True``
    so the runtime enables the communication aggregator by default.
    """

    name: str
    gpu: GPUSpec
    n_gpus: int
    links: dict[tuple[int, int], LinkSpec]
    cost: CostModel = field(default_factory=CostModel)
    inter_node: bool = False

    def __post_init__(self) -> None:
        if self.n_gpus < 1:
            raise ConfigurationError("machine needs at least one GPU")
        for (i, j) in self.links:
            if not (0 <= i < self.n_gpus and 0 <= j < self.n_gpus):
                raise ConfigurationError(f"link ({i},{j}) out of range")
            if i == j:
                raise ConfigurationError("self-links are not allowed")

    def link(self, src: int, dst: int) -> LinkSpec:
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise ConfigurationError(
                f"no link {src}->{dst} on {self.name}"
            ) from None

    def subset(self, n_gpus: int) -> "MachineConfig":
        """Restrict the machine to its first ``n_gpus`` GPUs."""
        if not 1 <= n_gpus <= self.n_gpus:
            raise ConfigurationError(
                f"cannot take {n_gpus} GPUs from {self.n_gpus}-GPU machine"
            )
        links = {
            (i, j): spec
            for (i, j), spec in self.links.items()
            if i < n_gpus and j < n_gpus
        }
        return replace(self, n_gpus=n_gpus, links=links)


def _nvlink(bandwidth_gbs: float, latency: float = 1.8) -> LinkSpec:
    return LinkSpec(
        kind="nvlink",
        bandwidth=bandwidth_gbs * GB_PER_S,
        latency=latency,
        max_payload=128,
    )


def daisy(n_gpus: int = 4) -> MachineConfig:
    """The paper's "Daisy" DGX Station: 4 V100s, all-to-all NVLink.

    Topology from the paper's appendix: each GPU has one dual-link
    (50 GB/s) connection to one peer and single-link (25 GB/s)
    connections to the others::

              GPU0  GPU1  GPU2  GPU3
        GPU0    X    NV1   NV1   NV2
        GPU1   NV1    X    NV2   NV1
        GPU2   NV1   NV2    X    NV1
        GPU3   NV2   NV1   NV1    X
    """
    dual_pairs = {(0, 3), (3, 0), (1, 2), (2, 1)}
    links: dict[tuple[int, int], LinkSpec] = {}
    for i in range(4):
        for j in range(4):
            if i == j:
                continue
            gbs = 50.0 if (i, j) in dual_pairs else 25.0
            links[(i, j)] = _nvlink(gbs)
    return MachineConfig(
        name="daisy", gpu=V100_32GB, n_gpus=4, links=links
    ).subset(n_gpus)


def summit_node(n_gpus: int = 6) -> MachineConfig:
    """One Summit node: 6 V100s, 3 per socket, NVLink within a socket.

    GPUs {0,1,2} share socket 0 and {3,4,5} share socket 1.  Within a
    socket, GPUs are connected by 50 GB/s NVLink.  Across sockets,
    traffic crosses the X-bus, with much higher latency and lower
    bandwidth — the topology the paper uses for the latency-hiding
    experiment (Figs 6-7).
    """
    links: dict[tuple[int, int], LinkSpec] = {}
    for i in range(6):
        for j in range(6):
            if i == j:
                continue
            same_socket = (i < 3) == (j < 3)
            if same_socket:
                links[(i, j)] = _nvlink(50.0)
            else:
                links[(i, j)] = LinkSpec(
                    kind="nvlink",
                    bandwidth=32.0 * GB_PER_S,
                    latency=7.0,  # cross-socket hop penalty
                    max_payload=128,
                )
    return MachineConfig(
        name="summit-node", gpu=V100_16GB, n_gpus=6, links=links
    ).subset(n_gpus)


def summit_ib(n_gpus: int = 8) -> MachineConfig:
    """Multi-node Summit: one GPU per node, dual-rail EDR InfiniBand.

    Each rail provides 12.5 GB/s of unidirectional injection bandwidth
    (paper Section IV); latency is the GPU-initiated IB latency.
    """
    cost = CostModel()
    ib = LinkSpec(
        kind="ib",
        bandwidth=12.5 * GB_PER_S,
        latency=cost.ib_base_latency,
        max_payload=None,
    )
    links = {
        (i, j): ib
        for i in range(n_gpus)
        for j in range(n_gpus)
        if i != j
    }
    return MachineConfig(
        name="summit-ib",
        gpu=V100_16GB,
        n_gpus=n_gpus,
        links=links,
        cost=cost,
        inter_node=True,
    )
