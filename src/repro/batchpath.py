"""The ``REPRO_BATCH_PATH`` escape hatch.

PR 2 vectorizes the queue -> aggregator -> executor data path: payload
batches cross the runtime as dense arrays instead of per-payload Python
objects.  The batched path is observably equivalent to the original
per-payload path — the golden-trace suite pins bit-identical event
traces and run digests for both — but, mirroring PR 1's
``Environment.reference_loop``, an escape hatch keeps the
straightforward reference implementation one environment variable away::

    REPRO_BATCH_PATH=0 python -m repro table5   # per-payload reference

The flag is read when a data-path object (executor, aggregator) is
*constructed*, so one simulation never mixes paths mid-run.
"""

from __future__ import annotations

import os

__all__ = ["BATCH_PATH_ENV", "batch_path_enabled"]

#: Environment variable holding the switch (default: batched path on).
BATCH_PATH_ENV = "REPRO_BATCH_PATH"

_FALSE = {"0", "false", "off", "no"}


def batch_path_enabled() -> bool:
    """True unless ``REPRO_BATCH_PATH`` disables the vectorized path."""
    return os.environ.get(BATCH_PATH_ENV, "1").strip().lower() not in _FALSE
