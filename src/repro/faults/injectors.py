"""Injectors: apply a :class:`FaultPlan` to the existing layers.

:class:`LinkFaultInjector` plugs into
:class:`repro.interconnect.transfer.NetworkFabric` (its
``fault_injector`` attribute) and decides the fate of every wire
message; :class:`DeviceFaultInjector` plugs into the executor's GPU
processes and perturbs round durations (straggler windows) and injects
one-shot stalls.

Both write their activity into a shared :class:`Counters` bag under the
``fault_*`` family (see :data:`repro.metrics.counters.FAULT_COUNTERS`),
so every chaos run reports exactly what was injected.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.faults.plan import FaultPlan, MessageFate
from repro.metrics.counters import Counters

__all__ = ["LinkFaultInjector", "DeviceFaultInjector"]


class LinkFaultInjector:
    """Per-message fate decisions for the network fabric.

    Keeps one message counter per directed link; since the DES is
    deterministic, the ``index``-th message on a link is the same
    message across replays, so the injected schedule replays exactly.
    """

    def __init__(self, plan: FaultPlan, counters: Optional[Counters] = None):
        self.plan = plan
        self.counters = counters if counters is not None else Counters()
        self._message_index: dict[tuple[int, int], int] = {}

    def fate(self, src: int, dst: int, now: float) -> MessageFate:
        """Decide (and count) the fate of the next (src -> dst) message."""
        key = (src, dst)
        index = self._message_index.get(key, 0)
        self._message_index[key] = index + 1
        fate = self.plan.message_fate(src, dst, index, now)
        if fate.dropped:
            self.counters["fault_dropped"] += 1
        if fate.duplicates:
            self.counters["fault_duplicated"] += fate.duplicates
        if fate.extra_delay:
            self.counters["fault_delayed"] += 1
        return fate


class DeviceFaultInjector:
    """Straggler slowdowns and transient stalls for GPU processes.

    ``round_duration`` is the single application point: the executor
    passes each round's modeled duration through it.  Straggler windows
    stretch the round multiplicatively; pending :class:`StallEvent`\\ s
    whose time has come are consumed once and added as dead time.
    """

    def __init__(self, plan: FaultPlan, counters: Optional[Counters] = None):
        self.plan = plan
        self.counters = counters if counters is not None else Counters()
        #: Per-PE stall events, soonest first, consumed front to back.
        self._stalls: dict[int, list] = {}
        for event in sorted(plan.stalls, key=lambda e: (e.pe, e.at)):
            self._stalls.setdefault(event.pe, []).append(event)
        #: Per-PE fail-stop time (the plan admits one crash per rank).
        self._crash_time: dict[int, float] = {
            crash.pe: crash.at for crash in plan.crashes
        }

    # ---------------------------------------------------- fail-stop view
    def crash_time(self, pe: int) -> float:
        """When rank ``pe`` fail-stops (``math.inf`` if it never does)."""
        return self._crash_time.get(pe, math.inf)

    def is_crashed(self, pe: int, now: float) -> bool:
        """Has rank ``pe`` fail-stopped at or before ``now``?"""
        return now >= self._crash_time.get(pe, math.inf)

    def slowdown(self, pe: int, now: float) -> float:
        """Compound straggler factor for ``pe`` at ``now`` (1.0 = none)."""
        return self.plan.slowdown(pe, now)

    def take_stall(self, pe: int, now: float) -> float:
        """Consume every due stall for ``pe``; returns total dead time."""
        queue = self._stalls.get(pe)
        if not queue:
            return 0.0
        taken = 0.0
        while queue and queue[0].at <= now:
            taken += queue.pop(0).duration
        return taken

    def round_duration(self, pe: int, now: float, base: float) -> float:
        """One round's duration with device faults applied."""
        factor = self.slowdown(pe, now)
        if factor != 1.0:
            self.counters["fault_straggler_rounds"] += 1
        stall = self.take_stall(pe, now)
        if stall:
            self.counters["fault_stalls"] += 1
            self.counters["fault_stall_time_us"] += stall
        return base * factor + stall
