"""Seeded, fully deterministic fault plans.

A :class:`FaultPlan` is a *replayable schedule* of fault events, not a
live random process: every decision is a pure function of the plan's
seed plus stable coordinates of the thing being decided (link endpoint
pair, per-link message index, decision kind).  Two simulations of the
same workload with the same plan therefore inject bit-identical
faults, which is what makes chaos runs debuggable — a failing cell can
be replayed under a tracer and hits the same drops at the same message
indices every time.

Probabilistic faults (drop / duplicate / delay-with-jitter) are drawn
from a counter-based hash stream; scheduled faults (transient link
partitions, straggler windows, transient device stalls) are explicit
time windows carried by the plan itself.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = [
    "CrashEvent",
    "FaultPlan",
    "MessageFate",
    "PartitionWindow",
    "StragglerWindow",
    "StallEvent",
    "uniform",
]

# Decision-kind tags: each fault dimension reads its own hash stream so
# e.g. raising the drop rate never shifts which messages get delayed.
_DROP = 0
_DUPLICATE = 1
_DELAY = 2
_JITTER = 3


def uniform(seed: int, *key: int) -> float:
    """Deterministic uniform in [0, 1) for an integer key tuple.

    A counter-based generator (hash of ``(seed, *key)``) rather than a
    stateful RNG: the value depends only on the coordinates, never on
    how many draws other links or decision kinds have made.
    """
    packed = struct.pack(f"<{len(key) + 1}q", seed, *key)
    digest = hashlib.blake2b(packed, digest_size=8).digest()
    return int.from_bytes(digest, "little") / 2.0**64


@dataclass(frozen=True, slots=True)
class MessageFate:
    """What the plan decided for one wire message."""

    #: The message is lost in flight (serialized, never delivered).
    dropped: bool = False
    #: Extra copies delivered besides the original.
    duplicates: int = 0
    #: Added one-way latency (us) — delay/jitter faults.
    extra_delay: float = 0.0

    @property
    def clean(self) -> bool:
        """True when the message is delivered exactly once, on time."""
        return (
            not self.dropped
            and self.duplicates == 0
            and self.extra_delay == 0.0
        )


@dataclass(frozen=True, slots=True)
class PartitionWindow:
    """A transient partition: the link drops everything in [start, end).

    ``src``/``dst`` of ``-1`` are wildcards, so a whole PE can be cut
    off (``PartitionWindow(src=-1, dst=3, ...)`` kills all traffic
    *into* PE 3 for the window).
    """

    src: int
    dst: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigurationError("partition window ends before it starts")

    def covers(self, src: int, dst: int, now: float) -> bool:
        """Is a (src -> dst) message at time ``now`` inside the window?"""
        return (
            self.start <= now < self.end
            and self.src in (-1, src)
            and self.dst in (-1, dst)
        )


@dataclass(frozen=True, slots=True)
class StragglerWindow:
    """A device runs ``factor`` x slower during [start, end)."""

    pe: int
    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigurationError("straggler window ends before it starts")
        if self.factor < 1.0:
            raise ConfigurationError("straggler factor must be >= 1")

    def covers(self, pe: int, now: float) -> bool:
        """Is device ``pe`` inside this slowdown window at ``now``?"""
        return self.pe == pe and self.start <= now < self.end


@dataclass(frozen=True, slots=True)
class StallEvent:
    """A one-shot transient stall: device ``pe`` loses ``duration`` us
    at its first scheduling round at or after ``at``."""

    pe: int
    at: float
    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ConfigurationError("stall duration must be non-negative")


@dataclass(frozen=True, slots=True)
class CrashEvent:
    """A fail-stop crash: rank ``pe`` ceases at sim time ``at`` (us).

    Fail-stop means the rank stops executing rounds, stops acking, and
    stops serving its graph partition — it does not corrupt state or
    send wrong messages (no Byzantine behavior).  Recovery is the job
    of :mod:`repro.recovery`.
    """

    pe: int
    at: float

    def __post_init__(self) -> None:
        if self.pe < 0:
            raise ConfigurationError("crash pe must be non-negative")
        if self.at < 0:
            raise ConfigurationError("crash time must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """A replayable schedule of link and device faults.

    Rates are per-message probabilities on every directed link (the
    control traffic of the resilient transport — acks, retransmissions
    — is subject to the same fates as data).  An all-zero plan is
    *inert*: ``active`` is False and the runtime takes the exact
    pre-fault code path, which the golden-trace suite pins.
    """

    seed: int = 0
    #: Probability a message is lost in flight.
    drop_rate: float = 0.0
    #: Probability a message is delivered twice.
    duplicate_rate: float = 0.0
    #: Probability a message is delayed by up to ``delay_jitter`` us.
    delay_rate: float = 0.0
    #: Maximum added one-way latency (us) for delayed messages.
    delay_jitter: float = 25.0
    partitions: tuple[PartitionWindow, ...] = ()
    stragglers: tuple[StragglerWindow, ...] = ()
    stalls: tuple[StallEvent, ...] = field(default=())
    #: Fail-stop crashes (rank recovery territory, not message faults).
    crashes: tuple[CrashEvent, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if self.delay_jitter < 0:
            raise ConfigurationError("delay_jitter must be non-negative")
        # Tolerate lists in hand-written plans; store tuples (hashable,
        # immutable — a plan is a value).
        for name in ("partitions", "stragglers", "stalls", "crashes"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        seen_pes = set()
        for crash in self.crashes:
            if crash.pe in seen_pes:
                raise ConfigurationError(
                    f"rank {crash.pe} crashes more than once; fail-stop "
                    "ranks do not restart"
                )
            seen_pes.add(crash.pe)

    # ----------------------------------------------------------- state
    @property
    def active(self) -> bool:
        """True if this plan can ever inject a fault."""
        return bool(
            self.drop_rate
            or self.duplicate_rate
            or (self.delay_rate and self.delay_jitter)
            or self.partitions
            or self.stragglers
            or self.stalls
            or self.crashes
        )

    # ----------------------------------------------------- link fates
    def message_fate(
        self, src: int, dst: int, index: int, now: float
    ) -> MessageFate:
        """The fate of the ``index``-th message on link (src, dst).

        Pure in (plan, src, dst, index, now): replaying a simulation
        replays the schedule.
        """
        for window in self.partitions:
            if window.covers(src, dst, now):
                return MessageFate(dropped=True)
        if self.drop_rate and (
            uniform(self.seed, _DROP, src, dst, index) < self.drop_rate
        ):
            return MessageFate(dropped=True)
        duplicates = 0
        if self.duplicate_rate and (
            uniform(self.seed, _DUPLICATE, src, dst, index)
            < self.duplicate_rate
        ):
            duplicates = 1
        extra_delay = 0.0
        if (
            self.delay_rate
            and self.delay_jitter
            and uniform(self.seed, _DELAY, src, dst, index) < self.delay_rate
        ):
            extra_delay = self.delay_jitter * uniform(
                self.seed, _JITTER, src, dst, index
            )
        return MessageFate(duplicates=duplicates, extra_delay=extra_delay)

    def preview(
        self, src: int, dst: int, n: int, now: float = 0.0
    ) -> list[MessageFate]:
        """The fates of the first ``n`` messages on one link — the
        replayable schedule made visible (for tests and debugging)."""
        return [self.message_fate(src, dst, i, now) for i in range(n)]

    # ---------------------------------------------------- device view
    def slowdown(self, pe: int, now: float) -> float:
        """Compound straggler factor for device ``pe`` at ``now``."""
        factor = 1.0
        for window in self.stragglers:
            if window.covers(pe, now):
                factor *= window.factor
        return factor

    def describe(self) -> str:
        """One-line human summary (chaos tables, logs)."""
        parts = [f"seed={self.seed}"]
        for name in ("drop_rate", "duplicate_rate", "delay_rate"):
            if getattr(self, name):
                parts.append(f"{name.split('_')[0]}={getattr(self, name):g}")
        for name in ("partitions", "stragglers", "stalls", "crashes"):
            if getattr(self, name):
                parts.append(f"{name}={len(getattr(self, name))}")
        return "FaultPlan(" + ", ".join(parts) + ")"
