"""Deterministic fault injection and the resilient delivery layer.

The paper's runtime assumes NVSHMEM delivers every one-sided op exactly
once; the DES inherited that, so every link and every message was
perfectly reliable.  This package drops that assumption:

* :mod:`repro.faults.plan` — a seeded, fully deterministic
  :class:`FaultPlan`: a replayable schedule of link faults (drop,
  duplicate, delay/jitter, transient partition) and device faults
  (straggler slowdown, transient stall).
* :mod:`repro.faults.injectors` — the hooks that apply a plan to the
  existing layers: :class:`LinkFaultInjector` decides the fate of each
  fabric message, :class:`DeviceFaultInjector` perturbs GPU round
  durations.
* :mod:`repro.faults.transport` — :class:`ReliableTransport`, the
  machinery that makes the runtime survive an unreliable fabric:
  sequence-numbered sends, receiver-side dedup, ack/timeout/retransmit
  with exponential backoff and a retry budget, and loss-safe
  termination accounting (work tokens retire on *ack*, not on send).

An executor given no plan — or a plan with every rate at zero and no
scheduled windows — takes exactly the pre-fault code path: the golden
trace suite pins that a zero-fault run is bit-identical to a run
without the subsystem.
"""

from repro.faults.plan import (
    CrashEvent,
    FaultPlan,
    MessageFate,
    PartitionWindow,
    StallEvent,
    StragglerWindow,
)
from repro.faults.injectors import DeviceFaultInjector, LinkFaultInjector
from repro.faults.transport import ReliableTransport, RetryPolicy

__all__ = [
    "CrashEvent",
    "FaultPlan",
    "MessageFate",
    "PartitionWindow",
    "StragglerWindow",
    "StallEvent",
    "LinkFaultInjector",
    "DeviceFaultInjector",
    "ReliableTransport",
    "RetryPolicy",
]
