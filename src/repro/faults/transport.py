"""The resilient delivery layer: acks, retransmission, dedup.

On a faulty fabric a one-sided update can be lost, duplicated, or
delayed.  :class:`ReliableTransport` restores exactly-once *effective*
delivery on top of at-most-once links, with the classic trio:

* **sequence numbers** — every wire message carries a per-link sequence
  number; the receiver keeps a seen-set and suppresses duplicate
  applications (a duplicate still triggers an ack, because the first
  ack may be the thing that was lost);
* **ack / timeout / retransmit** — the sender holds each message until
  its ack arrives; a retransmit timer fires with exponential backoff up
  to a retry budget, after which the run fails loudly with
  :class:`SimulationError` (a silently hung simulation is the one
  unacceptable outcome);
* **loss-safe termination accounting** — the work tokens a message
  carries are *leased* (held) from send until ack, via the ledger the
  executor passes in (:class:`repro.runtime.termination.InFlightLedger`),
  so the global work counter can only drain once every update has
  provably been applied.

Acks and retransmissions travel through the same fabric and are subject
to the same fault plan: a dropped ack causes a retransmit whose
duplicate application the receiver's seen-set suppresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError, SimulationError
from repro.metrics.counters import Counters

__all__ = ["RetryPolicy", "ReliableTransport"]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Retransmission knobs: deadline, backoff, budget, ack size."""

    #: Initial ack deadline (us) counted from each transmission.
    timeout: float = 50.0
    #: Deadline multiplier per retry (exponential backoff).
    backoff: float = 2.0
    #: Deadline ceiling (us) so backoff cannot sleep past a healed
    #: partition forever.
    max_timeout: float = 5_000.0
    #: Retransmissions allowed per message before the run fails.
    budget: int = 16
    #: Wire size (bytes) charged for an ack message.
    ack_bytes: int = 16

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ConfigurationError("retry timeout must be positive")
        if self.backoff < 1.0:
            raise ConfigurationError("retry backoff must be >= 1")
        if self.max_timeout < self.timeout:
            raise ConfigurationError("max_timeout must be >= timeout")
        if self.budget < 0:
            raise ConfigurationError("retry budget must be non-negative")
        if self.ack_bytes < 1:
            raise ConfigurationError("ack_bytes must be positive")

    def deadline(self, attempt: int) -> float:
        """Ack deadline (us) for the ``attempt``-th transmission."""
        return min(self.timeout * self.backoff**attempt, self.max_timeout)


@dataclass(slots=True)
class _DataPacket:
    """One sequence-numbered wire message: (src, dst, seq) + payload."""

    key: tuple[int, int, int]
    payload: Any


@dataclass(slots=True)
class _AckPacket:
    """Receiver -> sender acknowledgement of one data packet."""

    key: tuple[int, int, int]


@dataclass(slots=True)
class _PendingSend:
    """Sender-side record of an unacknowledged message."""

    key: tuple[int, int, int]
    payload_bytes: int
    payload: Any
    tokens: int
    attempt: int = 0


class ReliableTransport:
    """Sequence-numbered, acked, retransmitting sends over the fabric.

    ``deliver_fn(dst, payload)`` is the executor's apply-side handler:
    it must register any derived work with the tracker *itself* and
    must **not** retire the message's tokens — those are leased in the
    ledger and retire here, on ack.
    """

    def __init__(
        self,
        env: Any,
        fabric: Any,
        ledger: Any,
        deliver_fn: Callable[[int, Any], None],
        policy: RetryPolicy | None = None,
        counters: Counters | None = None,
        extra_latency_fn: Callable[[], float] | None = None,
    ):
        self.env = env
        self.fabric = fabric
        self.ledger = ledger
        self.deliver_fn = deliver_fn
        self.policy = policy or RetryPolicy()
        self.counters = counters if counters is not None else Counters()
        self._extra_latency = extra_latency_fn or (lambda: 0.0)
        self._next_seq: dict[tuple[int, int], int] = {}
        self._pending: dict[tuple[int, int, int], _PendingSend] = {}
        #: Receiver-side dedup state: (src, dst) -> seqs already applied.
        self._seen: dict[tuple[int, int], set[int]] = {}

    # ------------------------------------------------------------ state
    @property
    def quiescent(self) -> bool:
        """True when no message is awaiting its ack."""
        return not self._pending

    @property
    def pending_messages(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------- send
    def send(
        self, src: int, dst: int, payload_bytes: int, payload: Any,
        tokens: int,
    ) -> None:
        """Reliable one-sided send of ``payload`` carrying ``tokens``.

        The caller must already have added ``tokens`` to the work
        tracker (the usual add-before-consume ordering); this leases
        them until the ack arrives.
        """
        link = (src, dst)
        seq = self._next_seq.get(link, 0)
        self._next_seq[link] = seq + 1
        record = _PendingSend(
            key=(src, dst, seq),
            payload_bytes=payload_bytes,
            payload=payload,
            tokens=tokens,
        )
        self._pending[record.key] = record
        self.ledger.lease(tokens)
        self.counters["transport_sends"] += 1
        self._transmit(record)

    def _transmit(self, record: _PendingSend) -> None:
        src, dst, _seq = record.key
        self.fabric.send(
            src,
            dst,
            record.payload_bytes,
            _DataPacket(record.key, record.payload),
            self._on_data,
            extra_latency=self._extra_latency(),
        )
        deadline = self.policy.deadline(record.attempt)
        timer = self.env.timeout(deadline)
        attempt = record.attempt
        timer.callbacks.append(
            lambda _ev, key=record.key, attempt=attempt: self._on_timeout(
                key, attempt
            )
        )

    def _on_timeout(self, key: tuple[int, int, int], attempt: int) -> None:
        record = self._pending.get(key)
        if record is None or record.attempt != attempt:
            return  # acked, or a later transmission owns the deadline
        if record.attempt >= self.policy.budget:
            src, dst, seq = key
            raise SimulationError(
                f"retry budget exhausted: message {src}->{dst}#{seq} "
                f"unacknowledged after {record.attempt + 1} transmissions"
            )
        record.attempt += 1
        self.counters["transport_retransmits"] += 1
        self._transmit(record)

    # ---------------------------------------------------------- receive
    def _on_data(self, message: Any) -> None:
        packet: _DataPacket = message.payload
        src, dst, seq = packet.key
        seen = self._seen.setdefault((src, dst), set())
        if seq in seen:
            # Duplicate (fabric duplication or a retransmission whose
            # original landed): suppress the re-apply, but still ack —
            # the retransmit implies our previous ack may be lost.
            self.counters["transport_duplicates_suppressed"] += 1
        else:
            seen.add(seq)
            self.deliver_fn(dst, packet.payload)
        self.counters["transport_acks_sent"] += 1
        self.fabric.send(
            dst,
            src,
            self.policy.ack_bytes,
            _AckPacket(packet.key),
            self._on_ack,
            extra_latency=self._extra_latency(),
        )

    def _on_ack(self, message: Any) -> None:
        key = message.payload.key
        record = self._pending.pop(key, None)
        if record is None:
            # Ack for an already-retired message (duplicated ack, or
            # acks of both the original and a retransmission).
            self.counters["transport_stale_acks"] += 1
            return
        self.counters["transport_acks_received"] += 1
        src, dst, seq = key
        self.ledger.retire(
            record.tokens, source=f"ack {src}->{dst}#{seq}"
        )
