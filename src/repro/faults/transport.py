"""The resilient delivery layer: acks, retransmission, dedup.

On a faulty fabric a one-sided update can be lost, duplicated, or
delayed.  :class:`ReliableTransport` restores exactly-once *effective*
delivery on top of at-most-once links, with the classic trio:

* **sequence numbers** — every wire message carries a per-link sequence
  number; the receiver keeps a seen-set and suppresses duplicate
  applications (a duplicate still triggers an ack, because the first
  ack may be the thing that was lost);
* **ack / timeout / retransmit** — the sender holds each message until
  its ack arrives; a retransmit timer fires with exponential backoff up
  to a retry budget, after which the run fails loudly with
  :class:`repro.errors.RetryBudgetExhausted` — or escalates to the
  ``on_exhausted`` hook, which is how the rank-recovery coordinator
  tells "receiver is dead" apart from "link is flaky" (a silently hung
  simulation is the one unacceptable outcome);
* **loss-safe termination accounting** — the work tokens a message
  carries are *leased* (held) from send until ack, via the ledger the
  executor passes in (:class:`repro.runtime.termination.InFlightLedger`),
  so the global work counter can only drain once every update has
  provably been applied.

Acks and retransmissions travel through the same fabric and are subject
to the same fault plan: a dropped ack causes a retransmit whose
duplicate application the receiver's seen-set suppresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import ConfigurationError, RetryBudgetExhausted
from repro.metrics.counters import Counters

__all__ = ["RetryPolicy", "ReliableTransport"]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Retransmission knobs: deadline, backoff, budget, ack size."""

    #: Initial ack deadline (us) counted from each transmission.
    timeout: float = 50.0
    #: Deadline multiplier per retry (exponential backoff).
    backoff: float = 2.0
    #: Deadline ceiling (us) so backoff cannot sleep past a healed
    #: partition forever.
    max_timeout: float = 5_000.0
    #: Retransmissions allowed per message before the run fails.
    budget: int = 16
    #: Wire size (bytes) charged for an ack message.
    ack_bytes: int = 16

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ConfigurationError("retry timeout must be positive")
        if self.backoff < 1.0:
            raise ConfigurationError("retry backoff must be >= 1")
        if self.max_timeout < self.timeout:
            raise ConfigurationError("max_timeout must be >= timeout")
        if self.budget < 0:
            raise ConfigurationError("retry budget must be non-negative")
        if self.ack_bytes < 1:
            raise ConfigurationError("ack_bytes must be positive")

    def deadline(self, attempt: int) -> float:
        """Ack deadline (us) for the ``attempt``-th transmission."""
        return min(self.timeout * self.backoff**attempt, self.max_timeout)


@dataclass(slots=True)
class _DataPacket:
    """One sequence-numbered wire message: (src, dst, seq) + payload.

    ``incarnation`` stamps the transport epoch the packet was sent in;
    rank recovery bumps the epoch, so packets still in flight from
    before a rollback arrive stale and are dropped without effect.
    """

    key: tuple[int, int, int]
    payload: Any
    incarnation: int = 0


@dataclass(slots=True)
class _AckPacket:
    """Receiver -> sender acknowledgement of one data packet."""

    key: tuple[int, int, int]


@dataclass(slots=True)
class _PendingSend:
    """Sender-side record of an unacknowledged message."""

    key: tuple[int, int, int]
    payload_bytes: int
    payload: Any
    tokens: int
    attempt: int = 0


class ReliableTransport:
    """Sequence-numbered, acked, retransmitting sends over the fabric.

    ``deliver_fn(dst, payload)`` is the executor's apply-side handler:
    it must register any derived work with the tracker *itself* and
    must **not** retire the message's tokens — those are leased in the
    ledger and retire here, on ack.
    """

    def __init__(
        self,
        env: Any,
        fabric: Any,
        ledger: Any,
        deliver_fn: Callable[[int, Any], None],
        policy: RetryPolicy | None = None,
        counters: Counters | None = None,
        extra_latency_fn: Callable[[], float] | None = None,
    ):
        self.env = env
        self.fabric = fabric
        self.ledger = ledger
        self.deliver_fn = deliver_fn
        self.policy = policy or RetryPolicy()
        self.counters = counters if counters is not None else Counters()
        self._extra_latency = extra_latency_fn or (lambda: 0.0)
        self._next_seq: dict[tuple[int, int], int] = {}
        self._pending: dict[tuple[int, int, int], _PendingSend] = {}
        #: Receiver-side dedup state: (src, dst) -> seqs already applied.
        self._seen: dict[tuple[int, int], set[int]] = {}
        #: Transport epoch; rank recovery bumps it to fence stale traffic.
        self.incarnation = 0
        #: Liveness oracle ``alive_fn(pe, now)``: a fail-stopped rank
        #: neither applies nor acks (the recovery layer wires this).
        self.alive_fn: Optional[Callable[[int, float], bool]] = None
        #: Escalation hook: called with the typed exhaustion error
        #: instead of raising, so a recovery coordinator can absorb
        #: "receiver is dead" and re-raise anything else.
        self.on_exhausted: Optional[
            Callable[[RetryBudgetExhausted], None]
        ] = None

    # ------------------------------------------------------------ state
    @property
    def quiescent(self) -> bool:
        """True when no message is awaiting its ack."""
        return not self._pending

    @property
    def pending_messages(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------- send
    def send(
        self, src: int, dst: int, payload_bytes: int, payload: Any,
        tokens: int,
    ) -> None:
        """Reliable one-sided send of ``payload`` carrying ``tokens``.

        The caller must already have added ``tokens`` to the work
        tracker (the usual add-before-consume ordering); this leases
        them until the ack arrives.
        """
        link = (src, dst)
        seq = self._next_seq.get(link, 0)
        self._next_seq[link] = seq + 1
        record = _PendingSend(
            key=(src, dst, seq),
            payload_bytes=payload_bytes,
            payload=payload,
            tokens=tokens,
        )
        self._pending[record.key] = record
        self.ledger.lease(tokens)
        self.counters["transport_sends"] += 1
        self._transmit(record)

    def _transmit(self, record: _PendingSend) -> None:
        src, dst, _seq = record.key
        self.fabric.send(
            src,
            dst,
            record.payload_bytes,
            _DataPacket(record.key, record.payload, self.incarnation),
            self._on_data,
            extra_latency=self._extra_latency(),
        )
        deadline = self.policy.deadline(record.attempt)
        timer = self.env.timeout(deadline)
        attempt = record.attempt
        timer.callbacks.append(
            lambda _ev, key=record.key, attempt=attempt: self._on_timeout(
                key, attempt
            )
        )

    def _on_timeout(self, key: tuple[int, int, int], attempt: int) -> None:
        record = self._pending.get(key)
        if record is None or record.attempt != attempt:
            return  # acked, or a later transmission owns the deadline
        src, dst, seq = key
        if self.alive_fn is not None and not self.alive_fn(src, self.env.now):
            # Fail-stop sender: the ghost of a crashed rank does not
            # retransmit.  The lease stays held until recovery reclaims
            # the whole pending set.
            self.counters["transport_dead_sender_timeouts"] += 1
            return
        if record.attempt >= self.policy.budget:
            error = RetryBudgetExhausted(
                src, dst, seq, attempts=record.attempt + 1
            )
            if self.on_exhausted is not None:
                # Escalate instead of failing: the handler re-raises
                # unless the receiver is known dead (rank recovery).
                self.on_exhausted(error)
                return
            raise error
        record.attempt += 1
        self.counters["transport_retransmits"] += 1
        self._transmit(record)

    # ---------------------------------------------------------- receive
    def _on_data(self, message: Any) -> None:
        packet: _DataPacket = message.payload
        src, dst, seq = packet.key
        if packet.incarnation != self.incarnation:
            # In flight across a rollback: the checkpoint it was sent
            # from no longer exists.  Drop without applying *or* acking
            # (its lease was already reclaimed by recovery).
            self.counters["transport_stale_incarnation_drops"] += 1
            return
        if self.alive_fn is not None and not self.alive_fn(dst, self.env.now):
            # Fail-stop receiver: a dead rank neither applies nor acks.
            self.counters["transport_dead_receiver_drops"] += 1
            return
        seen = self._seen.setdefault((src, dst), set())
        if seq in seen:
            # Duplicate (fabric duplication or a retransmission whose
            # original landed): suppress the re-apply, but still ack —
            # the retransmit implies our previous ack may be lost.
            self.counters["transport_duplicates_suppressed"] += 1
        else:
            seen.add(seq)
            self.deliver_fn(dst, packet.payload)
        self.counters["transport_acks_sent"] += 1
        self.fabric.send(
            dst,
            src,
            self.policy.ack_bytes,
            _AckPacket(packet.key),
            self._on_ack,
            extra_latency=self._extra_latency(),
        )

    def _on_ack(self, message: Any) -> None:
        key = message.payload.key
        record = self._pending.pop(key, None)
        if record is None:
            # Ack for an already-retired message (duplicated ack, or
            # acks of both the original and a retransmission).
            self.counters["transport_stale_acks"] += 1
            return
        self.counters["transport_acks_received"] += 1
        src, dst, seq = key
        self.ledger.retire(
            record.tokens, source=f"ack {src}->{dst}#{seq}"
        )

    # --------------------------------------------------------- recovery
    def reclaim_pending(self) -> int:
        """Void every unacknowledged send and release its lease.

        Rollback recovery discards all in-flight state: the restored
        checkpoint re-derives the work those messages carried.  Returns
        the number of tokens reclaimed.  Leftover retransmit timers
        no-op (their pending records are gone), and any copies still on
        the wire arrive with a stale incarnation once the caller bumps
        :attr:`incarnation`.
        """
        reclaimed = 0
        for key in sorted(self._pending):
            record = self._pending.pop(key)
            src, dst, seq = key
            self.ledger.reclaim(
                record.tokens, source=f"reclaim {src}->{dst}#{seq}"
            )
            reclaimed += record.tokens
        return reclaimed
