"""Span-based tracing, timeline export, and critical-path profiling.

``repro.telemetry`` is the observability layer for the whole simulated
stack: the DES executor, GPU kernel model, queues, aggregator,
interconnect, and recovery coordinator all record attributed
:class:`Span` slices (rank, category, sim-time interval, byte/item
counts) into a bounded per-rank :class:`SpanLog` when tracing is on.

Three consumers build on the recorded spans:

* :mod:`repro.telemetry.export` — Chrome/Perfetto ``trace_event`` JSON
  (``python -m repro profile --export trace.json``);
* :mod:`repro.telemetry.report` — per-rank utilization timelines and
  load-imbalance statistics;
* :mod:`repro.telemetry.critical_path` — the send→recv→pop→process
  dependency walk attributing the makespan to its longest chain.

Tracing is **zero-cost when disabled** (the default): no
:class:`Telemetry` hub is constructed and every instrumentation site is
a single ``if telemetry is not None`` branch, so disabled runs produce
event traces bit-identical to the pre-telemetry seed (pinned by golden
digests).  Enable per run via ``AtosConfig(telemetry=True)`` or
globally via ``REPRO_TELEMETRY=1``.
"""

from repro.telemetry.critical_path import (
    CriticalPath,
    PathSegment,
    critical_path,
)
from repro.telemetry.export import (
    TRACE_SCHEMA,
    to_trace_events,
    validate_trace_events,
    write_trace,
)
from repro.telemetry.report import (
    ProfileReport,
    build_report,
    imbalance_stats,
    phase_breakdown,
    rank_breakdown,
)
from repro.telemetry.spans import (
    CATEGORIES,
    DEFAULT_MAX_SPANS,
    OVERLAY_CATEGORIES,
    TELEMETRY_ENV,
    TIMELINE_CATEGORIES,
    DepEdge,
    Span,
    SpanLog,
    Telemetry,
    telemetry_enabled,
)

__all__ = [
    "CATEGORIES",
    "TIMELINE_CATEGORIES",
    "OVERLAY_CATEGORIES",
    "TELEMETRY_ENV",
    "DEFAULT_MAX_SPANS",
    "telemetry_enabled",
    "Span",
    "DepEdge",
    "SpanLog",
    "Telemetry",
    "TRACE_SCHEMA",
    "to_trace_events",
    "validate_trace_events",
    "write_trace",
    "rank_breakdown",
    "imbalance_stats",
    "phase_breakdown",
    "ProfileReport",
    "build_report",
    "PathSegment",
    "CriticalPath",
    "critical_path",
]
