"""Chrome/Perfetto ``trace_event`` export of a telemetry timeline.

Produces the legacy Chrome tracing JSON format (a ``traceEvents`` array
of complete ``"ph": "X"`` events), which both ``chrome://tracing`` and
https://ui.perfetto.dev load directly.  Simulated time is already in
microseconds — exactly the unit ``ts``/``dur`` expect — so no scaling
happens on export.

Mapping:

* ``pid`` — the rank (one Perfetto "process" per simulated GPU);
* ``tid`` — ``0`` for the sequential timeline lane (compute / queue /
  idle / recovery) and ``1``/``2`` for the concurrent comm / agg_wait
  overlay lanes, so overlap with compute is visible as parallel tracks;
* ``cat`` — the span category, ``args`` — byte/item counts.

Per-rank gaps between timeline spans are gap-filled with derived
``idle`` events, so summing a rank's timeline-category ``dur`` values
in the exported file reproduces that rank's makespan exactly — the
property the profile acceptance test checks on the JSON itself.

Only uniform complete events are emitted (no metadata or flow events):
every event carries ``pid``/``tid``/``ts``/``dur``/``cat``/``name``,
which keeps :func:`validate_trace_events` a total schema check.
"""

from __future__ import annotations

import json

from repro.telemetry.spans import (
    OVERLAY_CATEGORIES,
    TIMELINE_CATEGORIES,
    Span,
    Telemetry,
)

__all__ = [
    "TRACE_SCHEMA",
    "to_trace_events",
    "write_trace",
    "validate_trace_events",
]

#: Schema tag recorded in the exported document's ``otherData``.
TRACE_SCHEMA = "repro-trace-events/1"

#: Overlay lanes get stable tids after the timeline lane (tid 0).
_OVERLAY_TID = {cat: i + 1 for i, cat in enumerate(OVERLAY_CATEGORIES)}


def _event(span: Span, tid: int) -> dict:
    return {
        "name": span.name or span.category,
        "cat": span.category,
        "ph": "X",
        "pid": span.rank,
        "tid": tid,
        "ts": span.start,
        "dur": span.duration,
        "args": {"bytes": span.n_bytes, "items": span.n_items},
    }


def _gap_fill(rank: int, spans: list[Span], makespan: float) -> list[Span]:
    """Derived idle spans covering every timeline gap up to makespan."""
    fills: list[Span] = []
    cursor = 0.0
    for span in sorted(spans, key=lambda s: s.start):
        if span.start > cursor:
            fills.append(
                Span(rank, "idle", cursor, span.start, "idle (derived)")
            )
        cursor = max(cursor, span.end)
    if makespan > cursor:
        fills.append(Span(rank, "idle", cursor, makespan, "idle (derived)"))
    return fills


def to_trace_events(telemetry: Telemetry, makespan: float) -> dict:
    """Build the Chrome/Perfetto ``trace_event`` document.

    ``makespan`` (simulated us) bounds the gap-filled idle so that each
    rank's timeline lane tiles ``[0, makespan]`` exactly.
    """
    events: list[dict] = []
    timeline = set(TIMELINE_CATEGORIES)
    for rank in range(telemetry.n_ranks):
        rank_timeline: list[Span] = []
        for span in telemetry.logs[rank]:
            if span.category in timeline:
                rank_timeline.append(span)
                events.append(_event(span, tid=0))
            else:
                events.append(_event(span, _OVERLAY_TID[span.category]))
        for fill in _gap_fill(rank, rank_timeline, makespan):
            events.append(_event(fill, tid=0))
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TRACE_SCHEMA,
            "makespan_us": makespan,
            "n_ranks": telemetry.n_ranks,
            "spans_recorded": telemetry.total_spans,
            "spans_evicted": telemetry.evicted,
            **telemetry.meta,
        },
    }


def validate_trace_events(doc: dict) -> int:
    """Schema-check an exported document; returns the event count.

    Every event must be a complete (``"ph": "X"``) event carrying
    ``pid``/``tid``/``ts``/``dur``/``cat``/``name`` with non-negative
    ``ts`` and ``dur`` — the contract the profile-smoke CI job and the
    export test suite enforce.  Raises :class:`ValueError` on the first
    violation.
    """
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, event in enumerate(events):
        for key in ("pid", "tid", "ts", "dur", "cat", "name", "ph"):
            if key not in event:
                raise ValueError(f"event {i} lacks {key!r}: {event!r}")
        if event["ph"] != "X":
            raise ValueError(f"event {i} is not a complete event")
        if event["dur"] < 0:
            raise ValueError(f"event {i} has negative dur: {event['dur']}")
        if event["ts"] < 0:
            raise ValueError(f"event {i} has negative ts: {event['ts']}")
    return len(events)


def write_trace(telemetry: Telemetry, makespan: float, path: str) -> int:
    """Export, validate, and write the trace JSON; returns event count.

    Validation runs *before* the write, so a file on disk is always
    loadable.
    """
    doc = to_trace_events(telemetry, makespan)
    count = validate_trace_events(doc)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return count
