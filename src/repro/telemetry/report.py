"""Per-rank utilization/timeline reports and load-imbalance statistics.

This is the paper's per-phase attribution (compute vs. communication
vs. idle per GPU) computed from a run's recorded spans:

* :func:`rank_breakdown` — per-rank totals where the timeline
  categories (compute/queue/idle/recovery) tile ``[0, makespan]``
  exactly (unaccounted gaps are folded into ``idle``) and the overlay
  categories (comm/agg_wait) are reported alongside as utilization;
* :func:`imbalance_stats` — the load-imbalance diagnostics
  (max/mean factor, coefficient of variation) over per-rank busy time;
* :func:`phase_breakdown` — the compact whole-run category→us summary
  the bench and chaos harnesses attach next to their digests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.spans import (
    OVERLAY_CATEGORIES,
    TIMELINE_CATEGORIES,
    Telemetry,
)

__all__ = [
    "rank_breakdown",
    "imbalance_stats",
    "phase_breakdown",
    "ProfileReport",
    "build_report",
]


def rank_breakdown(
    telemetry: Telemetry, makespan: float
) -> dict[int, dict[str, float]]:
    """Per-rank category totals in simulated microseconds.

    For every rank, the timeline categories sum to ``makespan``
    exactly: recorded compute/queue/recovery/idle spans are counted as
    emitted, and whatever the sequential process did not record (tail
    time after the rank drained, teardown) is folded into ``idle``.
    Overlay categories (comm, agg_wait) are reported as recorded and
    excluded from that sum — their overlap with compute is the point.
    """
    out: dict[int, dict[str, float]] = {}
    for rank in range(telemetry.n_ranks):
        totals = telemetry.category_totals(rank)
        row = {cat: totals.get(cat, 0.0) for cat in TIMELINE_CATEGORIES}
        accounted = sum(row.values())
        row["idle"] += max(0.0, makespan - accounted)
        for cat in OVERLAY_CATEGORIES:
            row[cat] = totals.get(cat, 0.0)
        out[rank] = row
    return out


def imbalance_stats(
    per_rank: dict[int, dict[str, float]],
    busy_categories: tuple[str, ...] = ("compute", "queue"),
) -> dict[str, float]:
    """Load-imbalance diagnostics over per-rank busy time.

    ``imbalance`` is max/mean busy time (1.0 = perfectly balanced, the
    classic lambda of load-imbalance analyses); ``cv`` is the
    coefficient of variation.  A mesh partition that starves one GPU
    shows up here long before it shows up in the makespan.
    """
    busy = np.array(
        [
            sum(row.get(cat, 0.0) for cat in busy_categories)
            for row in per_rank.values()
        ],
        dtype=np.float64,
    )
    mean = float(busy.mean()) if len(busy) else 0.0
    if mean <= 0:
        return {"imbalance": 1.0, "cv": 0.0, "busy_mean_us": 0.0,
                "busy_max_us": 0.0}
    return {
        "imbalance": float(busy.max() / mean),
        "cv": float(busy.std() / mean),
        "busy_mean_us": mean,
        "busy_max_us": float(busy.max()),
    }


def phase_breakdown(telemetry: Telemetry, makespan: float) -> dict[str, float]:
    """Whole-run category → total simulated us, summed over ranks.

    The compact summary attached next to digests in the bench document
    and the chaos/crash grid cells ("where did the time go").
    """
    per_rank = rank_breakdown(telemetry, makespan)
    out: dict[str, float] = {}
    for row in per_rank.values():
        for cat, value in row.items():
            out[cat] = out.get(cat, 0.0) + value
    return out


@dataclass
class ProfileReport:
    """Everything ``python -m repro profile`` prints for one cell."""

    makespan_us: float
    per_rank: dict[int, dict[str, float]]
    imbalance: dict[str, float]
    #: Aggregator knob values the run actually used (one source of
    #: truth: :mod:`repro.config` via the executor's config).
    knobs: dict[str, float] = field(default_factory=dict)
    spans_recorded: int = 0
    spans_evicted: int = 0

    @property
    def truncated(self) -> bool:
        """True when the span ring buffers lost history."""
        return self.spans_evicted > 0

    def render(self) -> str:
        """The human-readable profile block (table + stats + warnings)."""
        from repro.metrics.analysis import utilization_table

        lines = [
            utilization_table(self.per_rank, self.makespan_us),
            "",
            (
                f"load imbalance: max/mean = "
                f"{self.imbalance['imbalance']:.3f}, "
                f"cv = {self.imbalance['cv']:.3f}"
            ),
        ]
        if self.knobs:
            knob_text = ", ".join(
                f"{k}={v:g}" for k, v in sorted(self.knobs.items())
            )
            lines.append(f"knobs: {knob_text}")
        lines.append(
            f"spans: {self.spans_recorded} recorded, "
            f"{self.spans_evicted} evicted"
        )
        if self.truncated:
            lines.append(
                "WARNING: TIMELINE TRUNCATED — span ring buffer evicted "
                f"{self.spans_evicted} span(s); totals below undercount "
                "early history (raise telemetry_max_spans)"
            )
        return "\n".join(lines)


def build_report(
    telemetry: Telemetry,
    makespan: float,
    knobs: dict[str, float] | None = None,
) -> ProfileReport:
    """Assemble the full :class:`ProfileReport` for one run."""
    per_rank = rank_breakdown(telemetry, makespan)
    return ProfileReport(
        makespan_us=makespan,
        per_rank=per_rank,
        imbalance=imbalance_stats(per_rank),
        knobs=dict(knobs or {}),
        spans_recorded=telemetry.total_spans,
        spans_evicted=telemetry.evicted,
    )
