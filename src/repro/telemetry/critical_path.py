"""Critical-path analysis over recorded spans and dependency edges.

The DES event graph already contains the dependencies that determine
the makespan: each rank's sequential round chain (pop → process →
push), and every cross-rank message (send → recv → handler).  The
fabric records the latter as :class:`~repro.telemetry.spans.DepEdge`
instances; the GPU processes record the former implicitly as their
non-overlapping timeline spans.  This module walks those dependencies
*backwards* from the last work span to attribute the makespan to a
chain of segments — the paper-style answer to "which phase would I
shorten to make this run faster?".

Walk rule, from the current span ``s`` on rank ``r``:

* the binding predecessor is whichever finished **latest**: the most
  recent message arrival into ``r`` at or before ``s.start``, or the
  previous timeline span on ``r``;
* following a message edge jumps to the sending rank at the send time
  and resumes from the span active there (truncated at the send);
* a gap between ``s`` and its same-rank predecessor is attributed as
  an explicit ``wait`` segment (idle on the critical path — the
  genuinely wasted time).

Because the walk is strictly backwards-monotone in simulated time, the
resulting segments never overlap, so the attributed path time is
always ≤ the makespan — the property test pins this along with
segment-sum consistency.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.telemetry.spans import TIMELINE_CATEGORIES, DepEdge, Span, Telemetry

__all__ = ["PathSegment", "CriticalPath", "critical_path"]

#: Work categories the walker chains through (idle spans are treated as
#: gaps, not work).
_WORK_CATEGORIES = tuple(c for c in TIMELINE_CATEGORIES if c != "idle")

#: Time-comparison slack for same-instant events (sim time is float us).
_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class PathSegment:
    """One attributed slice of the critical path.

    ``kind`` is ``"span"`` (work on a rank), ``"msg"`` (a message in
    flight between ranks), or ``"wait"`` (idle time on the path).
    """

    rank: int
    category: str
    start: float
    end: float
    kind: str = "span"
    name: str = ""

    @property
    def duration(self) -> float:
        """Segment length in simulated microseconds."""
        return self.end - self.start


@dataclass
class CriticalPath:
    """The walked path, chronological, plus its attribution totals."""

    segments: list[PathSegment] = field(default_factory=list)
    makespan_us: float = 0.0
    #: True when the walk stopped early (span eviction or step cap)
    #: rather than reaching simulated time ~0.
    complete: bool = True

    @property
    def path_time_us(self) -> float:
        """Total attributed time (≤ makespan by construction)."""
        return sum(seg.duration for seg in self.segments)

    def by_category(self) -> dict[str, float]:
        """Attributed time per category (``msg``/``wait`` included)."""
        out: dict[str, float] = {}
        for seg in self.segments:
            out[seg.category] = out.get(seg.category, 0.0) + seg.duration
        return out

    def top_segments(self, k: int = 10) -> list[PathSegment]:
        """The ``k`` longest path segments, longest first."""
        return sorted(
            self.segments, key=lambda s: s.duration, reverse=True
        )[:k]

    def render(self, top_k: int = 10) -> str:
        """Human-readable path summary for the profile CLI."""
        lines = [
            f"critical path: {self.path_time_us:.1f} us attributed of "
            f"{self.makespan_us:.1f} us makespan "
            f"({len(self.segments)} segment(s))"
            + ("" if self.complete else " [walk truncated]")
        ]
        totals = sorted(
            self.by_category().items(), key=lambda kv: kv[1], reverse=True
        )
        lines.append(
            "  by category: "
            + ", ".join(f"{cat}={us:.1f}us" for cat, us in totals)
        )
        lines.append(f"  top {top_k} segments by attributed time:")
        for seg in self.top_segments(top_k):
            where = (
                f"rank{seg.rank}" if seg.kind != "msg" else f"->rank{seg.rank}"
            )
            label = seg.name or seg.category
            lines.append(
                f"    {seg.duration:>10.2f} us  {where:<9} {seg.category:<9}"
                f" [{seg.start:.2f}, {seg.end:.2f})  {label}"
            )
        return "\n".join(lines)


class _RankIndex:
    """Sorted-by-end work spans of one rank, with bisect lookup."""

    __slots__ = ("spans", "ends")

    def __init__(self, spans: list[Span]):
        self.spans = sorted(spans, key=lambda s: s.end)
        self.ends = [s.end for s in self.spans]

    def last_ending_at_or_before(self, t: float) -> Span | None:
        """The work span with the greatest end ≤ ``t`` (+slack)."""
        i = bisect_right(self.ends, t + _EPS)
        return self.spans[i - 1] if i else None

    def active_at(self, t: float) -> Span | None:
        """The span covering ``t``, else the last one ending before it."""
        i = bisect_right(self.ends, t + _EPS)
        if i < len(self.spans) and self.spans[i].start <= t + _EPS:
            return self.spans[i]
        return self.spans[i - 1] if i else None


class _EdgeIndex:
    """Per-destination delivered edges, sorted by arrival time."""

    __slots__ = ("by_dst",)

    def __init__(self, edges: list[DepEdge], n_ranks: int):
        self.by_dst: list[tuple[list[float], list[DepEdge]]] = []
        for rank in range(n_ranks):
            mine = sorted(
                (e for e in edges if e.dst_rank == rank),
                key=lambda e: e.recv_time,
            )
            self.by_dst.append(([e.recv_time for e in mine], mine))

    def last_arrival_at_or_before(
        self, rank: int, t: float
    ) -> DepEdge | None:
        recvs, edges = self.by_dst[rank]
        i = bisect_right(recvs, t + _EPS)
        return edges[i - 1] if i else None


def critical_path(
    telemetry: Telemetry,
    makespan: float,
    max_steps: int = 100_000,
) -> CriticalPath:
    """Walk the send→recv→pop→process dependency chain backwards.

    Starts at the work span that ends last anywhere in the system and
    follows binding predecessors to simulated time ~0.  ``max_steps``
    caps pathological walks (and eviction can remove early history);
    either sets ``complete=False`` on the result.
    """
    ranks = [
        _RankIndex(telemetry.rank_spans(r, _WORK_CATEGORIES))
        for r in range(telemetry.n_ranks)
    ]
    edges = _EdgeIndex(list(telemetry.edges), telemetry.n_ranks)

    terminal: Span | None = None
    for index in ranks:
        if index.spans and (
            terminal is None or index.spans[-1].end > terminal.end
        ):
            terminal = index.spans[-1]
    path = CriticalPath(makespan_us=makespan)
    if terminal is None:
        return path

    segments: list[PathSegment] = []
    cur = terminal
    cursor = terminal.end  # segment upper bound (walks toward 0)
    complete = True
    for _ in range(max_steps):
        start = min(cur.start, cursor)
        if cursor > start:
            segments.append(
                PathSegment(
                    cur.rank, cur.category, start, cursor, "span", cur.name
                )
            )
        t = start
        if t <= _EPS:
            break
        edge = edges.last_arrival_at_or_before(cur.rank, t)
        prev = ranks[cur.rank].last_ending_at_or_before(t)
        if prev is cur:
            # Guard against same-end self-matches under float slack.
            prev = ranks[cur.rank].last_ending_at_or_before(t - _EPS)
        edge_bound = edge.recv_time if edge is not None else float("-inf")
        prev_bound = prev.end if prev is not None else float("-inf")
        if edge is None and prev is None:
            break
        if edge_bound >= prev_bound:
            assert edge is not None
            if t > edge.recv_time + _EPS:
                segments.append(
                    PathSegment(
                        cur.rank, "wait", edge.recv_time, t, "wait"
                    )
                )
            segments.append(
                PathSegment(
                    edge.dst_rank,
                    "msg",
                    edge.send_time,
                    edge.recv_time,
                    "msg",
                    f"rank{edge.src_rank}->rank{edge.dst_rank} {edge.kind}",
                )
            )
            sender = ranks[edge.src_rank].active_at(edge.send_time)
            if sender is None:
                break
            cur = sender
            cursor = min(sender.end, edge.send_time)
        else:
            assert prev is not None
            if t > prev.end + _EPS:
                segments.append(
                    PathSegment(cur.rank, "wait", prev.end, t, "wait")
                )
            cur = prev
            cursor = prev.end
    else:
        complete = False

    segments.reverse()
    path.segments = segments
    path.complete = complete and not telemetry.truncated
    return path
