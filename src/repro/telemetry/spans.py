"""Span primitives: the structured trace the whole stack records into.

A :class:`Span` is one attributed slice of simulated time on one rank —
a scheduling round's compute, a link serialization, an aggregation
buffer's residency, an idle wait, a recovery park.  Spans land in a
bounded per-rank :class:`SpanLog` owned by a :class:`Telemetry` hub the
executor threads through the runtime layers.

Two category groups with different accounting contracts:

* **timeline categories** (``compute``, ``queue``, ``idle``,
  ``recovery``) — emitted by the sequential per-rank GPU process, so
  they never overlap on a rank; together with derived gap-fill idle
  they tile ``[0, makespan]`` exactly (the utilization report and the
  Perfetto export both rely on this).
* **overlay categories** (``comm``, ``agg_wait``) — emitted by the
  fabric and the aggregator, concurrent with the timeline by design
  (that overlap *is* the paper's latency-hiding claim), so they are
  reported as utilization/overlap, never summed into the makespan.

The hub is **observation-only**: recording never creates DES events,
never advances time, and never branches runtime behavior, so a
telemetry-enabled run dispatches the exact same event trace as a
disabled one (pinned by the inertness golden test).  Disabled runs do
not construct a hub at all — the instrumentation sites are single
``if telemetry is not None`` branches.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

__all__ = [
    "CATEGORIES",
    "TIMELINE_CATEGORIES",
    "OVERLAY_CATEGORIES",
    "TELEMETRY_ENV",
    "telemetry_enabled",
    "Span",
    "DepEdge",
    "SpanLog",
    "Telemetry",
    "DEFAULT_MAX_SPANS",
]

#: Every legal span category.  ``sync`` is the partitioned engine's
#: conservative-window accounting: one span per (partition, window) on
#: the partition's lead rank, covering the window's simulated extent —
#: the profile view then shows synchronization cadence and overhead
#: next to compute/comm.
CATEGORIES = (
    "compute", "comm", "agg_wait", "queue", "idle", "recovery", "sync",
)

#: Categories that tile a rank's sequential timeline (sum to makespan).
TIMELINE_CATEGORIES = ("compute", "queue", "idle", "recovery")

#: Categories concurrent with the timeline (reported as overlap).
OVERLAY_CATEGORIES = ("comm", "agg_wait", "sync")

#: Environment variable enabling telemetry for runs that don't set
#: :attr:`repro.runtime.AtosConfig.telemetry` explicitly (default off).
TELEMETRY_ENV = "REPRO_TELEMETRY"

_TRUE = {"1", "true", "on", "yes"}

#: Default per-rank span bound: enough for every evaluation cell while
#: keeping a runaway soak run's memory bounded (~25 MB/rank worst case).
DEFAULT_MAX_SPANS = 1 << 18


def telemetry_enabled() -> bool:
    """True when ``REPRO_TELEMETRY`` asks for span tracing (default off)."""
    return os.environ.get(TELEMETRY_ENV, "0").strip().lower() in _TRUE


@dataclass(frozen=True, slots=True)
class Span:
    """One attributed slice of simulated time on one rank.

    ``start``/``end`` are simulated microseconds; ``n_bytes`` and
    ``n_items`` carry whatever payload sizing the emitting site knows
    (wire bytes for ``comm``, tasks for ``compute``, buffered payloads
    for ``agg_wait``).
    """

    rank: int
    category: str
    start: float
    end: float
    name: str = ""
    n_bytes: int = 0
    n_items: int = 0

    @property
    def duration(self) -> float:
        """Span length in simulated microseconds."""
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class DepEdge:
    """One cross-rank dependency: a message send → its arrival.

    These are the send→recv edges the critical-path analyzer walks;
    the fabric records one per delivered message copy (dropped copies
    produce no edge — nothing downstream depends on them).
    """

    src_rank: int
    dst_rank: int
    send_time: float
    recv_time: float
    kind: str = "msg"
    n_bytes: int = 0


class SpanLog:
    """Bounded, append-only span storage for one rank.

    Mirrors the :class:`repro.sim.monitor.Trace` ring-buffer contract
    from PR 3: ``max_spans`` keeps long soak runs bounded (oldest spans
    evicted first), ``total_recorded`` counts every span ever made, so
    ``evicted`` says exactly how much history was discarded — truncated
    timelines are detectable, never silently "complete".
    """

    __slots__ = ("rank", "max_spans", "total_recorded", "spans")

    def __init__(self, rank: int, max_spans: Optional[int] = None):
        if max_spans is not None and max_spans <= 0:
            raise ValueError("max_spans must be positive (or None)")
        self.rank = rank
        self.max_spans = max_spans
        self.total_recorded = 0
        self.spans: deque[Span] = deque(maxlen=max_spans)

    @property
    def evicted(self) -> int:
        """How many spans the ring buffer has discarded."""
        return self.total_recorded - len(self.spans)

    def append(self, span: Span) -> None:
        """Record one span (oldest evicted first when bounded)."""
        self.total_recorded += 1
        self.spans.append(span)

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)


class Telemetry:
    """The per-run span hub: one bounded :class:`SpanLog` per rank.

    Pure data — it holds no environment reference and schedules no
    events; every instrumentation site passes explicit times read from
    its own clock.  That keeps the hub picklable (results can carry it
    across pool workers) and observation-only by construction.
    """

    def __init__(
        self,
        n_ranks: int,
        max_spans_per_rank: Optional[int] = DEFAULT_MAX_SPANS,
    ):
        if n_ranks < 1:
            raise ValueError("telemetry needs at least one rank")
        self.n_ranks = n_ranks
        #: Free-form run metadata (e.g. which engine queue produced the
        #: spans) — carried into the trace export's ``otherData`` so a
        #: Perfetto trace is self-describing about its engine config.
        self.meta: dict[str, str] = {}
        self.logs = [
            SpanLog(rank, max_spans_per_rank) for rank in range(n_ranks)
        ]
        #: Cross-rank dependency edges, in record order (bounded by the
        #: same per-run cap as spans, scaled by rank count).
        self.edges: deque[DepEdge] = deque(
            maxlen=None
            if max_spans_per_rank is None
            else max_spans_per_rank * n_ranks
        )
        self.total_edges = 0

    # --------------------------------------------------------- recording
    def span(
        self,
        rank: int,
        category: str,
        start: float,
        end: float,
        name: str = "",
        n_bytes: int = 0,
        n_items: int = 0,
    ) -> None:
        """Record one span; zero-length spans are dropped silently."""
        if end < start:
            raise ValueError(
                f"span ends before it starts: [{start}, {end})"
            )
        if category not in CATEGORIES:
            raise ValueError(
                f"unknown span category {category!r}; known: {CATEGORIES}"
            )
        if end == start:
            return
        self.logs[rank].append(
            Span(rank, category, start, end, name, n_bytes, n_items)
        )

    def edge(
        self,
        src_rank: int,
        dst_rank: int,
        send_time: float,
        recv_time: float,
        kind: str = "msg",
        n_bytes: int = 0,
    ) -> None:
        """Record one send→recv dependency edge."""
        self.total_edges += 1
        self.edges.append(
            DepEdge(src_rank, dst_rank, send_time, recv_time, kind, n_bytes)
        )

    # ----------------------------------------------------------- queries
    @property
    def total_spans(self) -> int:
        """Spans ever recorded, across all ranks (evicted included)."""
        return sum(log.total_recorded for log in self.logs)

    @property
    def evicted(self) -> int:
        """Spans discarded by ring-buffer bounds, across all ranks."""
        return sum(log.evicted for log in self.logs) + (
            self.total_edges - len(self.edges)
        )

    @property
    def truncated(self) -> bool:
        """True when any rank's timeline lost history to eviction."""
        return self.evicted > 0

    def all_spans(self) -> Iterator[Span]:
        """Every retained span, rank by rank, in record order."""
        for log in self.logs:
            yield from log

    def rank_spans(
        self, rank: int, categories: Optional[Iterable[str]] = None
    ) -> list[Span]:
        """Retained spans of one rank, optionally category-filtered."""
        if categories is None:
            return list(self.logs[rank])
        wanted = set(categories)
        return [s for s in self.logs[rank] if s.category in wanted]

    def category_totals(self, rank: int) -> dict[str, float]:
        """Summed span durations per category for one rank."""
        totals: dict[str, float] = {}
        for span in self.logs[rank]:
            totals[span.category] = (
                totals.get(span.category, 0.0) + span.duration
            )
        return totals
