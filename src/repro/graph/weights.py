"""Edge weights for CSR graphs.

Weights live in a parallel array aligned with ``CSRGraph.indices`` so
the unweighted hot paths stay untouched.  :class:`WeightedGraph`
bundles a graph with its weights and provides the weighted analogue of
``expand_batch``; generators attach deterministic pseudo-random
weights.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["WeightedGraph", "uniform_weights", "geometric_weights"]


class WeightedGraph:
    """A CSR graph plus per-edge positive weights."""

    __slots__ = ("graph", "weights")

    def __init__(self, graph: CSRGraph, weights: np.ndarray):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (graph.n_edges,):
            raise ValueError(
                f"need {graph.n_edges} weights, got {weights.shape}"
            )
        if len(weights) and weights.min() <= 0:
            raise ValueError("weights must be positive")
        self.graph = graph
        self.weights = weights

    @property
    def n_vertices(self) -> int:
        return self.graph.n_vertices

    @property
    def n_edges(self) -> int:
        return self.graph.n_edges

    def expand_batch(
        self, vertices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(targets, origin, edge weights) for a batch of rows."""
        vertices = np.asarray(vertices, dtype=np.int64)
        starts = self.graph.indptr[vertices]
        degrees = self.graph.indptr[vertices + 1] - starts
        total = int(degrees.sum())
        if total == 0:
            empty = np.empty(0)
            return (
                np.empty(0, dtype=np.int32),
                np.empty(0, dtype=np.int64),
                empty,
            )
        row_starts = np.zeros(len(vertices), dtype=np.int64)
        np.cumsum(degrees[:-1], out=row_starts[1:])
        positions = np.arange(total, dtype=np.int64) + np.repeat(
            starts - row_starts, degrees
        )
        origin = np.repeat(np.arange(len(vertices)), degrees)
        return self.graph.indices[positions], origin, self.weights[positions]

    def row_subweights(self, rows: np.ndarray) -> "WeightedGraph":
        """Weighted analogue of :meth:`CSRGraph.row_subgraph`."""
        rows = np.asarray(rows, dtype=np.int64)
        sub = self.graph.row_subgraph(rows)
        _, _, weights = self.expand_batch(rows)
        return WeightedGraph(sub, weights)

    def symmetric_weights_ok(self) -> bool:
        """True if w(u,v) == w(v,u) wherever both edges exist."""
        src, dst = self.graph.to_edges()
        table = {
            (int(s), int(d)): w
            for s, d, w in zip(src, dst, self.weights)
        }
        return all(
            table.get((d, s), w) == w for (s, d), w in table.items()
        )


def uniform_weights(
    graph: CSRGraph, low: float = 1.0, high: float = 10.0, seed: int = 0
) -> WeightedGraph:
    """Uniformly random weights, symmetric on symmetric graphs.

    The weight of edge (u, v) is derived from the unordered pair so
    that (v, u), if present, gets the same value — shortest paths on
    symmetrized road networks need symmetric costs.
    """
    if low <= 0 or high < low:
        raise ValueError("need 0 < low <= high")
    src, dst = graph.to_edges()
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    # Per-pair deterministic hash -> uniform in [low, high].
    mix = (lo * np.int64(2654435761) ^ hi * np.int64(40503)) + seed
    mix = (mix ^ (mix >> 16)) * np.int64(73244475)
    mix = (mix ^ (mix >> 16)) & np.int64(0x7FFFFFFF)
    unit = mix.astype(np.float64) / float(0x7FFFFFFF)
    return WeightedGraph(graph, low + unit * (high - low))


def geometric_weights(
    graph: CSRGraph, width: int, seed: int = 0
) -> WeightedGraph:
    """Grid-style weights: euclidean-ish distance between endpoints.

    For mesh graphs built by :func:`repro.graph.generators.grid_mesh`
    (vertex id = y * width + x) this yields road-length-like costs.
    """
    src, dst = graph.to_edges()
    sx, sy = src % width, src // width
    dx, dy = dst % width, dst // width
    dist = np.sqrt((sx - dx) ** 2.0 + (sy - dy) ** 2.0)
    rng = np.random.default_rng(seed)
    jitter_src = rng.random(graph.n_vertices) * 0.2
    jitter = 1.0 + (jitter_src[src] + jitter_src[dst]) / 2.0
    return WeightedGraph(graph, np.maximum(dist, 0.5) * jitter)
