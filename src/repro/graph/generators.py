"""Synthetic graph generators standing in for the paper's datasets.

The evaluation (paper Section IV, Table I) uses two graph families whose
behaviour differs qualitatively:

* **scale-free** (soc-LiveJournal1, hollywood-2009, indochina-2004,
  twitter50): power-law degrees, tiny diameter — BFS/PR on these is
  *bandwidth-bound*.  We generate them with RMAT (Kronecker) sampling.
* **mesh-like** (road_usa, osm-eur): near-constant degree ~2, enormous
  diameter — BFS on these is *latency/parallelism-bound*.  We generate
  them as 2-D grid graphs with random edge deletions and long-ish local
  detours, which preserves both properties.

All generators take an explicit seed and are deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["rmat", "grid_mesh", "path_graph", "star_graph", "complete_graph"]


def rmat(
    scale: int,
    edge_factor: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    symmetrize: bool = True,
) -> CSRGraph:
    """RMAT/Kronecker graph: ``2**scale`` vertices, ``~edge_factor * n`` edges.

    The (a, b, c, d) quadrant probabilities follow Graph500 defaults;
    skewing ``a`` up concentrates edges on low-id hubs (higher max
    degree), matching e.g. indochina-2004's extreme out-degree skew.
    Duplicate edges and self-loops are removed, so the realized edge
    count is slightly below ``edge_factor * n``.
    """
    if not 0 < a < 1 or b < 0 or c < 0 or a + b + c >= 1.0:
        raise ValueError("invalid RMAT quadrant probabilities")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = edge_factor * n
    d = 1.0 - a - b - c
    # Vectorized RMAT: each of the `scale` bit levels picks a quadrant
    # independently for every edge.
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    quadrants = rng.choice(4, size=(scale, m), p=[a, b, c, d])
    for level in range(scale):
        bit = 1 << (scale - 1 - level)
        q = quadrants[level]
        src += bit * ((q == 2) | (q == 3))
        dst += bit * ((q == 1) | (q == 3))
    graph = CSRGraph.from_edges(src, dst, n)
    if symmetrize:
        graph = graph.symmetrized()
    return graph


def grid_mesh(
    width: int,
    height: int,
    drop_fraction: float = 0.05,
    shortcut_fraction: float = 0.01,
    shortcut_radius: int = 4,
    seed: int = 0,
) -> CSRGraph:
    """Road-network-like mesh: a 2-D grid with dropped and local detour edges.

    ``drop_fraction`` of grid edges are removed (road networks are not
    perfect lattices) and ``shortcut_fraction * n`` extra edges connect
    vertices within ``shortcut_radius`` grid steps (diagonals/ramps).
    The graph is kept symmetric; its diameter is Θ(width + height),
    matching the huge diameters of road_usa / osm-eur in Table I.
    """
    if width < 2 or height < 2:
        raise ValueError("grid must be at least 2x2")
    if not 0 <= drop_fraction < 1:
        raise ValueError("drop_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    n = width * height

    def vid(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return y * width + x

    xs, ys = np.meshgrid(np.arange(width), np.arange(height))
    xs, ys = xs.ravel(), ys.ravel()

    # Horizontal and vertical lattice edges.
    horiz = xs < width - 1
    vert = ys < height - 1
    src = np.concatenate([vid(xs[horiz], ys[horiz]), vid(xs[vert], ys[vert])])
    dst = np.concatenate(
        [vid(xs[horiz] + 1, ys[horiz]), vid(xs[vert], ys[vert] + 1)]
    )

    if drop_fraction > 0:
        keep = rng.random(len(src)) >= drop_fraction
        src, dst = src[keep], dst[keep]

    n_short = int(shortcut_fraction * n)
    if n_short > 0:
        sx = rng.integers(0, width, n_short)
        sy = rng.integers(0, height, n_short)
        ox = rng.integers(-shortcut_radius, shortcut_radius + 1, n_short)
        oy = rng.integers(-shortcut_radius, shortcut_radius + 1, n_short)
        tx = np.clip(sx + ox, 0, width - 1)
        ty = np.clip(sy + oy, 0, height - 1)
        src = np.concatenate([src, vid(sx, sy)])
        dst = np.concatenate([dst, vid(tx, ty)])

    graph = CSRGraph.from_edges(src, dst, n)
    return graph.symmetrized()


def path_graph(n: int) -> CSRGraph:
    """A simple path 0-1-...-(n-1), symmetric.  Worst-case diameter."""
    if n < 1:
        raise ValueError("need at least one vertex")
    idx = np.arange(n - 1)
    return CSRGraph.from_edges(idx, idx + 1, n).symmetrized()


def star_graph(n: int) -> CSRGraph:
    """Vertex 0 connected to all others, symmetric.  Worst-case hub."""
    if n < 2:
        raise ValueError("need at least two vertices")
    leaves = np.arange(1, n)
    return CSRGraph.from_edges(
        np.zeros(n - 1, dtype=np.int64), leaves, n
    ).symmetrized()


def complete_graph(n: int) -> CSRGraph:
    """All-to-all directed edges (no self-loops)."""
    if n < 1:
        raise ValueError("need at least one vertex")
    src, dst = np.meshgrid(np.arange(n), np.arange(n))
    return CSRGraph.from_edges(src.ravel(), dst.ravel(), n)
