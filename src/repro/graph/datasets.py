"""The six paper datasets (Table I), scaled for simulation.

The paper's graphs range from 1.1 M to 174 M vertices; this library
reproduces their *character* — degree distribution family, average
degree, diameter regime — at roughly 1/200 scale so full evaluation
grids run in minutes on a laptop.  The mapping and the rationale for
why scaled graphs preserve the paper's effects are documented in
DESIGN.md §4.

Datasets are built lazily and cached per-process; all generation is
seeded, so two processes build identical graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_mesh, rmat
from repro.graph.stats import GraphStats, graph_stats, largest_component_vertex

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "SCALE_FREE",
    "MESH_LIKE",
    "load",
    "bfs_source",
    "dataset_stats",
    "paper_table1",
]


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset: how to build it and what it stands in for."""

    name: str
    paper_name: str
    graph_type: str  # "scale-free" | "mesh-like"
    builder: Callable[[], CSRGraph]
    #: Paper's Table I row, for the side-by-side shown by the bench.
    paper_vertices: float
    paper_edges: float
    paper_diameter: int
    paper_avg_degree: float


def _soc_livejournal() -> CSRGraph:
    return rmat(scale=14, edge_factor=8, seed=101)


def _hollywood() -> CSRGraph:
    # Dense scale-free: avg degree ~105 in the paper.
    return rmat(scale=13, edge_factor=28, seed=202)


def _indochina() -> CSRGraph:
    # Heavily skewed hub degrees: raise `a` to concentrate edges.
    return rmat(scale=14, edge_factor=8, a=0.6, b=0.17, c=0.17, seed=303)


def _twitter50() -> CSRGraph:
    return rmat(scale=16, edge_factor=12, seed=404)


def _road_usa() -> CSRGraph:
    return grid_mesh(width=180, height=180, drop_fraction=0.06, seed=505)


def _osm_eur() -> CSRGraph:
    return grid_mesh(width=256, height=256, drop_fraction=0.06, seed=606)


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="soc-livejournal1",
            paper_name="soc-LiveJournal1",
            graph_type="scale-free",
            builder=_soc_livejournal,
            paper_vertices=4.8e6,
            paper_edges=68e6,
            paper_diameter=20,
            paper_avg_degree=14,
        ),
        DatasetSpec(
            name="hollywood-2009",
            paper_name="hollywood_2009",
            graph_type="scale-free",
            builder=_hollywood,
            paper_vertices=1.1e6,
            paper_edges=11e6,
            paper_diameter=11,
            paper_avg_degree=105,
        ),
        DatasetSpec(
            name="indochina-2004",
            paper_name="indochina_2004",
            graph_type="scale-free",
            builder=_indochina,
            paper_vertices=7.4e6,
            paper_edges=191e6,
            paper_diameter=26,
            paper_avg_degree=8,
        ),
        DatasetSpec(
            name="twitter50",
            paper_name="twitter50",
            graph_type="scale-free",
            builder=_twitter50,
            paper_vertices=51e6,
            paper_edges=1.9e9,
            paper_diameter=12,
            paper_avg_degree=38,
        ),
        DatasetSpec(
            name="road-usa",
            paper_name="road_usa",
            graph_type="mesh-like",
            builder=_road_usa,
            paper_vertices=23.9e6,
            paper_edges=57e6,
            paper_diameter=6809,
            paper_avg_degree=2,
        ),
        DatasetSpec(
            name="osm-eur",
            paper_name="osm_eur",
            graph_type="mesh-like",
            builder=_osm_eur,
            paper_vertices=174e6,
            paper_edges=348e6,
            paper_diameter=21158,
            paper_avg_degree=2,
        ),
    ]
}

#: Dataset names by family, in the paper's presentation order.
SCALE_FREE = [
    "soc-livejournal1",
    "hollywood-2009",
    "indochina-2004",
    "twitter50",
]
MESH_LIKE = ["road-usa", "osm-eur"]


@lru_cache(maxsize=None)
def load(name: str) -> CSRGraph:
    """Build (or fetch from cache) a dataset by name."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown dataset {name!r}; known: {sorted(DATASETS)}"
        ) from None
    return spec.builder()


@lru_cache(maxsize=None)
def bfs_source(name: str) -> int:
    """Canonical BFS source for a dataset (inside the giant component)."""
    return largest_component_vertex(load(name))


@lru_cache(maxsize=None)
def dataset_stats(name: str) -> GraphStats:
    """Table I row for one dataset."""
    spec = DATASETS[name]
    return graph_stats(
        name, load(name), spec.graph_type, source=bfs_source(name)
    )


def paper_table1() -> list[tuple[DatasetSpec, GraphStats]]:
    """All (paper row, measured row) pairs for the Table I bench."""
    return [(DATASETS[n], dataset_stats(n)) for n in SCALE_FREE + MESH_LIKE]
