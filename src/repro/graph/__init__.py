"""Graph substrate: CSR storage, generators, datasets, partitioning."""

from repro.graph.csr import CSRGraph
from repro.graph.datasets import (
    DATASETS,
    MESH_LIKE,
    SCALE_FREE,
    bfs_source,
    dataset_stats,
    load,
)
from repro.graph.generators import (
    complete_graph,
    grid_mesh,
    path_graph,
    rmat,
    star_graph,
)
from repro.graph.partition import (
    PARTITIONERS,
    Partition,
    bfs_grow_partition,
    block_partition,
    edge_cut,
    make_partition,
    random_partition,
    rehome_partition,
)
from repro.graph.io import (
    read_edge_list,
    read_matrix_market,
    write_edge_list,
    write_matrix_market,
)
from repro.graph.weights import (
    WeightedGraph,
    geometric_weights,
    uniform_weights,
)
from repro.graph.stats import (
    UNREACHED,
    GraphStats,
    bfs_levels,
    estimate_diameter,
    graph_stats,
    largest_component_vertex,
)

__all__ = [
    "CSRGraph",
    "DATASETS",
    "SCALE_FREE",
    "MESH_LIKE",
    "load",
    "bfs_source",
    "dataset_stats",
    "rmat",
    "grid_mesh",
    "path_graph",
    "star_graph",
    "complete_graph",
    "Partition",
    "PARTITIONERS",
    "random_partition",
    "block_partition",
    "bfs_grow_partition",
    "make_partition",
    "rehome_partition",
    "edge_cut",
    "GraphStats",
    "UNREACHED",
    "bfs_levels",
    "estimate_diameter",
    "graph_stats",
    "largest_component_vertex",
    "WeightedGraph",
    "uniform_weights",
    "geometric_weights",
    "read_edge_list",
    "write_edge_list",
    "read_matrix_market",
    "write_matrix_market",
]
