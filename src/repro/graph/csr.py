"""Compressed Sparse Row graph storage (numpy-backed).

The CSR layout mirrors what every GPU graph framework in the paper
(Atos, Gunrock, Groute, Galois) uses on-device: an ``indptr`` array of
``n + 1`` row offsets and an ``indices`` array of destination vertices.
All hot operations are vectorized; ``expand_batch`` is the single
gather primitive the application drivers use to expand a whole frontier
batch without a Python-level loop (see the hpc-parallel guides:
vectorize the inner loop, use views not copies).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["CSRGraph"]


class CSRGraph:
    """A directed graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64[n+1]`` row offsets, monotonically non-decreasing.
    indices:
        ``int32[m]`` destination vertex of each edge.
    n_global:
        Total vertex count of the *global* graph this CSR is part of.
        Equal to ``n_local`` for a whole graph; larger for a partition
        (rows are local vertices, columns are global ids).
    """

    __slots__ = ("indptr", "indices", "n_global")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        n_global: int | None = None,
    ):
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int32)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D")
        if len(indptr) == 0 or indptr[0] != 0:
            raise ValueError("indptr must start with 0")
        if indptr[-1] != len(indices):
            raise ValueError("indptr[-1] must equal len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        self.indptr = indptr
        self.indices = indices
        self.n_global = int(n_global) if n_global is not None else self.n_vertices
        if len(indices) and (
            indices.min() < 0 or indices.max() >= self.n_global
        ):
            raise ValueError("edge endpoint out of range")

    # ------------------------------------------------------------ basics
    @property
    def n_vertices(self) -> int:
        """Number of (local) rows."""
        return len(self.indptr) - 1

    @property
    def n_edges(self) -> int:
        return len(self.indices)

    def out_degree(self, v: int | np.ndarray | None = None) -> np.ndarray | int:
        """Out-degree of one vertex, an array of vertices, or all."""
        degrees = np.diff(self.indptr)
        if v is None:
            return degrees
        if np.isscalar(v):
            return int(degrees[v])
        return degrees[np.asarray(v)]

    def neighbors(self, v: int) -> np.ndarray:
        """View (not copy) of the out-neighbors of ``v``."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def expand_batch(
        self, vertices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gather all out-edges of a batch of rows, fully vectorized.

        Returns ``(targets, origin_index)`` where ``targets`` is the
        concatenation of each vertex's neighbor list and
        ``origin_index[k]`` is the position within ``vertices`` whose
        expansion produced ``targets[k]`` (use it to map per-source
        values such as depths onto edges with a take).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        starts = self.indptr[vertices]
        degrees = self.indptr[vertices + 1] - starts
        total = int(degrees.sum())
        if total == 0:
            return (
                np.empty(0, dtype=np.int32),
                np.empty(0, dtype=np.int64),
            )
        origin = np.repeat(np.arange(len(vertices)), degrees)
        # Edge positions: ranges [starts[i], starts[i]+degrees[i]) laid
        # out consecutively.  positions[k] = starts[row(k)] + k - out_start
        # of row(k), computed without a Python loop.
        row_starts = np.zeros(len(vertices), dtype=np.int64)
        np.cumsum(degrees[:-1], out=row_starts[1:])
        positions = np.arange(total, dtype=np.int64) + np.repeat(
            starts - row_starts, degrees
        )
        return self.indices[positions], origin

    # -------------------------------------------------------- conversions
    @classmethod
    def from_edges(
        cls,
        sources: np.ndarray | Sequence[int],
        targets: np.ndarray | Sequence[int],
        n_vertices: int,
        dedup: bool = True,
        drop_self_loops: bool = True,
    ) -> "CSRGraph":
        """Build a CSR from an edge list (COO)."""
        src = np.asarray(sources, dtype=np.int64)
        dst = np.asarray(targets, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("sources and targets must have equal length")
        if len(src) and (
            src.min() < 0
            or dst.min() < 0
            or src.max() >= n_vertices
            or dst.max() >= n_vertices
        ):
            raise ValueError("edge endpoint out of range")
        if drop_self_loops:
            keep = src != dst
            src, dst = src[keep], dst[keep]
        if dedup and len(src):
            keys = src * n_vertices + dst
            _, unique_idx = np.unique(keys, return_index=True)
            src, dst = src[unique_idx], dst[unique_idx]
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        indptr = np.zeros(n_vertices + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, dst.astype(np.int32), n_global=n_vertices)

    def to_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the (sources, targets) COO arrays."""
        degrees = np.diff(self.indptr)
        sources = np.repeat(np.arange(self.n_vertices, dtype=np.int64), degrees)
        return sources, self.indices.astype(np.int64)

    def reverse(self) -> "CSRGraph":
        """Transpose: a CSR of in-edges (used by pull-direction BFS)."""
        src, dst = self.to_edges()
        return CSRGraph.from_edges(
            dst, src, self.n_global, dedup=False, drop_self_loops=False
        )

    def symmetrized(self) -> "CSRGraph":
        """Union of the graph and its transpose (undirected view)."""
        src, dst = self.to_edges()
        return CSRGraph.from_edges(
            np.concatenate([src, dst]),
            np.concatenate([dst, src]),
            self.n_global,
            dedup=True,
        )

    # -------------------------------------------------------- partitions
    def row_subgraph(self, rows: np.ndarray) -> "CSRGraph":
        """CSR containing only the given rows (columns stay global).

        This is how a graph is distributed across PEs: each PE owns a
        set of rows and stores their full adjacency with global column
        ids, exactly as the paper's per-GPU partitions do.
        """
        rows = np.asarray(rows, dtype=np.int64)
        targets, origin = self.expand_batch(rows)
        degrees = self.indptr[rows + 1] - self.indptr[rows]
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        del origin  # adjacency already ordered by construction
        return CSRGraph(indptr, targets, n_global=self.n_global)

    # ------------------------------------------------------------- misc
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CSRGraph(n={self.n_vertices}, m={self.n_edges}, "
            f"n_global={self.n_global})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.n_global == other.n_global
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:
        return hash(
            (self.n_global, self.indptr.tobytes(), self.indices.tobytes())
        )
