"""Graph file I/O: edge lists and Matrix Market.

Lets a downstream user run the framework on real datasets (the
paper's soc-LiveJournal1 etc. are distributed as Matrix Market /
edge-list files) instead of the synthetic stand-ins.

Formats:

* **edge list** — one ``src dst [weight]`` pair per line, ``#``
  comments; vertex ids are arbitrary non-negative integers and are
  kept as-is (the vertex count is ``max id + 1`` unless given).
* **Matrix Market** — ``%%MatrixMarket matrix coordinate`` headers,
  1-based indices, ``pattern`` (unweighted) or ``real`` entries, with
  ``symmetric`` expansion.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.graph.csr import CSRGraph
from repro.graph.weights import WeightedGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_matrix_market",
    "write_matrix_market",
]


class GraphIOError(ReproError):
    """A graph file could not be parsed."""


def read_edge_list(
    path: str | Path,
    n_vertices: int | None = None,
    weighted: bool = False,
) -> CSRGraph | WeightedGraph:
    """Parse a whitespace-separated edge list file."""
    src: list[int] = []
    dst: list[int] = []
    weights: list[float] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        line = line.strip()
        if not line or line.startswith(("#", "%")):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphIOError(f"{path}:{lineno}: need 'src dst [w]'")
        try:
            src.append(int(parts[0]))
            dst.append(int(parts[1]))
            if weighted:
                weights.append(float(parts[2]) if len(parts) > 2 else 1.0)
        except (ValueError, IndexError) as exc:
            raise GraphIOError(f"{path}:{lineno}: {exc}") from exc
    if not src:
        raise GraphIOError(f"{path}: no edges found")
    if min(min(src), min(dst)) < 0:
        raise GraphIOError(f"{path}: negative vertex id")
    n = n_vertices if n_vertices is not None else max(max(src), max(dst)) + 1
    if weighted:
        # Weighted: keep duplicates out, weights aligned via lexsort
        # (mirror CSRGraph.from_edges's ordering without dedup).
        src_a = np.asarray(src, dtype=np.int64)
        dst_a = np.asarray(dst, dtype=np.int64)
        w_a = np.asarray(weights)
        keep = src_a != dst_a
        src_a, dst_a, w_a = src_a[keep], dst_a[keep], w_a[keep]
        order = np.lexsort((dst_a, src_a))
        graph = CSRGraph.from_edges(
            src_a[order], dst_a[order], n, dedup=False,
            drop_self_loops=False,
        )
        return WeightedGraph(graph, w_a[order])
    return CSRGraph.from_edges(src, dst, n)


def write_edge_list(
    graph: CSRGraph | WeightedGraph, path: str | Path
) -> None:
    """Write a graph as an edge list (with weights if present)."""
    weighted = isinstance(graph, WeightedGraph)
    csr = graph.graph if weighted else graph
    src, dst = csr.to_edges()
    lines = [f"# {csr.n_vertices} vertices, {csr.n_edges} edges"]
    if weighted:
        lines.extend(
            f"{s} {d} {w:.17g}"
            for s, d, w in zip(src, dst, graph.weights)
        )
    else:
        lines.extend(f"{s} {d}" for s, d in zip(src, dst))
    Path(path).write_text("\n".join(lines) + "\n")


def read_matrix_market(path: str | Path) -> CSRGraph | WeightedGraph:
    """Parse a Matrix Market coordinate file into a graph."""
    lines = Path(path).read_text().splitlines()
    if not lines or not lines[0].startswith("%%MatrixMarket"):
        raise GraphIOError(f"{path}: missing MatrixMarket header")
    header = lines[0].split()
    if len(header) < 5 or header[1] != "matrix" or header[2] != "coordinate":
        raise GraphIOError(f"{path}: only coordinate matrices supported")
    field, symmetry = header[3], header[4]
    if field not in ("pattern", "real", "integer"):
        raise GraphIOError(f"{path}: unsupported field {field!r}")

    body = [
        line for line in lines[1:]
        if line.strip() and not line.startswith("%")
    ]
    try:
        rows, cols, _nnz = map(int, body[0].split())
    except (ValueError, IndexError) as exc:
        raise GraphIOError(f"{path}: bad size line") from exc
    n = max(rows, cols)
    src, dst, weights = [], [], []
    for entry in body[1:]:
        parts = entry.split()
        i, j = int(parts[0]) - 1, int(parts[1]) - 1  # 1-based
        w = float(parts[2]) if field != "pattern" and len(parts) > 2 else 1.0
        src.append(i)
        dst.append(j)
        weights.append(w)
        if symmetry == "symmetric" and i != j:
            src.append(j)
            dst.append(i)
            weights.append(w)
    if not src:
        raise GraphIOError(f"{path}: no entries")
    if field == "pattern":
        return CSRGraph.from_edges(src, dst, n)
    src_a = np.asarray(src, dtype=np.int64)
    dst_a = np.asarray(dst, dtype=np.int64)
    w_a = np.asarray(weights)
    keep = src_a != dst_a
    src_a, dst_a, w_a = src_a[keep], dst_a[keep], w_a[keep]
    order = np.lexsort((dst_a, src_a))
    graph = CSRGraph.from_edges(
        src_a[order], dst_a[order], n, dedup=False, drop_self_loops=False
    )
    return WeightedGraph(graph, w_a[order])


def write_matrix_market(
    graph: CSRGraph | WeightedGraph, path: str | Path
) -> None:
    """Write a graph as a (general, 1-based) Matrix Market file."""
    weighted = isinstance(graph, WeightedGraph)
    csr = graph.graph if weighted else graph
    src, dst = csr.to_edges()
    field = "real" if weighted else "pattern"
    lines = [
        f"%%MatrixMarket matrix coordinate {field} general",
        f"{csr.n_vertices} {csr.n_vertices} {csr.n_edges}",
    ]
    if weighted:
        lines.extend(
            f"{s + 1} {d + 1} {w:.17g}"
            for s, d, w in zip(src, dst, graph.weights)
        )
    else:
        lines.extend(f"{s + 1} {d + 1}" for s, d in zip(src, dst))
    Path(path).write_text("\n".join(lines) + "\n")
