"""Graph partitioners: assign each vertex to a PE (GPU).

The paper partitions every dataset with Metis for all frameworks
(random for twitter50, which Metis could not handle at scale).  We
provide:

* :func:`random_partition` — uniform random ownership (the paper's
  twitter50 fallback).
* :func:`block_partition` — contiguous vertex ranges (the layout most
  distributed frameworks default to).
* :func:`bfs_grow_partition` — a "metis-like" edge-cut-reducing
  partitioner: seeds one region per PE and grows them breadth-first,
  balancing region sizes.  On mesh graphs this produces the compact,
  low-cut regions Metis would.

A partition is an ``owner`` array: ``owner[v]`` is the PE that owns
vertex ``v``.  :class:`Partition` wraps it with the derived per-PE
index structures every driver needs (global→local renumbering and the
per-PE row subgraphs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph

__all__ = [
    "Partition",
    "random_partition",
    "block_partition",
    "bfs_grow_partition",
    "edge_cut",
    "make_partition",
    "rehome_partition",
    "PARTITIONERS",
]


@dataclass(frozen=True)
class Partition:
    """Ownership map plus derived per-PE structures.

    Attributes
    ----------
    owner:
        ``int32[n]`` PE id per global vertex.
    n_parts:
        Number of PEs.
    local_index:
        ``int64[n]`` position of each global vertex within its owner's
        local numbering.
    part_vertices:
        For each PE, the ascending array of global vertex ids it owns.
    subgraphs:
        For each PE, the row subgraph of its owned vertices (columns
        remain global ids).
    """

    owner: np.ndarray
    n_parts: int
    local_index: np.ndarray
    part_vertices: list[np.ndarray]
    subgraphs: list[CSRGraph]

    @property
    def n_vertices(self) -> int:
        return len(self.owner)

    def part_size(self, pe: int) -> int:
        return len(self.part_vertices[pe])

    def balance(self) -> float:
        """Max part size over mean part size (1.0 = perfectly balanced)."""
        sizes = np.array([len(p) for p in self.part_vertices], dtype=float)
        mean = sizes.mean()
        return float(sizes.max() / mean) if mean > 0 else 1.0


def make_partition(graph: CSRGraph, owner: np.ndarray, n_parts: int) -> Partition:
    """Build the :class:`Partition` bundle from an ownership array."""
    owner = np.asarray(owner, dtype=np.int32)
    if len(owner) != graph.n_vertices:
        raise PartitionError("owner array length != vertex count")
    if n_parts < 1:
        raise PartitionError("need at least one part")
    if len(owner) and (owner.min() < 0 or owner.max() >= n_parts):
        raise PartitionError("owner id out of range")
    local_index = np.zeros(graph.n_vertices, dtype=np.int64)
    part_vertices: list[np.ndarray] = []
    subgraphs: list[CSRGraph] = []
    for pe in range(n_parts):
        mine = np.flatnonzero(owner == pe)
        local_index[mine] = np.arange(len(mine))
        part_vertices.append(mine)
        subgraphs.append(graph.row_subgraph(mine))
    return Partition(
        owner=owner,
        n_parts=n_parts,
        local_index=local_index,
        part_vertices=part_vertices,
        subgraphs=subgraphs,
    )


def random_partition(
    graph: CSRGraph, n_parts: int, seed: int = 0
) -> Partition:
    """Uniform random ownership (what the paper uses for twitter50)."""
    rng = np.random.default_rng(seed)
    owner = rng.integers(0, n_parts, graph.n_vertices, dtype=np.int32)
    # Guarantee no empty part (possible on tiny graphs).
    for pe in range(min(n_parts, graph.n_vertices)):
        if not np.any(owner == pe):
            owner[rng.integers(0, graph.n_vertices)] = pe
    return make_partition(graph, owner, n_parts)


def block_partition(graph: CSRGraph, n_parts: int) -> Partition:
    """Contiguous equal-size vertex ranges."""
    if n_parts > graph.n_vertices:
        raise PartitionError("more parts than vertices")
    owner = np.minimum(
        np.arange(graph.n_vertices) * n_parts // graph.n_vertices,
        n_parts - 1,
    ).astype(np.int32)
    return make_partition(graph, owner, n_parts)


def bfs_grow_partition(
    graph: CSRGraph, n_parts: int, seed: int = 0
) -> Partition:
    """Metis-like partitioner: grow balanced regions breadth-first.

    Seeds ``n_parts`` starting vertices spread across the graph, then
    repeatedly lets the currently-smallest region absorb the unassigned
    neighbors of its boundary.  Produces compact regions with low edge
    cut on mesh graphs, qualitatively like Metis.
    """
    n = graph.n_vertices
    if n_parts > n:
        raise PartitionError("more parts than vertices")
    if n_parts == 1:
        return make_partition(graph, np.zeros(n, dtype=np.int32), 1)
    und = graph.symmetrized()
    from repro.graph.stats import bfs_levels, UNREACHED

    owner = np.full(n, -1, dtype=np.int32)
    # Seed inside the main component: start from the highest-degree
    # vertex, then repeatedly take the farthest *reachable* vertex from
    # all current seeds, so every region gets a foothold in the giant
    # component instead of being stranded on an isolated fragment.
    degrees = np.diff(und.indptr)
    seeds = [int(np.argmax(degrees))]
    dist = bfs_levels(und, seeds[0]).astype(np.float64)
    dist[dist == UNREACHED] = -1.0
    dist[seeds[0]] = -1.0
    rng = np.random.default_rng(seed)
    for _ in range(n_parts - 1):
        if dist.max() <= 0:
            # Main component exhausted: seed any unassigned vertex.
            candidates = [v for v in range(n) if v not in seeds]
            next_seed = int(rng.choice(candidates))
        else:
            next_seed = int(np.argmax(dist))
        seeds.append(next_seed)
        d2 = bfs_levels(und, next_seed).astype(np.float64)
        d2[d2 == UNREACHED] = -1.0
        dist = np.minimum(dist, d2)
        dist[next_seed] = -1.0

    frontiers: list[np.ndarray] = []
    for pe, s in enumerate(seeds):
        owner[s] = pe
        frontiers.append(np.array([s], dtype=np.int64))

    # Grow regions breadth-first, smallest region first, capped at the
    # balanced size so one region cannot swallow the whole component.
    cap = -(-n // n_parts)  # ceil(n / n_parts)
    sizes = np.ones(n_parts, dtype=np.int64)
    remaining = n - n_parts
    stalled = np.zeros(n_parts, dtype=bool)
    while remaining > 0:
        growable = ~stalled & (sizes < cap)
        if not growable.any():
            # Capped/disconnected leftovers: round-robin to smallest.
            left = np.flatnonzero(owner == -1)
            order = np.argsort(sizes)
            for i, v in enumerate(left):
                pe = int(order[i % n_parts])
                owner[v] = pe
                sizes[pe] += 1
            remaining = 0
            break
        pe = int(
            np.argmin(np.where(growable, sizes, np.iinfo(np.int64).max))
        )
        if len(frontiers[pe]) == 0:
            stalled[pe] = True
            continue
        targets, _ = und.expand_batch(frontiers[pe])
        fresh = np.unique(targets[owner[targets] == -1])
        if len(fresh) == 0:
            stalled[pe] = True
            frontiers[pe] = np.empty(0, dtype=np.int64)
            continue
        room = cap - sizes[pe]
        absorbed = fresh[:room] if len(fresh) > room else fresh
        owner[absorbed] = pe
        sizes[pe] += len(absorbed)
        remaining -= len(absorbed)
        frontiers[pe] = absorbed.astype(np.int64)
        stalled[:] = False  # new assignments may unblock others
    return make_partition(graph, owner, n_parts)


def rehome_partition(
    graph: CSRGraph,
    partition: Partition,
    dead: frozenset | set,
    seed: int = 0,
) -> Partition:
    """Reassign dead ranks' vertices to survivors by rendezvous hashing.

    Highest-random-weight assignment: each orphaned vertex goes to the
    surviving rank with the largest ``hash(seed, vertex, rank)`` weight.
    Survivor-owned vertices never move (the minimal-disruption property
    rendezvous hashing exists for), the orphans spread evenly across
    survivors, and the result is a pure function of (partition, dead
    set, seed) — every recovering replica computes the same map with no
    coordination.
    """
    import hashlib
    import struct

    survivors = [pe for pe in range(partition.n_parts) if pe not in dead]
    if not survivors:
        raise PartitionError("no surviving ranks to re-home onto")
    if not dead:
        return partition
    owner = partition.owner.copy()
    orphans = np.flatnonzero(np.isin(owner, sorted(dead)))
    for v in orphans:
        best_pe, best_weight = -1, -1
        for pe in survivors:
            packed = struct.pack("<3q", seed, int(v), pe)
            weight = int.from_bytes(
                hashlib.blake2b(packed, digest_size=8).digest(), "little"
            )
            if weight > best_weight:
                best_pe, best_weight = pe, weight
        owner[v] = best_pe
    # n_parts is unchanged: dead ranks keep their (now empty) slots so
    # rank ids stay stable for the fabric and the surviving queues.
    return make_partition(graph, owner, partition.n_parts)


def edge_cut(graph: CSRGraph, partition: Partition) -> int:
    """Number of edges whose endpoints live on different PEs."""
    src, dst = graph.to_edges()
    return int(np.sum(partition.owner[src] != partition.owner[dst]))


#: Named partitioner registry used by the harness.
PARTITIONERS: dict[str, Callable[..., Partition]] = {
    "random": random_partition,
    "block": lambda graph, n_parts, seed=0: block_partition(graph, n_parts),
    "metis-like": bfs_grow_partition,
}
