"""Graph statistics used to build (scaled) Table I.

Diameter is estimated with the standard double-sweep lower bound (BFS
from an arbitrary vertex, then BFS from the farthest vertex found);
exact diameters of the paper's datasets are themselves approximate
("Diam." column of Table I), so a lower-bound estimate is appropriate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["GraphStats", "bfs_levels", "estimate_diameter", "graph_stats",
           "largest_component_vertex", "connected_component_sizes"]

UNREACHED = np.iinfo(np.int32).max


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """Level-synchronous CPU BFS; returns per-vertex depth (UNREACHED if not).

    Serves as the validation oracle for every simulated BFS.
    """
    depth = np.full(graph.n_vertices, UNREACHED, dtype=np.int32)
    depth[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while len(frontier):
        targets, _ = graph.expand_batch(frontier)
        targets = targets[depth[targets] == UNREACHED]
        if len(targets) == 0:
            break
        frontier = np.unique(targets).astype(np.int64)
        level += 1
        depth[frontier] = level
    return depth


def estimate_diameter(graph: CSRGraph, source: int = 0) -> int:
    """Double-sweep diameter lower bound within source's component."""
    depth = bfs_levels(graph, source)
    reached = depth != UNREACHED
    if not reached.any():
        return 0
    far = int(np.argmax(np.where(reached, depth, -1)))
    depth2 = bfs_levels(graph, far)
    reached2 = depth2 != UNREACHED
    return int(np.max(depth2[reached2]))


def connected_component_sizes(graph: CSRGraph) -> list[int]:
    """Sizes of weakly-connected components (graph treated undirected)."""
    und = graph.symmetrized()
    seen = np.zeros(und.n_vertices, dtype=bool)
    sizes = []
    for start in range(und.n_vertices):
        if seen[start]:
            continue
        depth = bfs_levels(und, start)
        comp = depth != UNREACHED
        comp &= ~seen
        sizes.append(int(comp.sum()))
        seen |= depth != UNREACHED
    return sorted(sizes, reverse=True)


def largest_component_vertex(graph: CSRGraph, sample: int = 8) -> int:
    """A vertex inside (very likely) the largest weakly-connected component.

    BFS sources for experiments must reach most of the graph; sampling a
    few candidate sources and keeping the one reaching farthest is cheap
    and deterministic.
    """
    best_vertex, best_reach = 0, -1
    degrees = np.asarray(graph.out_degree())
    candidates = np.argsort(degrees)[::-1][:sample]
    und = graph.symmetrized()
    for v in candidates:
        reach = int((bfs_levels(und, int(v)) != UNREACHED).sum())
        if reach > best_reach:
            best_vertex, best_reach = int(v), reach
    return best_vertex


@dataclass(frozen=True, slots=True)
class GraphStats:
    """The Table I columns for one dataset."""

    name: str
    n_vertices: int
    n_edges: int
    diameter: int
    max_in_degree: int
    max_out_degree: int
    avg_degree: float
    graph_type: str  # "scale-free" | "mesh-like"


def graph_stats(
    name: str, graph: CSRGraph, graph_type: str, source: int = 0
) -> GraphStats:
    """Compute the Table I row for ``graph``."""
    out_deg = np.asarray(graph.out_degree())
    in_deg = np.zeros(graph.n_vertices, dtype=np.int64)
    np.add.at(in_deg, graph.indices, 1)
    return GraphStats(
        name=name,
        n_vertices=graph.n_vertices,
        n_edges=graph.n_edges,
        diameter=estimate_diameter(graph, source),
        max_in_degree=int(in_deg.max()) if graph.n_edges else 0,
        max_out_degree=int(out_deg.max()) if graph.n_edges else 0,
        avg_degree=float(graph.n_edges / max(1, graph.n_vertices)),
        graph_type=graph_type,
    )
