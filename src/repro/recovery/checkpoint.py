"""Epoch-stamped consistent checkpoints of a quiesced run.

A :class:`Checkpoint` is taken only at a *consistent cut*: every rank
parked at the coordinator's barrier, every aggregation/segment buffer
force-flushed, and the fabric + reliable transport fully drained.  At
that instant the entire global state of the computation is exactly (a)
the application's vertex arrays and (b) the queued frontier per rank —
no update is in flight, no token is leased — so the snapshot is a pure
value, content-addressable by hash.

:class:`CheckpointStore` persists checkpoints through the same
atomic-write + SHA-256-checksum machinery as the run cache
(:class:`repro.harness.cache.RunCache`), keyed by checkpoint content
digest.  Persistence is optional: the recovery coordinator always keeps
the latest checkpoint in memory (rollback never does disk IO inside the
simulated hot path), the store exists for post-mortem inspection and
the determinism suite.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from repro.runtime.termination import TrackerSnapshot

__all__ = ["Checkpoint", "CheckpointStore"]


@dataclass(frozen=True)
class Checkpoint:
    """One consistent snapshot of a quiesced run.

    Attributes
    ----------
    epoch:
        Monotone checkpoint counter (epoch 0 is the post-seed state).
    sim_time:
        Simulation time (us) the cut was taken at.
    app_state:
        The application's global arrays (e.g. ``{"depth": ...}`` for
        BFS, ``{"rank": ..., "residual": ...}`` for PageRank) —
        partition-independent, so restore can re-slice them onto a
        re-homed ownership map.
    frontier:
        Per-rank ``(tasks, priorities)`` queue snapshots; ``priorities``
        is ``None`` for FIFO variants.  Tasks are global vertex ids, so
        a restored frontier can be re-routed to new owners.
    tracker:
        The work tracker's counts at the cut.  At a consistent cut the
        outstanding count equals the total queued tasks — verified at
        snapshot time.
    owned_ranks:
        ``None`` for whole-run recovery snapshots.  Set by the
        partitioned drivers' window-barrier snapshots
        (:meth:`repro.runtime.partitioned.PartitionReplica.snapshot_state`)
        to the replica's owned ranks — those snapshots cover one
        partition's slice, not a quiesced global cut, and the field
        keeps two partitions' otherwise-empty snapshots from
        colliding.  Excluded from :meth:`digest` when ``None`` so
        existing recovery digests are unchanged.
    """

    epoch: int
    sim_time: float
    app_state: dict[str, np.ndarray]
    frontier: tuple[tuple[np.ndarray, Optional[np.ndarray]], ...]
    tracker: TrackerSnapshot
    owned_ranks: Optional[tuple[int, ...]] = None

    @property
    def total_tasks(self) -> int:
        """Total queued tasks across all ranks at the cut."""
        return sum(len(tasks) for tasks, _ in self.frontier)

    @property
    def nbytes(self) -> int:
        """Bytes of array state the snapshot holds."""
        total = sum(a.nbytes for a in self.app_state.values())
        for tasks, priorities in self.frontier:
            total += tasks.nbytes
            if priorities is not None:
                total += priorities.nbytes
        return total

    def digest(self) -> str:
        """SHA-256 over the checkpoint's canonical content.

        Two runs that reach the same cut produce the same digest — the
        determinism suite pins this across repeats and across serial vs
        pooled execution.
        """
        h = hashlib.sha256()
        h.update(
            f"epoch={self.epoch}|t={self.sim_time!r}"
            f"|outstanding={self.tracker.outstanding}"
            f"|added={self.tracker.total_added}\n".encode()
        )
        if self.owned_ranks is not None:
            h.update(f"owned={self.owned_ranks!r}\n".encode())
        for name in sorted(self.app_state):
            array = self.app_state[name]
            h.update(f"{name}|{array.dtype}|{array.shape}\n".encode())
            h.update(np.ascontiguousarray(array).tobytes())
        for pe, (tasks, priorities) in enumerate(self.frontier):
            h.update(f"pe{pe}|{len(tasks)}\n".encode())
            h.update(np.ascontiguousarray(tasks).tobytes())
            if priorities is None:
                h.update(b"fifo\n")
            else:
                h.update(np.ascontiguousarray(priorities).tobytes())
        return h.hexdigest()


class CheckpointStore:
    """Content-addressed on-disk checkpoint storage.

    A thin layer over :class:`repro.harness.cache.RunCache`: entries
    are written atomically (temp file + ``os.replace``), carry an
    embedded payload checksum, and corrupt entries read back as misses
    — exactly the durability contract checkpoints need.
    """

    def __init__(self, directory: Path | str):
        # Imported here, not at module level: repro.harness pulls in the
        # whole experiment stack (including repro.runtime), and this
        # module sits below it in the layering.
        from repro.harness.cache import RunCache

        self.cache = RunCache(directory)

    def put(self, checkpoint: Checkpoint) -> str:
        """Persist a checkpoint; returns its content digest (the key)."""
        key = checkpoint.digest()
        self.cache.store(key, checkpoint)
        return key

    def get(self, key: str) -> Optional[Checkpoint]:
        """Fetch by digest; ``None`` on miss or corruption."""
        value = self.cache.load(key)
        return value if isinstance(value, Checkpoint) else None

    def keys(self) -> list[str]:
        """Digests of every stored checkpoint, sorted."""
        return [path.stem for path in self.cache.entries()]
