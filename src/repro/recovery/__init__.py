"""Fail-stop rank recovery: checkpoint/restore, re-homing, rerouting.

The fault layer (:mod:`repro.faults`) makes the runtime survive
*message-level* faults; this package makes it survive a whole GPU rank
dying.  The model is classic coordinated rollback recovery specialized
to the Atos runtime's idempotent relaxations:

* a :class:`~repro.faults.CrashEvent` in the fault plan fail-stops a
  rank at a deterministic sim time (it stops executing, acking, and
  serving its partition);
* the :class:`RecoveryCoordinator` takes periodic **consistent
  checkpoints** of the quiesced system (:class:`Checkpoint`, optionally
  persisted content-addressed via :class:`CheckpointStore`);
* on detection it **rolls back**: reclaims the dead rank's leased
  tokens, re-homes its partition by rendezvous hashing, replays the
  checkpoint frontier on the survivors, and continues in **degraded
  mode** with routes to the dead rank marked down.

Re-executing re-homed work is safe because the supported applications
relax monotonically (BFS atomic-min depths, PageRank residual pushes)
— the recovery protocol requires ``supports_recovery`` and the
checkpoint/restore methods on the application.  Fail-stop only: a
crashed rank never sends corrupt state (no Byzantine tolerance).
"""

from repro.recovery.checkpoint import Checkpoint, CheckpointStore
from repro.recovery.coordinator import RecoveryCoordinator, RecoveryPolicy

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "RecoveryCoordinator",
    "RecoveryPolicy",
]
