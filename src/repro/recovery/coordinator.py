"""The fail-stop recovery coordinator.

Runs as one extra DES process alongside the GPU processes and does
three jobs:

1. **Periodic consistent checkpoints.**  Every
   ``checkpoint_interval`` us the coordinator raises a barrier; each
   live rank parks at its :meth:`RecoveryCoordinator.rank_gate` at the
   top of its round loop.  Once all live ranks are parked the
   coordinator force-flushes segment buffers and aggregators, waits for
   the fabric and the reliable transport to drain (deliveries and acks
   run via callbacks while ranks are parked, and a parked rank enqueues
   but never sends, so the drain terminates), and snapshots: global app
   arrays, per-rank queued frontier, and the work tracker's counts.  At
   that cut the snapshot invariant holds — outstanding tokens equal
   queued tasks — which :meth:`_snapshot` asserts.  A crash observed
   mid-barrier aborts the attempt; the next tick recovers first.

2. **Failure detection.**  Every ``detect_interval`` us the coordinator
   polls the :class:`~repro.faults.injectors.DeviceFaultInjector` crash
   schedule (the model of a heartbeat failure detector — detection
   latency is one detect interval, not zero).  The reliable transport's
   retry-budget escalation is the second detection path: its
   ``on_exhausted`` hook lands in :meth:`note_exhausted`, which absorbs
   exhaustion against a rank that really fail-stopped and re-raises the
   typed error for a merely flaky link.

3. **Rollback recovery.**  :meth:`_recover` is synchronous state
   surgery at one sim instant: mark the dead rank's routes down,
   reclaim every leased in-flight token, bump the transport incarnation
   (packets still on the wire arrive fenced), drop buffered
   communication, re-home the dead rank's partition onto survivors by
   rendezvous hashing, restore app arrays and tracker counts from the
   last checkpoint, rebuild the queues, and re-enqueue the checkpoint
   frontier grouped by its *new* owners.  The run then continues in
   degraded mode on the surviving ranks.

Everything here is constructed only when the fault plan schedules at
least one crash, so a crash-free configuration runs the exact pre-
recovery code path (pinned by golden-trace digest equality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.errors import (
    ConfigurationError,
    RecoveryError,
    RetryBudgetExhausted,
)
from repro.graph.partition import rehome_partition
from repro.recovery.checkpoint import Checkpoint, CheckpointStore

__all__ = ["RecoveryPolicy", "RecoveryCoordinator"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs of the checkpoint/recovery layer.

    All times in simulated us.  ``store_dir`` optionally persists every
    checkpoint through the content-addressed
    :class:`~repro.recovery.checkpoint.CheckpointStore`; the in-memory
    latest checkpoint is authoritative either way.
    """

    #: Target gap between consistent checkpoints.
    checkpoint_interval: float = 200.0
    #: Failure-detector polling period (the modeled heartbeat).
    detect_interval: float = 20.0
    #: Polling period while parking ranks / draining the fabric.
    drain_poll: float = 2.0
    #: Optional directory for persisted checkpoint objects.
    store_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.checkpoint_interval <= 0:
            raise ConfigurationError("checkpoint_interval must be positive")
        if self.detect_interval <= 0:
            raise ConfigurationError("detect_interval must be positive")
        if self.drain_poll <= 0:
            raise ConfigurationError("drain_poll must be positive")


class RecoveryCoordinator:
    """Checkpoints, detects, and recovers fail-stopped ranks."""

    def __init__(self, executor: Any, policy: RecoveryPolicy):
        if executor.device_faults is None or executor.transport is None:
            raise ConfigurationError(
                "recovery requires an active fault plan (crash schedule "
                "and reliable transport)"
            )
        if not getattr(executor.app, "supports_recovery", False):
            raise ConfigurationError(
                f"application {executor.app.name!r} does not implement the "
                "checkpoint/restore protocol"
            )
        self.executor = executor
        self.policy = policy
        self.env = executor.env
        self.tracker = executor.tracker
        self.counters = executor.counters
        self.n_ranks: int = executor.machine.n_gpus
        self._rehome_seed: int = executor.fault_plan.seed
        self.store: Optional[CheckpointStore] = (
            CheckpointStore(policy.store_dir) if policy.store_dir else None
        )
        #: Ranks already detected and recovered around.
        self.dead: set[int] = set()
        #: Ranks the transport escalated (ack exhaustion) before the
        #: detector's poll noticed them.
        self._suspect: set[int] = set()
        self.last_checkpoint: Optional[Checkpoint] = None
        #: Content digest of every checkpoint, in epoch order (the
        #: determinism suite compares these across runs).
        self.checkpoint_digests: list[str] = []
        self._epoch = 0
        self._barrier_release: Optional[Any] = None
        self._parked: set[int] = set()

    # ----------------------------------------------------------- liveness
    def rank_failed(self, pe: int) -> bool:
        """Ground truth: has ``pe`` fail-stopped per the crash schedule?"""
        return self.executor.device_faults.is_crashed(pe, self.env.now)

    def alive_for_transport(self, pe: int, now: float) -> bool:
        """Transport liveness oracle: a fail-stopped rank cannot ack."""
        return not self.executor.device_faults.is_crashed(pe, now)

    def note_exhausted(self, error: RetryBudgetExhausted) -> None:
        """Transport escalation: dead receiver is ours, flaky link isn't."""
        if self.executor.device_faults.is_crashed(error.dst, self.env.now):
            self._suspect.add(error.dst)
            return
        raise error

    def _failed_undetected(self) -> list[int]:
        return sorted(
            pe
            for pe in range(self.n_ranks)
            if pe not in self.dead
            and (self.rank_failed(pe) or pe in self._suspect)
        )

    def alive_ranks(self) -> list[int]:
        """Ranks not yet recovered around (may include undetected dead)."""
        return [pe for pe in range(self.n_ranks) if pe not in self.dead]

    # ------------------------------------------------------------ barrier
    def rank_gate(self, pe: int):
        """Per-round gate each GPU process runs at its loop top.

        Returns False when the rank has fail-stopped (the process must
        exit).  While a checkpoint barrier is up, parks the rank until
        the coordinator releases it.
        """
        if self.rank_failed(pe):
            return False
        telemetry = self.executor.telemetry
        while self._barrier_release is not None:
            release = self._barrier_release
            self._parked.add(pe)
            parked_at = self.executor.env.now
            yield release
            if telemetry is not None:
                telemetry.span(
                    pe,
                    "recovery",
                    parked_at,
                    self.executor.env.now,
                    "barrier-park",
                )
            self._parked.discard(pe)
            if self.rank_failed(pe):
                return False
        return True

    # ---------------------------------------------------------- lifecycle
    def bootstrap(self) -> None:
        """Epoch-0 checkpoint, taken right after seeding.

        The system is trivially quiescent before any process runs, so
        this is a plain synchronous snapshot — and it guarantees
        recovery always has a checkpoint to roll back to, even for a
        crash before the first periodic epoch.
        """
        self._snapshot()

    def run(self):
        """The coordinator DES process (spawned by the executor)."""
        interval = self.policy.checkpoint_interval
        next_checkpoint = self.env.now + interval
        while not self.tracker.finished:
            yield self.env.timeout(self.policy.detect_interval)
            if self.tracker.finished:
                return
            if self._failed_undetected():
                self._recover()
                next_checkpoint = self.env.now + interval
                continue
            if self.env.now >= next_checkpoint:
                yield from self._take_checkpoint()
                next_checkpoint = self.env.now + interval

    # -------------------------------------------------------- checkpoint
    def _take_checkpoint(self):
        """Barrier, flush, drain, snapshot (a DES sub-generator).

        Returns True if a checkpoint was taken; False if the attempt
        was aborted (crash observed mid-barrier, or the run finished).
        """
        ex = self.executor
        env = self.env
        release = env.event()
        self._parked = set()
        self._barrier_release = release
        ok = False
        try:
            while True:
                if self.tracker.finished or self._failed_undetected():
                    break
                expected = {
                    pe
                    for pe in range(self.n_ranks)
                    if pe not in self.dead and not self.rank_failed(pe)
                }
                if expected <= self._parked:
                    ok = True
                    break
                yield env.timeout(self.policy.drain_poll)
            if ok:
                # All live ranks parked at one sim instant: push every
                # buffered update onto the wire, then wait for the wire
                # (and the transport's ack window) to empty.
                for pe in sorted(expected):
                    ex._flush_segment(pe)
                    if ex.aggregators is not None:
                        ex.aggregators[pe].flush_all()
                while not (
                    ex.fabric.in_flight == 0 and ex.transport.quiescent
                ):
                    if self.tracker.finished or self._failed_undetected():
                        ok = False
                        break
                    yield env.timeout(self.policy.drain_poll)
            if ok:
                self._snapshot()
        finally:
            self._barrier_release = None
            release.succeed(None)
        return ok

    def _snapshot(self) -> None:
        """Record the current (quiesced) global state as a checkpoint."""
        ex = self.executor
        if ex.ledger is not None and ex.ledger.leased:
            raise RecoveryError(
                f"snapshot of a non-quiescent cut: {ex.ledger.leased} "
                "token(s) still leased"
            )
        frontier = tuple(
            ex.queues[pe].snapshot() for pe in range(self.n_ranks)
        )
        snap = ex.tracker.snapshot()
        total = sum(len(tasks) for tasks, _ in frontier)
        if total != snap.outstanding:
            raise RecoveryError(
                f"inconsistent cut: {total} queued task(s) vs "
                f"{snap.outstanding} outstanding token(s)"
            )
        checkpoint = Checkpoint(
            epoch=self._epoch,
            sim_time=self.env.now,
            app_state=ex.app.checkpoint_state(),
            frontier=frontier,
            tracker=snap,
        )
        self._epoch += 1
        self.last_checkpoint = checkpoint
        self.checkpoint_digests.append(checkpoint.digest())
        self.counters["recovery_checkpoints_taken"] += 1
        self.counters["recovery_bytes_snapshotted"] += checkpoint.nbytes
        if self.store is not None:
            self.store.put(checkpoint)

    # ---------------------------------------------------------- recovery
    def _recover(self) -> None:
        """Roll back to the last checkpoint around newly dead ranks.

        Synchronous state surgery — no sim time passes, so every other
        process observes either the pre-recovery or the post-recovery
        state, never a half-rebuilt one.
        """
        ex = self.executor
        newly = self._failed_undetected()
        if not newly:
            return
        checkpoint = self.last_checkpoint
        if checkpoint is None:
            raise RecoveryError("no checkpoint to roll back to")
        for pe in newly:
            self.dead.add(pe)
            ex.fabric.topology.mark_rank_down(pe)
        self._suspect.clear()
        alive = self.alive_ranks()
        if not alive:
            raise RecoveryError("every rank has fail-stopped")

        # 1. Void all in-flight state.  Reclaim bypasses the tracker
        # (restore below re-derives its count); the incarnation bump
        # fences whatever is still on the wire.
        reclaimed = ex.transport.reclaim_pending()
        ex.transport.incarnation += 1
        if ex.ledger.leased:
            raise RecoveryError(
                f"{ex.ledger.leased} token(s) still leased after reclaim"
            )
        for buffers in ex._segment_buffers:
            buffers.clear()
        if ex.aggregators is not None:
            for aggregator in ex.aggregators:
                aggregator.reset()

        # 2. Re-home ownership and roll application state back.
        partition = rehome_partition(
            ex.app.graph,
            ex.app.partition,
            frozenset(self.dead),
            seed=self._rehome_seed,
        )
        ex.app.restore_state(checkpoint.app_state, partition)

        # 3. Fresh queues, tracker rollback, frontier replay routed to
        # the new owners.
        ex.queues = ex._make_queues()
        ex.tracker.restore(checkpoint.tracker)
        tasks_parts = [t for t, _ in checkpoint.frontier if len(t)]
        prio_parts = [
            p for t, p in checkpoint.frontier if len(t) and p is not None
        ]
        if tasks_parts:
            all_tasks = np.concatenate(tasks_parts)
            all_prios = (
                np.concatenate(prio_parts)
                if len(prio_parts) == len(tasks_parts)
                else None
            )
        else:
            all_tasks = np.empty(0, dtype=np.int64)
            all_prios = None
        owners = partition.owner[all_tasks]
        replayed = 0
        for pe in alive:
            mine = owners == pe
            count = int(mine.sum())
            if count == 0:
                continue
            tasks = all_tasks[mine]
            priorities = all_prios[mine] if all_prios is not None else None
            ex._enqueue_local(pe, tasks, priorities)
            ex.app.mark_queued(pe, tasks)
            ex._notify(pe)
            replayed += count
        if replayed != checkpoint.tracker.outstanding:
            raise RecoveryError(
                f"replayed {replayed} task(s) but the checkpoint holds "
                f"{checkpoint.tracker.outstanding} outstanding token(s)"
            )

        self.counters["recovery_ranks_recovered"] += len(newly)
        self.counters["recovery_tokens_reclaimed"] += reclaimed
        self.counters["recovery_replay_messages"] += replayed

        # 4. The post-recovery state is itself a consistent cut (nothing
        # leased, queues exactly the replayed frontier): snapshot it so
        # a later crash rolls back here instead of replaying this
        # recovery's work again.
        self._snapshot()
