"""Command-line interface: run experiments without writing code.

Mirrors the paper artifact's scripts (``figure5_prio.sh`` etc.) as
subcommands::

    python -m repro datasets                    # Table I
    python -m repro run --framework atos-standard-persistent \\
        --app bfs --dataset road-usa --machine daisy --gpus 4
    python -m repro table2 [--quick] [--jobs 4] # any table/figure
    python -m repro fig1
    python -m repro topology daisy
    python -m repro cache stats                 # persistent run cache
    python -m repro bench --quick               # data-path perf cells
    python -m repro engine-bench --quick        # event-engine queue cells
    python -m repro chaos --verify-inert        # fault-injection grid
    python -m repro pdes-chaos --quick          # worker-kill grid (PDES)
    python -m repro profile --export trace.json # span tracing / crit path
    python -m repro serve --workers 4           # simulation-as-a-service
    python -m repro submit --framework ... --app bfs --dataset road-usa
    python -m repro watch j00001                # stream job events
    python -m repro serve-validate              # queueing self-validation

Every experiment subcommand prints the paper-style table to stdout.
Grid subcommands take ``--jobs N`` (0 = one worker per CPU; default
``$REPRO_JOBS`` or serial) and ``--timeout SECONDS`` per run; repeated
invocations are served from the persistent cache (``REPRO_CACHE_DIR``
to relocate it, ``REPRO_CACHE=0`` to disable).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro._version import __version__

__all__ = ["main", "build_parser"]

QUICK_DATASETS = ["soc-livejournal1", "road-usa"]
QUICK_NVLINK = (1, 4)
QUICK_IB = (1, 4, 8)


def _grid_args(quick: bool, ib: bool = False):
    if not quick:
        return None, None
    return QUICK_DATASETS, (QUICK_IB if ib else QUICK_NVLINK)


def _pool_kwargs(args: argparse.Namespace) -> dict:
    """--jobs / --timeout / --seed as kwargs for the grid functions."""
    return {
        "jobs": getattr(args, "jobs", None),
        "timeout_s": getattr(args, "timeout", None),
        "seed": getattr(args, "seed", 0),
    }


# ------------------------------------------------------------- commands
def _cmd_datasets(args: argparse.Namespace) -> int:
    from repro.harness import table1_datasets

    print(table1_datasets())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.partitions > 1:
        result = _run_partitioned_cell(args)
    else:
        from repro.harness import run

        result = run(
            args.framework, args.app, args.dataset, args.machine, args.gpus,
            seed=args.seed,
        )
    print(
        f"{result.framework} {result.app} on {result.dataset} "
        f"({args.machine}, {result.n_gpus} GPUs): {result.time_ms:.3f} ms"
    )
    if args.counters:
        for key in sorted(result.counters):
            print(f"  {key:<28} {result.counters[key]:.0f}")
    return 0


def _run_partitioned_cell(args: argparse.Namespace):
    """``run --partitions N``: the partitioned engine instead of the
    serial one (atos-* frameworks only — the partitioned driver mirrors
    the Atos executor).  Simulated results are digest-identical to the
    serial path; what changes is host wall-clock."""
    from repro.graph import bfs_source, load
    from repro.harness.runner import (
        PR_EPSILON,
        get_driver,
        get_machine,
        get_partition,
    )
    from repro.runtime.partitioned import run_partitioned
    from repro.sim.partition import WindowStats

    driver = get_driver(args.framework)
    if not hasattr(driver, "kernel") or not hasattr(driver, "base_config"):
        raise SystemExit(
            f"--partitions requires an atos-* framework, got "
            f"{args.framework!r}"
        )
    graph = load(args.dataset)
    machine = get_machine(args.machine, args.gpus)
    partition = get_partition(args.dataset, args.gpus, args.seed)
    stats = WindowStats()
    result = run_partitioned(
        args.app,
        graph,
        partition,
        machine,
        n_partitions=args.partitions,
        driver=args.pdes_driver,
        source=bfs_source(args.dataset) if args.app == "bfs" else 0,
        epsilon=PR_EPSILON,
        dataset=args.dataset,
        kernel=driver.kernel,
        priority=driver.priority,
        variant_name=driver.name,
        base_config=driver.base_config,
        stats=stats,
    )
    print(
        f"partitioned ({args.pdes_driver}, {args.partitions} partitions): "
        f"{stats.windows} windows, {stats.total_exports} cross-partition "
        f"messages, {stats.idle_partition_windows} idle partition-windows"
    )
    if args.verify_digest:
        from repro.harness import run

        serial = run(
            args.framework, args.app, args.dataset, args.machine,
            args.gpus, seed=args.seed,
        )
        if result.digest() != serial.digest():
            raise SystemExit(
                f"digest mismatch vs serial: {result.digest()[:16]} != "
                f"{serial.digest()[:16]}"
            )
        print(f"digest matches serial: {result.digest()[:16]}")
    return result


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.harness import table2_bfs_nvlink

    datasets, gpus = _grid_args(args.quick)
    grid = table2_bfs_nvlink(
        datasets, gpus or (1, 2, 3, 4), **_pool_kwargs(args)
    )
    print(grid.render(baseline="gunrock"))
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from repro.graph import SCALE_FREE
    from repro.harness import table3_priority_workload

    datasets, gpus = _grid_args(args.quick)
    if datasets is not None:
        datasets = [d for d in datasets if d in SCALE_FREE]
    text, _ = table3_priority_workload(
        datasets, gpus or (1, 2, 3, 4), **_pool_kwargs(args)
    )
    print(text)
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    from repro.harness import table4_pagerank_nvlink

    datasets, gpus = _grid_args(args.quick)
    grid = table4_pagerank_nvlink(
        datasets, gpus or (1, 2, 3, 4), **_pool_kwargs(args)
    )
    print(grid.render(baseline="gunrock"))
    return 0


def _cmd_table5(args: argparse.Namespace) -> int:
    from repro.harness import table5_ib

    datasets, gpus = _grid_args(args.quick, ib=True)
    grid = table5_ib(
        args.app, datasets, gpus or tuple(range(1, 9)), **_pool_kwargs(args)
    )
    print(grid.render(baseline="galois"))
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.queues import QueueContentionModel

    model = QueueContentionModel()
    threads = np.array([8192, 16384, 32768, 65536, 98304])
    series = model.figure1_series(threads)
    for plot, curves in series.items():
        print(f"\nFigure 1 - concurrent {plot} (ms):")
        header = f"{'threads':>10}" + "".join(
            f"{name:>18}" for name in curves
        )
        print(header)
        for i, n in enumerate(threads):
            row = f"{int(n):>10}" + "".join(
                f"{curves[name][i]:>18.4f}" for name in curves
            )
            print(row)
    return 0


def _cmd_fig2(args: argparse.Namespace) -> int:
    from repro.interconnect import default_nvlink, default_pcie

    nvlink, pcie = default_nvlink(), default_pcie()
    print("Figure 2 - bandwidth efficiency vs requested bytes:")
    print(f"{'bytes':>8}{'NVLink':>10}{'PCIe3':>10}")
    for size in range(8, 129, 8):
        print(
            f"{size:>8}{nvlink.efficiency(size):>10.3f}"
            f"{pcie.efficiency(size):>10.3f}"
        )
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.interconnect import default_ib, optimal_batch_size

    model = default_ib()
    print("Figure 4 - IB latency / bandwidth vs message size:")
    print(f"{'log2(B)':>8}{'latency_ms':>12}{'BW_GBps':>10}")
    for log_size in range(0, 31, 2):
        size = 1 << log_size
        print(
            f"{log_size:>8}{model.transfer_time(size) / 1000:>12.4f}"
            f"{model.achieved_bandwidth(size) / 1000:>10.2f}"
        )
    print(f"optimal batch size: 2^{int(np.log2(optimal_batch_size(model)))} B")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.harness.profile import run_profile

    profile = run_profile(
        args.framework,
        args.app,
        args.dataset,
        args.machine,
        args.gpus,
        seed=args.seed,
        export=args.export,
    )
    print(profile.render(top_k=args.top))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.harness import (
        PAPER_TABLE2_BFS_NVLINK,
        PAPER_TABLE4_PR_NVLINK,
        compare_grid,
        table2_bfs_nvlink,
        table4_pagerank_nvlink,
    )

    if args.service:
        # A drained service's counters/histograms instead of the grid
        # shape report.
        from repro.serve.stats import ServiceStats

        print(ServiceStats.read(args.service).render())
        return 0

    if args.utilization:
        # Per-rank compute/comm/idle split of one traced cell instead
        # of the grid shape report (grids would re-simulate everything).
        from repro.harness.profile import run_profile

        profile = run_profile(
            "atos-standard-persistent",
            "bfs",
            "road-usa",
            "summit-ib",
            4,
            seed=args.seed,
        )
        print(profile.render())
        return 0

    datasets, gpus = _grid_args(args.quick)
    grids = [
        table2_bfs_nvlink(
            datasets, gpus or (1, 2, 3, 4), **_pool_kwargs(args)
        ),
        table4_pagerank_nvlink(
            datasets, gpus or (1, 2, 3, 4), **_pool_kwargs(args)
        ),
    ]
    reports = [
        compare_grid(
            "Table II (BFS, NVLink)",
            grids[0],
            PAPER_TABLE2_BFS_NVLINK,
            (1, 2, 3, 4),
        ),
        compare_grid(
            "Table IV (PageRank, NVLink)",
            grids[1],
            PAPER_TABLE4_PR_NVLINK,
            (1, 2, 3, 4),
        ),
    ]
    print("\n\n".join(r.render() for r in reports))
    # Cache economics live here, NOT in the table renders — those must
    # stay byte-identical between cold and warm runs (CI diffs them).
    from repro.harness import get_cache
    from repro.metrics.tables import format_cache_line

    print()
    print(
        format_cache_line(
            sum(g.cache_hits for g in grids),
            sum(g.cache_misses for g in grids),
            waits=get_cache().single_flight_waits,
        )
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.harness import get_cache

    cache = get_cache()
    if args.action == "stats":
        stats = cache.stats()
        width = max(len(k) for k in stats)
        for key, value in stats.items():
            print(f"{key:<{width}}  {value}")
    elif args.action == "clear":
        print(f"removed {cache.clear()} cached run(s)")
    elif args.action == "verify":
        ok, removed = cache.verify()
        print(f"verified {ok} entr{'y' if ok == 1 else 'ies'}; "
              f"removed {removed} corrupt")
        return 1 if removed else 0
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness.bench import (
        HEADLINE_CELL,
        render_bench,
        run_bench,
        write_bench,
    )

    doc = run_bench(quick=args.quick, seed=args.seed)
    print(render_bench(doc))
    if args.out:
        write_bench(doc, args.out)
        print(f"\nwrote {args.out}")
    if args.fail_below is not None:
        speedup = doc["cells"][HEADLINE_CELL]["speedup"]
        if speedup < args.fail_below:
            print(
                f"FAIL: {HEADLINE_CELL} speedup {speedup:.2f}x is below "
                f"--fail-below {args.fail_below:.2f}x"
            )
            return 1
    return 0


def _cmd_engine_bench(args: argparse.Namespace) -> int:
    from repro.harness.engine_bench import (
        HEADLINE_CELL,
        render_engine_bench,
        run_engine_bench,
        validate_engine_bench,
        write_bench,
    )

    if args.validate:
        import json

        with open(args.validate) as fh:
            doc = json.load(fh)
        n_cells = validate_engine_bench(doc)
        print(f"{args.validate}: valid ({n_cells} cells)")
        return 0
    doc = run_engine_bench(quick=args.quick, seed=args.seed)
    print(render_engine_bench(doc))
    if args.out:
        write_bench(doc, args.out)
        print(f"\nwrote {args.out}")
    if args.fail_below is not None:
        speedup = doc["cells"][HEADLINE_CELL]["speedup"]
        if speedup < args.fail_below:
            print(
                f"FAIL: {HEADLINE_CELL} speedup {speedup:.2f}x is below "
                f"--fail-below {args.fail_below:.2f}x"
            )
            return 1
    return 0


def _cmd_pdes_bench(args: argparse.Namespace) -> int:
    from repro.harness.pdes import (
        render_pdes_bench,
        run_pdes_bench,
        validate_pdes_bench,
        write_bench,
    )

    if args.validate:
        import json

        with open(args.validate) as fh:
            doc = json.load(fh)
        n_cells = validate_pdes_bench(doc)
        print(f"{args.validate}: valid ({n_cells} cells)")
        return 0
    doc = run_pdes_bench(quick=args.quick, seed=args.seed)
    print(render_pdes_bench(doc))
    if args.out:
        write_bench(doc, args.out)
        print(f"\nwrote {args.out}")
    if args.fail_below is not None:
        headline = doc["cells"][doc["headline"]]
        largest = max(headline["pooled"], key=int)
        speedup = headline["pooled"][largest]["speedup_critical_path"]
        if speedup < args.fail_below:
            print(
                f"FAIL: {doc['headline']} P={largest} critical-path "
                f"speedup {speedup:.2f}x is below "
                f"--fail-below {args.fail_below:.2f}x"
            )
            return 1
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    import os

    from repro.tune import (
        render_tune_bench,
        run_fig4_study,
        run_study,
        validate_tune_bench,
    )
    from repro.tune.space import Space
    from repro.tune.study import write_bench

    if args.validate:
        import json

        with open(args.validate) as fh:
            doc = json.load(fh)
        n_trials = validate_tune_bench(doc)
        print(f"{args.validate}: valid ({n_trials} trials)")
        return 0

    journal = args.journal
    if journal is None and args.out:
        journal = os.path.splitext(args.out)[0] + ".ndjson"

    if args.preset == "fig4":
        doc = run_fig4_study(
            quick=args.quick,
            seed=args.seed,
            jobs=args.jobs,
            timeout_s=args.timeout,
            journal_path=journal,
        )
    else:
        if not args.space:
            print("tune: need --preset fig4 or --space FILE")
            return 2
        with open(args.space) as fh:
            space = Space.from_json(fh.read())
        doc = run_study(
            space,
            searcher=args.searcher,
            budget=args.budget,
            objective=args.objective,
            seed=args.seed,
            jobs=args.jobs,
            timeout_s=args.timeout,
            journal_path=journal,
            quick=args.quick,
        )
    print(render_tune_bench(doc))
    if args.out:
        write_bench(doc, args.out)
        print(f"\nwrote {args.out} (journal: {journal})")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.harness.chaos import (
        CHAOS_VARIANTS,
        chaos_grid,
        render_chaos,
        verify_inert,
    )

    if args.verify_inert:
        verify_inert(seed=args.seed, apps=("bfs", "pagerank"))
        print("inertness verified: zero-fault plan is trace-identical "
              "to no plan (bfs, pagerank)")
    drop_rates = tuple(
        float(rate) for rate in args.drop_rates.split(",") if rate
    )
    apps = ("bfs",) if args.quick else ("bfs", "pagerank")
    variants = (
        ("standard-persistent", "priority-discrete")
        if args.quick
        else tuple(CHAOS_VARIANTS)
    )
    cells = chaos_grid(
        drop_rates=drop_rates,
        apps=apps,
        variants=variants,
        seed=args.seed,
        n_gpus=args.gpus,
    )
    print(render_chaos(cells))
    failures = [cell for cell in cells if not cell.ok]
    if failures:
        print(f"\n{len(failures)} chaos cell(s) FAILED")
        return 1
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.harness.chaos import (
        DEFAULT_CRASH_TIMES,
        crash_grid,
        render_crash,
        verify_recovery_inert,
    )

    if args.verify_inert:
        verify_recovery_inert(seed=args.seed, apps=("bfs", "pagerank"))
        print("recovery inertness verified: crash-free run with a "
              "recovery policy is trace-identical to none (bfs, pagerank)")
    if args.crash_times:
        times = tuple(
            float(t) for t in args.crash_times.split(",") if t
        )
        crash_times = {app: times for app in ("bfs", "pagerank")}
    else:
        crash_times = None
    if args.quick:
        # CI smoke: one crash per app, one variant.
        apps = ("bfs", "pagerank")
        variants = ("standard-persistent",)
        crash_times = crash_times or {
            app: times[:1] for app, times in DEFAULT_CRASH_TIMES.items()
        }
    else:
        apps = ("bfs", "pagerank")
        variants = ("standard-persistent", "priority-discrete")
    cells = crash_grid(
        crash_times=crash_times,
        apps=apps,
        variants=variants,
        crash_pes=tuple(int(pe) for pe in args.crash_pes.split(",") if pe),
        seed=args.seed,
        n_gpus=args.gpus,
        jobs=args.jobs,
    )
    print(render_crash(cells))
    failures = [cell for cell in cells if not cell.ok]
    if failures:
        print(f"\n{len(failures)} crash cell(s) FAILED")
        return 1
    return 0


def _cmd_pdes_chaos(args: argparse.Namespace) -> int:
    from repro.harness.chaos import (
        DEFAULT_KILL_WINDOWS,
        pdes_kill_grid,
        render_pdes_kill,
        verify_pdes_checkpoint_inert,
    )

    if args.verify_inert:
        verify_pdes_checkpoint_inert(
            seed=args.seed, apps=("bfs", "pagerank"), scale=args.scale
        )
        print("checkpoint inertness verified: pooled run with window "
              "checkpoints is digest-identical to one without "
              "(bfs, pagerank)")
    if args.kill_windows:
        windows = tuple(
            int(w) for w in args.kill_windows.split(",") if w
        )
    else:
        windows = DEFAULT_KILL_WINDOWS
    if args.quick:
        # CI smoke: one app, one partition count, two kill sites.
        apps: tuple = ("bfs",)
        partition_counts: tuple = (2,)
        windows = windows[:2]
    else:
        apps = ("bfs", "pagerank")
        partition_counts = (2, 4)
    cells = pdes_kill_grid(
        apps=apps,
        partition_counts=partition_counts,
        kill_windows=windows,
        seed=args.seed,
        scale=args.scale,
    )
    print(render_pdes_kill(cells))
    failures = [cell for cell in cells if not cell.ok]
    if failures:
        print(f"\n{len(failures)} pdes kill cell(s) FAILED")
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.service import ReproService, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue=args.max_queue,
        max_inflight_per_request=args.max_inflight,
        cell_timeout_s=args.timeout,
        drain_grace_s=args.drain_grace,
        stats_path=args.stats_out,
    )
    asyncio.run(ReproService(config).serve_forever())
    return 0


def _client(args: argparse.Namespace):
    from repro.serve.client import ServeClient

    return ServeClient(args.host, args.port)


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.serve.client import ServeError

    spec: dict = {
        "framework": args.framework,
        "app": args.app,
        "machine": args.machine,
        "validate": not args.no_validate,
        "seed": args.seed,
    }
    datasets = [d for d in args.dataset.split(",") if d]
    gpus = [int(n) for n in args.gpus.split(",") if n]
    spec["dataset"] = datasets if len(datasets) > 1 else datasets[0]
    spec["n_gpus"] = gpus if len(gpus) > 1 else gpus[0]
    body = {"spec": spec, "priority": args.priority, "trace": args.trace}
    client = _client(args)
    try:
        accepted = client.submit(body)
    except ServeError as exc:
        print(f"rejected: {exc}", file=sys.stderr)
        if exc.retry_after_s is not None:
            print(f"retry after {exc.retry_after_s}s", file=sys.stderr)
        return 1
    print(
        f"accepted {accepted['job_id']}: {accepted['cells']} cell(s), "
        f"priority {accepted['priority']}"
    )
    if args.wait:
        final = client.wait(accepted["job_id"])
        print(json.dumps(final, indent=1))
        return 0 if final["state"] == "done" else 1
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    import json

    if args.job_id:
        print(json.dumps(_client(args).status(args.job_id), indent=1))
    else:
        print(json.dumps(_client(args).stats(), indent=1))
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    import json

    state = "done"
    for event in _client(args).watch(args.job_id):
        print(json.dumps(event))
        if event.get("event") == "done":
            state = event.get("state", "done")
    return 0 if state == "done" else 1


def _cmd_serve_validate(args: argparse.Namespace) -> int:
    from repro.serve.study import (
        render_study,
        run_log_replay,
        run_serve_study,
        write_study,
    )

    if args.log:
        text, ok = run_log_replay(args.log)
        print(text)
        return 0 if ok else 1
    doc = run_serve_study(seed=args.seed, quick=args.quick)
    print(render_study(doc))
    if args.out:
        write_study(doc, args.out)
        print(f"\nwrote {args.out}")
    return 0 if doc["ok"] else 1


def _cmd_topology(args: argparse.Namespace) -> int:
    from repro.harness import get_machine
    from repro.interconnect import Topology

    n_gpus = {"daisy": 4, "summit-node": 6, "summit-ib": 8}[args.machine]
    topo = Topology(get_machine(args.machine, args.gpus or n_gpus))
    print(topo.describe())
    print(f"\nmean pair latency: {topo.mean_pair_latency():.2f} us")
    print(f"bisection bandwidth: {topo.bisection_bandwidth() / 1000:.1f} GB/s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Atos (SC22) reproduction: simulated multi-GPU "
        "irregular graph processing.",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_seed_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--seed",
            type=int,
            default=0,
            help="partition/workload seed (0 = the evaluation default)",
        )

    sub.add_parser("datasets", help="Table I dataset summary").set_defaults(
        func=_cmd_datasets
    )

    run_parser = sub.add_parser("run", help="run one experiment cell")
    run_parser.add_argument("--framework", required=True)
    run_parser.add_argument("--app", required=True,
                            choices=["bfs", "pagerank"])
    run_parser.add_argument("--dataset", required=True)
    run_parser.add_argument("--machine", default="daisy")
    run_parser.add_argument("--gpus", type=int, default=1)
    run_parser.add_argument("--counters", action="store_true",
                            help="print run counters")
    run_parser.add_argument(
        "--partitions",
        type=int,
        default=1,
        metavar="N",
        help="run the simulation partitioned across N event loops "
        "(digest-identical to serial; atos-* frameworks only)",
    )
    run_parser.add_argument(
        "--pdes-driver",
        default="pooled",
        choices=["local", "pooled"],
        help="partitioned engine driver: in-process round-robin or one "
        "worker process per partition (default pooled)",
    )
    run_parser.add_argument(
        "--verify-digest",
        action="store_true",
        help="with --partitions: also run the serial engine and fail "
        "unless the result digests are bit-identical",
    )
    add_seed_flag(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    def add_pool_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs",
            type=int,
            default=None,
            help="worker processes for the grid (0 = one per CPU; "
            "default $REPRO_JOBS or serial)",
        )
        p.add_argument(
            "--timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-run deadline when --jobs > 1",
        )
        add_seed_flag(p)

    for name, fn, help_text in [
        ("table2", _cmd_table2, "Table II: BFS on NVLink"),
        ("table3", _cmd_table3, "Table III: priority-queue workload"),
        ("table4", _cmd_table4, "Table IV: PageRank on NVLink"),
    ]:
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--quick", action="store_true")
        add_pool_flags(p)
        p.set_defaults(func=fn)

    table5 = sub.add_parser("table5", help="Table V: Galois vs Atos on IB")
    table5.add_argument("--app", default="bfs", choices=["bfs", "pagerank"])
    table5.add_argument("--quick", action="store_true")
    add_pool_flags(table5)
    table5.set_defaults(func=_cmd_table5)

    report = sub.add_parser(
        "report", help="paper-vs-measured shape report (NVLink tables)"
    )
    report.add_argument("--quick", action="store_true")
    report.add_argument(
        "--utilization",
        action="store_true",
        help="print the per-rank compute/comm/idle split of a traced "
        "headline cell instead of the grid shape report",
    )
    report.add_argument(
        "--service",
        default=None,
        metavar="STATS_JSON",
        help="print a drained service's counters and per-priority "
        "latency histograms from its stats file",
    )
    add_pool_flags(report)
    report.set_defaults(func=_cmd_report)

    profile = sub.add_parser(
        "profile",
        help="trace one cell: utilization, imbalance, critical path, "
        "optional Perfetto JSON export",
    )
    profile.add_argument(
        "--framework",
        default="atos-standard-persistent",
        help="executor-based framework (atos-* or groute)",
    )
    profile.add_argument("--app", default="bfs",
                         choices=["bfs", "pagerank"])
    profile.add_argument("--dataset", default="road-usa")
    profile.add_argument("--machine", default="summit-ib")
    profile.add_argument("--gpus", type=int, default=4)
    profile.add_argument(
        "--export",
        default=None,
        metavar="PATH",
        help="write a Chrome/Perfetto trace_event JSON (load in "
        "ui.perfetto.dev or chrome://tracing)",
    )
    profile.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="K",
        help="critical-path segments to list (default 10)",
    )
    add_seed_flag(profile)
    profile.set_defaults(func=_cmd_profile)

    cache = sub.add_parser(
        "cache", help="persistent run cache: stats / clear / verify"
    )
    cache.add_argument("action", choices=["stats", "clear", "verify"])
    cache.set_defaults(func=_cmd_cache)

    sub.add_parser("fig1", help="queue microbenchmarks").set_defaults(
        func=_cmd_fig1
    )
    sub.add_parser("fig2", help="bandwidth efficiency").set_defaults(
        func=_cmd_fig2
    )
    sub.add_parser("fig4", help="IB message-size sweep").set_defaults(
        func=_cmd_fig4
    )

    bench = sub.add_parser(
        "bench",
        help="data-path wall-clock benchmark: reference vs vectorized",
    )
    bench.add_argument("--quick", action="store_true")
    bench.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write results as JSON (e.g. BENCH_datapath.json)",
    )
    bench.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit 1 if the headline cell's speedup is below RATIO "
        "(CI uses 1.0: fail only on regression)",
    )
    add_seed_flag(bench)
    bench.set_defaults(func=_cmd_bench)

    engine_bench = sub.add_parser(
        "engine-bench",
        help="event-engine microbenchmark: heap vs calendar queue",
    )
    engine_bench.add_argument("--quick", action="store_true")
    engine_bench.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write results as JSON (e.g. BENCH_engine.json)",
    )
    engine_bench.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit 1 if the cohort-fire cell's speedup is below RATIO",
    )
    engine_bench.add_argument(
        "--validate",
        default=None,
        metavar="PATH",
        help="schema-check an existing BENCH_engine.json and exit "
        "(no benchmark run)",
    )
    add_seed_flag(engine_bench)
    engine_bench.set_defaults(func=_cmd_engine_bench)

    pdes_bench = sub.add_parser(
        "pdes-bench",
        help="partitioned-engine benchmark: serial vs pooled PDES",
    )
    pdes_bench.add_argument("--quick", action="store_true")
    pdes_bench.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write results as JSON (e.g. BENCH_pdes.json)",
    )
    pdes_bench.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit 1 if the headline cell's critical-path speedup at "
        "the largest partition count is below RATIO",
    )
    pdes_bench.add_argument(
        "--validate",
        default=None,
        metavar="PATH",
        help="schema-check an existing BENCH_pdes.json and exit "
        "(no benchmark run)",
    )
    add_seed_flag(pdes_bench)
    pdes_bench.set_defaults(func=_cmd_pdes_bench)

    tune = sub.add_parser(
        "tune",
        help="design-space exploration: searchers over the cached "
        "simulator (headline: the Fig-4 sensitivity study)",
    )
    tune.add_argument(
        "--preset",
        choices=("fig4",),
        default=None,
        help="run a named study preset instead of --space",
    )
    tune.add_argument(
        "--space",
        default=None,
        metavar="FILE",
        help="JSON parameter-space definition (see repro.tune.space)",
    )
    tune.add_argument(
        "--searcher",
        default="random",
        metavar="NAME",
        help="random | grid | evolutionary | sha (--space mode only)",
    )
    tune.add_argument(
        "--budget",
        type=int,
        default=16,
        metavar="N",
        help="evaluation-unit budget (--space mode only)",
    )
    tune.add_argument(
        "--objective",
        default="makespan",
        metavar="NAME",
        help="makespan | critical_path | msg_throughput | composite "
        "(--space mode only)",
    )
    tune.add_argument(
        "--quick",
        action="store_true",
        help="smaller preset grids (fig4: BFS only)",
    )
    tune.add_argument("--jobs", type=int, default=None, metavar="N")
    tune.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS"
    )
    tune.add_argument(
        "--out",
        default="BENCH_tune.json",
        metavar="PATH",
        help="write the study document as JSON (default: "
        "BENCH_tune.json)",
    )
    tune.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="resumable NDJSON trial journal (default: --out path "
        "with .ndjson suffix)",
    )
    tune.add_argument(
        "--validate",
        default=None,
        metavar="PATH",
        help="schema-check an existing BENCH_tune.json and exit "
        "(no study run)",
    )
    add_seed_flag(tune)
    tune.set_defaults(func=_cmd_tune)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection grid: drop rate x app x queue variant",
    )
    chaos.add_argument(
        "--quick",
        action="store_true",
        help="smaller grid (BFS only, two variants)",
    )
    chaos.add_argument(
        "--drop-rates",
        default="0,0.05,0.1",
        metavar="R,R,...",
        help="comma-separated message drop probabilities",
    )
    chaos.add_argument("--gpus", type=int, default=4)
    chaos.add_argument(
        "--verify-inert",
        action="store_true",
        help="also prove a zero-fault plan is trace-identical to none",
    )
    add_seed_flag(chaos)
    chaos.set_defaults(func=_cmd_chaos)

    recover = sub.add_parser(
        "recover",
        help="fail-stop crash grid: checkpoint/rollback/re-home recovery",
    )
    recover.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: one crash x two apps, one variant",
    )
    recover.add_argument(
        "--crash-times",
        default="",
        metavar="T,T,...",
        help="comma-separated crash times in sim us (default: per-app "
        "early+late schedule)",
    )
    recover.add_argument(
        "--crash-pes",
        default="1",
        metavar="PE,PE,...",
        help="comma-separated ranks to fail-stop (one cell per rank)",
    )
    recover.add_argument("--gpus", type=int, default=4)
    recover.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the grid (0 = one per CPU)",
    )
    recover.add_argument(
        "--verify-inert",
        action="store_true",
        help="also prove a crash-free run with a recovery policy is "
        "trace-identical to none",
    )
    add_seed_flag(recover)
    recover.set_defaults(func=_cmd_recover)

    pdes_chaos = sub.add_parser(
        "pdes-chaos",
        help="worker-kill grid for the pooled partitioned driver: "
        "respawn + journal replay, digest-pinned to serial",
    )
    pdes_chaos.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: BFS only, two partitions, two kill sites",
    )
    pdes_chaos.add_argument(
        "--kill-windows",
        default="",
        metavar="W,W,...",
        help="comma-separated windows at which to kill the worker "
        "(default: 0,2,5)",
    )
    pdes_chaos.add_argument(
        "--scale", type=int, default=9, help="RMAT graph scale"
    )
    pdes_chaos.add_argument(
        "--verify-inert",
        action="store_true",
        help="also prove a zero-kill checkpointed run is "
        "digest-identical to a checkpoint-free run",
    )
    add_seed_flag(pdes_chaos)
    pdes_chaos.set_defaults(func=_cmd_pdes_chaos)

    def add_endpoint_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=8787)

    serve = sub.add_parser(
        "serve",
        help="simulation-as-a-service: HTTP front end over a warm "
        "worker fleet",
    )
    add_endpoint_flags(serve)
    serve.add_argument(
        "--workers", type=int, default=2,
        help="persistent warm worker processes (default 2)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64,
        help="admission queue bound; overflow answers 429 (default 64)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=4,
        help="per-request in-flight cell window (default 4)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell deadline inside a worker",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=30.0, metavar="SECONDS",
        help="graceful-shutdown grace for in-flight work (default 30)",
    )
    serve.add_argument(
        "--stats-out", default=None, metavar="PATH",
        help="write counters/histograms/arrival-log JSON on drain "
        "(feeds `repro serve-validate --log`)",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a run/sweep to a running `repro serve`"
    )
    add_endpoint_flags(submit)
    submit.add_argument(
        "--framework", default="atos-standard-persistent",
        help="driver framework (default atos-standard-persistent)",
    )
    submit.add_argument("--app", required=True, choices=["bfs", "pagerank"])
    submit.add_argument(
        "--dataset", required=True,
        help="dataset, or comma-separated list for a sweep",
    )
    submit.add_argument("--machine", default="daisy")
    submit.add_argument(
        "--gpus", default="1",
        help="GPU count, or comma-separated list for a sweep",
    )
    submit.add_argument(
        "--priority",
        default="batch",
        choices=["interactive", "batch", "bulk"],
        help="scheduling class (weighted 8/3/1)",
    )
    submit.add_argument(
        "--trace", action="store_true",
        help="trace the run; download via `GET /jobs/<id>/trace`",
    )
    submit.add_argument(
        "--no-validate", action="store_true",
        help="skip validation against the serial reference",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="stream until the job finishes and print its final status",
    )
    add_seed_flag(submit)
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser(
        "status", help="job status (or service stats with no job id)"
    )
    add_endpoint_flags(status)
    status.add_argument("job_id", nargs="?", default="")
    status.set_defaults(func=_cmd_status)

    watch = sub.add_parser(
        "watch", help="stream a job's NDJSON events until it finishes"
    )
    add_endpoint_flags(watch)
    watch.add_argument("job_id")
    watch.set_defaults(func=_cmd_watch)

    serve_validate = sub.add_parser(
        "serve-validate",
        help="queueing self-validation: replay service workloads on the "
        "DES engine (Little's law, M/M/1 blow-up, starvation bounds)",
    )
    serve_validate.add_argument(
        "--quick", action="store_true",
        help="3 utilization levels and shorter horizons",
    )
    serve_validate.add_argument(
        "--log", default=None, metavar="STATS_JSON",
        help="replay a drained service's recorded arrival log instead "
        "of synthetic traffic",
    )
    serve_validate.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the study document as JSON",
    )
    add_seed_flag(serve_validate)
    serve_validate.set_defaults(func=_cmd_serve_validate)

    topo = sub.add_parser("topology", help="show a machine topology")
    topo.add_argument("machine",
                      choices=["daisy", "summit-node", "summit-ib"])
    topo.add_argument("--gpus", type=int, default=None)
    topo.set_defaults(func=_cmd_topology)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
