"""Distributed termination detection.

"The program runs until either a stop condition is met or the entirety
of the distributed queue is empty" (paper Section III).  Detecting
*empty* in a distributed asynchronous system needs care: a queue may be
momentarily empty while an update is still in flight.

:class:`WorkTracker` keeps an exact global count of outstanding work
tokens: queued tasks plus in-flight messages.  Producers add tokens
*before* consuming the token that produced them, so the counter can
only reach zero when the system is truly quiescent.  The ``done``
event fires at that moment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RecoveryError, SimulationError
from repro.sim.core import Environment, Event

__all__ = [
    "WorkTracker",
    "WindowedWorkTracker",
    "TrackerSnapshot",
    "InFlightLedger",
]


@dataclass(frozen=True, slots=True)
class TrackerSnapshot:
    """A :class:`WorkTracker`'s counts, frozen at a consistent cut."""

    outstanding: int
    total_added: int


class WorkTracker:
    """Counts outstanding work; fires ``done`` at global quiescence."""

    def __init__(self, env: Environment):
        self.env = env
        self._outstanding = 0
        self._ever_added = False
        self.done: Event = env.event()
        self.total_added = 0

    @property
    def outstanding(self) -> int:
        return self._outstanding

    @property
    def finished(self) -> bool:
        return self.done.triggered

    def add(self, count: int = 1) -> None:
        """Register new work (queued tasks or sent messages)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        if self.finished:
            raise SimulationError("work added after termination fired")
        self._outstanding += count
        self.total_added += count
        self._ever_added = True

    def remove(self, count: int = 1, source: str = "") -> None:
        """Retire completed work.  Order matters for correctness: callers
        must ``add`` any derived work *before* removing the work that
        produced it, otherwise the counter can transiently hit zero.

        Removing more tokens than are outstanding means some message
        was double-counted (e.g. a duplicated delivery retired twice) —
        the counter must never go negative, so this raises
        :class:`SimulationError` naming the offending ``source``.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        if count > self._outstanding:
            raise SimulationError(
                f"work-token underflow: removing {count} token(s) but only "
                f"{self._outstanding} outstanding"
                + (f" (source: {source})" if source else "")
            )
        self._outstanding -= count
        if self._outstanding == 0 and self._ever_added and not self.finished:
            self.done.succeed(self.env.now)

    # ------------------------------------------------ checkpoint support
    def snapshot(self) -> TrackerSnapshot:
        """Freeze the current counts (taken at a quiesced cut)."""
        return TrackerSnapshot(
            outstanding=self._outstanding, total_added=self.total_added
        )

    def restore(self, snapshot: TrackerSnapshot) -> None:
        """Roll the counter back to ``snapshot`` (rank recovery).

        Only legal while the run is live: a tracker whose ``done`` event
        has fired cannot be rewound (processes have already observed
        termination).  After the call the counts must equal the
        snapshot's exactly — verified here so a corrupted checkpoint
        fails loudly instead of silently mis-terminating.
        """
        if self.finished:
            raise RecoveryError(
                "cannot restore a WorkTracker after termination fired"
            )
        if snapshot.outstanding <= 0:
            raise RecoveryError(
                f"tracker snapshot has {snapshot.outstanding} outstanding "
                "token(s); a live checkpoint always holds work"
            )
        self._outstanding = snapshot.outstanding
        self.total_added = snapshot.total_added
        self._ever_added = True
        if (
            self._outstanding != snapshot.outstanding
            or self.total_added != snapshot.total_added
        ):
            raise RecoveryError("tracker restore diverged from snapshot")


class WindowedWorkTracker(WorkTracker):
    """Per-partition work accounting for the partitioned engine.

    One partition of a windowed run sees only its *local* slice of the
    global token flow: it adds tokens for work it produces and removes
    tokens for work it completes — including work whose matching add
    happened on another partition (a raw-fabric delivery retires a
    token the sender's partition added).  Three consequences:

    * the local balance may legitimately go **negative**, so the
      underflow check is waived (the window coordinator verifies the
      *global* sum is non-negative at every window boundary instead);
    * quiescence is a global property, so ``done`` never fires here —
      the coordinator detects global zero across all partitions and
      abandons the environments;
    * the coordinator needs the simulated time of the *last* token
      delta on each partition: the global maximum over partitions is
      exactly the serial engine's termination time (the serial run's
      zeroing ``remove`` is its globally-latest delta, since no token
      may move after ``done`` fires).
    """

    def __init__(self, env: Environment):
        super().__init__(env)
        #: Simulated time of this partition's most recent add/remove.
        self.last_delta_time = 0.0

    @property
    def net(self) -> int:
        """Local adds minus local removes (may be negative)."""
        return self._outstanding

    def add(self, count: int = 1) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        self._outstanding += count
        self.total_added += count
        self._ever_added = True
        self.last_delta_time = self.env.now

    def remove(self, count: int = 1, source: str = "") -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        self._outstanding -= count
        self.last_delta_time = self.env.now


class InFlightLedger:
    """Loss-safe token accounting for unacknowledged messages.

    On a perfectly reliable fabric a message's work token can retire at
    delivery.  Once messages can be lost, that retires a token for work
    that never happened — the counter hits zero while a task is gone,
    and termination fires on a half-finished run.  The resilient
    transport instead *leases* tokens here at send time and retires
    them only when the sender's ack arrives: a lost message keeps its
    lease (the retransmit timer still holds it), so the tracker can
    only drain when every message has provably landed.
    """

    def __init__(self, tracker: WorkTracker):
        self.tracker = tracker
        self._leased = 0
        self.total_leased = 0
        self.total_retired = 0

    @property
    def leased(self) -> int:
        """Tokens currently held by unacknowledged messages."""
        return self._leased

    def lease(self, tokens: int) -> None:
        """Hold ``tokens`` (already added to the tracker) until ack."""
        if tokens < 0:
            raise ValueError("tokens must be non-negative")
        self._leased += tokens
        self.total_leased += tokens

    def retire(self, tokens: int, source: str = "") -> None:
        """Ack arrived: release the lease and retire the tokens."""
        if tokens > self._leased:
            raise SimulationError(
                f"retiring {tokens} leased token(s) but only "
                f"{self._leased} leased"
                + (f" (source: {source})" if source else "")
            )
        self._leased -= tokens
        self.total_retired += tokens
        self.tracker.remove(tokens, source=source)

    def reclaim(self, tokens: int, source: str = "") -> None:
        """Void leases without touching the tracker (rank recovery).

        Rollback recovery re-derives the tracker's count from the
        restored checkpoint, so reclaiming a dead rank's in-flight
        leases must *not* route through :meth:`WorkTracker.remove` —
        that could transiently hit zero and fire spurious termination
        mid-recovery.
        """
        if tokens > self._leased:
            raise SimulationError(
                f"reclaiming {tokens} leased token(s) but only "
                f"{self._leased} leased"
                + (f" (source: {source})" if source else "")
            )
        self._leased -= tokens
