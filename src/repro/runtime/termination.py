"""Distributed termination detection.

"The program runs until either a stop condition is met or the entirety
of the distributed queue is empty" (paper Section III).  Detecting
*empty* in a distributed asynchronous system needs care: a queue may be
momentarily empty while an update is still in flight.

:class:`WorkTracker` keeps an exact global count of outstanding work
tokens: queued tasks plus in-flight messages.  Producers add tokens
*before* consuming the token that produced them, so the counter can
only reach zero when the system is truly quiescent.  The ``done``
event fires at that moment.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.core import Environment, Event

__all__ = ["WorkTracker"]


class WorkTracker:
    """Counts outstanding work; fires ``done`` at global quiescence."""

    def __init__(self, env: Environment):
        self.env = env
        self._outstanding = 0
        self._ever_added = False
        self.done: Event = env.event()
        self.total_added = 0

    @property
    def outstanding(self) -> int:
        return self._outstanding

    @property
    def finished(self) -> bool:
        return self.done.triggered

    def add(self, count: int = 1) -> None:
        """Register new work (queued tasks or sent messages)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        if self.finished:
            raise SimulationError("work added after termination fired")
        self._outstanding += count
        self.total_added += count
        self._ever_added = True

    def remove(self, count: int = 1) -> None:
        """Retire completed work.  Order matters for correctness: callers
        must ``add`` any derived work *before* removing the work that
        produced it, otherwise the counter can transiently hit zero."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        if count > self._outstanding:
            raise SimulationError(
                f"removing {count} tokens but only "
                f"{self._outstanding} outstanding"
            )
        self._outstanding -= count
        if self._outstanding == 0 and self._ever_added and not self.finished:
            self.done.succeed(self.env.now)
