"""The communication aggregator (paper Section III-A3 and Figure 3).

Workers never wait on the network: they append remote updates to a
per-destination aggregation buffer and return immediately (Fig 3 steps
1-2).  The aggregator — on the real system a persistent kernel running
concurrently with application workers — monitors accumulation (step 3)
and flushes a buffer to the wire when either:

* accumulated bytes reach ``batch_size`` (default 1 MiB, the knee of
  the Figure 4 bandwidth curve), or
* the buffer has been inspected ``wait_time`` times since it last
  became non-empty (the timeout path; BFS uses ``wait_time=4`` for
  eager, latency-oriented sends, PageRank ``wait_time=32`` for
  bandwidth-oriented batching).

``tick()`` is the periodic inspection; the scheduler calls it once per
scheduling round, matching the paper's WAIT_TIME "visits" semantics.

**Storage.**  Application payloads are ``(k, width)`` update arrays
(e.g. BFS's (vertex, depth) pairs).  On the vectorized path
(:mod:`repro.batchpath`), a buffer appends them by slice assignment
into one growable preallocated ``np.ndarray`` — the payload-width
invariant is checked once here, at enqueue time — and a flush hands the
consumer a single zero-copy :class:`MergedBatch` view, so a
BATCH_SIZE/WAIT_TIME flush costs O(1) Python operations no matter how
many small updates it carries.  Payloads that are not uniform update
arrays (or any payload when ``REPRO_BATCH_PATH=0``) take the reference
path: a plain Python list handed to ``send_fn`` as-is, exactly the
pre-vectorization behavior.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import accumulate
from typing import Any, Callable, Optional

import numpy as np

from repro.batchpath import batch_path_enabled
from repro.config import DEFAULT_BATCH_SIZE, DEFAULT_WAIT_TIME, validate_tuning
from repro.errors import ConfigError, ConfigurationError

__all__ = ["MergedBatch", "AggregationBuffer", "Aggregator"]


@dataclass(frozen=True, slots=True)
class MergedBatch:
    """One flushed aggregation buffer, pre-merged into a dense array.

    ``data`` holds the rows of ``count`` application payloads in append
    order — bit-identical to ``np.vstack`` of the original payload list
    — so the delivery side applies one bulk update and retires
    ``count`` message tokens without touching the individual payloads.
    """

    data: np.ndarray
    count: int

    def __len__(self) -> int:
        return self.count


#: Initial row capacity of a vectorized buffer (grows geometrically).
_INITIAL_ROWS = 64

#: The type set of a run that may merge by bulk concatenate.
_NDARRAY_ONLY = {np.ndarray}


class AggregationBuffer:
    """Accumulated updates headed to one destination PE.

    Two storage modes, switched per payload shape:

    * **array mode** (vectorized path, uniform ``(k, width)`` ndarray
      payloads): rows land in a growable preallocated 2-D array by
      slice assignment; ``take`` returns a zero-copy view.
    * **list mode** (escape hatch, or non-uniform payloads): payloads
      accumulate in a Python list, the original behavior.

    A mode is never mixed mid-batch: if a payload incompatible with the
    accumulated array arrives, the buffered rows are first demoted back
    to their original per-payload views (boundaries are tracked), so
    observable flush contents are identical either way.
    """

    __slots__ = (
        "dst",
        "n_bytes",
        "visits_since_first",
        "open_time",
        "vectorize",
        "_list",
        "_data",
        "_rows",
        "_bounds",
    )

    def __init__(self, dst: int, vectorize: Optional[bool] = None):
        self.dst = dst
        self.n_bytes = 0
        self.visits_since_first = 0
        #: Sim time the buffer last became non-empty (telemetry only;
        #: None while the buffer is empty or when tracing is off).
        self.open_time: Optional[float] = None
        self.vectorize = (
            batch_path_enabled() if vectorize is None else vectorize
        )
        self._list: list[Any] = []
        self._data: Optional[np.ndarray] = None  # (capacity, width)
        self._rows = 0
        #: End-row offset of each appended payload (array mode only) —
        #: what lets us demote losslessly and count message tokens.
        self._bounds: list[int] = []

    # ----------------------------------------------------------- state
    @property
    def n_payloads(self) -> int:
        return len(self._list) + len(self._bounds)

    @property
    def empty(self) -> bool:
        return not (self._list or self._bounds)

    @property
    def payloads(self) -> list[Any]:
        """The buffered payloads as a list (views in array mode)."""
        if self._data is None:
            return list(self._list)
        starts = [0, *self._bounds[:-1]]
        return self._list + [
            self._data[s:e] for s, e in zip(starts, self._bounds)
        ]

    # ------------------------------------------------------------ path
    def _array_compatible(self, payload: Any) -> bool:
        if not (isinstance(payload, np.ndarray) and payload.ndim == 2):
            return False
        if self._data is None:
            return not self._list
        # The payload-width invariant, asserted once at enqueue time
        # (delivery never re-derives it): every payload bound for one
        # destination shares width and dtype.
        return (
            payload.shape[1] == self._data.shape[1]
            and payload.dtype == self._data.dtype
        )

    def _reserve_rows(self, extra: int, like: np.ndarray) -> None:
        needed = self._rows + extra
        if self._data is None:
            cap = max(_INITIAL_ROWS, extra)
            self._data = np.empty((cap, like.shape[1]), dtype=like.dtype)
        elif needed > len(self._data):
            cap = max(needed, 2 * len(self._data))
            grown = np.empty(
                (cap, self._data.shape[1]), dtype=self._data.dtype
            )
            grown[: self._rows] = self._data[: self._rows]
            self._data = grown

    def _demote(self) -> None:
        """Fall back to list mode, preserving payload boundaries."""
        if self._data is not None:
            self._list = self.payloads
            self._data = None
            self._rows = 0
            self._bounds = []

    def append(self, payload: Any, n_bytes: int) -> None:
        if self.vectorize and self._array_compatible(payload):
            k = len(payload)
            self._reserve_rows(k, payload)
            assert self._data is not None
            self._data[self._rows:self._rows + k] = payload
            self._rows += k
            self._bounds.append(self._rows)
        else:
            self._demote()
            self._list.append(payload)
        self.n_bytes += n_bytes

    def append_run(
        self,
        payloads: list[Any],
        n_bytes_total: int,
        lengths: Optional[list[int]] = None,
    ) -> None:
        """Append a run of payloads in one pass (no flush-point checks).

        Array mode lands the whole run with a single
        ``np.concatenate(..., out=...)`` into the preallocated rows —
        one C call instead of one Python-level append per payload,
        which is where the messaging-heavy wall-clock goes (BFS-style
        traffic is thousands of tiny payloads).  Falls back to
        per-payload :meth:`append` when the run is not uniform.
        ``lengths`` (``[len(p) for p in payloads]``) may be passed by a
        caller that already computed it.
        """
        if not payloads:
            return
        first = payloads[0]
        if self.vectorize and self._array_compatible(first):
            # Uniformity enforcement stays C-level: the type-set test
            # rejects non-ndarrays, and ``concatenate`` with
            # ``casting="no"`` rejects any dtype difference while its
            # shape checking rejects width/ndim mismatches.  A failed
            # attempt scribbles at most on rows past ``_rows``, which
            # are uncommitted — the run then falls back to the
            # per-payload path untouched.
            try:
                uniform = set(map(type, payloads)) == _NDARRAY_ONLY
                if uniform:
                    if lengths is None:
                        lengths = list(map(len, payloads))
                    k = sum(lengths)
                    self._reserve_rows(k, first)
                    assert self._data is not None
                    np.concatenate(
                        payloads,
                        axis=0,
                        out=self._data[self._rows:self._rows + k],
                        casting="no",
                    )
            except (TypeError, ValueError):
                uniform = False
            if uniform:
                offsets = accumulate(lengths, initial=self._rows)
                next(offsets)  # drop the leading base offset
                self._bounds.extend(offsets)
                self._rows += k
                self.n_bytes += n_bytes_total
                return
        for payload in payloads:
            self.append(payload, 0)
        self.n_bytes += n_bytes_total

    def take(self) -> tuple[Any, int, int]:
        """Drain the buffer: (wire payload, bytes, payload count).

        Array mode hands out a zero-copy :class:`MergedBatch` view and
        releases the storage (the consumer owns the rows; the next
        append allocates fresh) — one flush costs O(1) Python ops.
        List mode returns the payload list unchanged.
        """
        n_bytes, count = self.n_bytes, self.n_payloads
        if self._data is not None:
            payload: Any = MergedBatch(self._data[: self._rows], count)
            self._data = None
            self._rows = 0
            self._bounds = []
        else:
            payload = self._list
            self._list = []
        self.n_bytes = 0
        self.visits_since_first = 0
        self.open_time = None
        return payload, n_bytes, count


class Aggregator:
    """Per-source-PE aggregation across all destinations.

    ``send_fn(dst, payloads, n_bytes)`` performs the actual wire send
    (the executor wires it to the fabric).  ``payloads`` is a
    :class:`MergedBatch` on the vectorized path and a plain list on the
    reference path; both carry identical update rows.

    ``telemetry``/``clock`` (both optional, wired by the executor when
    tracing is on) record one ``agg_wait`` span per flush covering the
    buffer's residency — the time updates sat batching before hitting
    the wire.  Observation only: with ``telemetry=None`` (the default)
    no span state is touched at all.
    """

    def __init__(
        self,
        my_pe: int,
        n_pes: int,
        send_fn: Callable[[int, Any, int], None],
        batch_size: int = DEFAULT_BATCH_SIZE,
        wait_time: int = DEFAULT_WAIT_TIME,
        vectorize: Optional[bool] = None,
        telemetry: Optional[Any] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        validate_tuning(batch_size=batch_size, wait_time=wait_time)
        if wait_time < 1:
            # The overlay-level bound is WAIT_TIME >= 0, but the
            # aggregator counts poll *visits* before a timeout flush:
            # a zero count would flush unconditionally on every poll,
            # which is expressed as batch_size=1 instead.
            raise ConfigError("wait_time must be positive")
        if telemetry is not None and clock is None:
            raise ConfigurationError("telemetry requires a clock")
        self.my_pe = my_pe
        self.batch_size = batch_size
        self.wait_time = wait_time
        self._send_fn = send_fn
        self._telemetry = telemetry
        self._clock = clock
        self.vectorize = (
            batch_path_enabled() if vectorize is None else vectorize
        )
        self.buffers = {
            pe: AggregationBuffer(pe, vectorize=self.vectorize)
            for pe in range(n_pes)
            if pe != my_pe
        }
        self.flushes_on_size = 0
        self.flushes_on_timeout = 0

    # ------------------------------------------------------------- path
    def add(self, dst: int, payload: Any, n_bytes: int) -> None:
        """Step 1-2: append and return immediately.

        A buffer crossing ``batch_size`` flushes at once (the
        aggregator notices "accumulated messages reach a BATCH_SIZE").
        """
        if dst == self.my_pe:
            raise ConfigurationError("aggregator is for remote traffic only")
        buffer = self.buffers[dst]
        if self._telemetry is not None and buffer.empty:
            buffer.open_time = self._clock()
        buffer.append(payload, n_bytes)
        if buffer.n_bytes >= self.batch_size:
            self.flushes_on_size += 1
            self._flush(buffer)

    def add_many(
        self,
        dst: int,
        payloads: list[Any],
        n_bytes_each: list[int],
        lengths: Optional[list[int]] = None,
    ) -> None:
        """Append a run of payloads for one destination.

        Flush points are identical to calling :meth:`add` per payload;
        the common case (the run fits under ``batch_size``) lands in
        one :meth:`AggregationBuffer.append_run` bulk append — a single
        threshold test and a single concatenate for the whole run.  A
        run that crosses the threshold is split at each flush point
        (one ``searchsorted`` per flush) and bulk-appended segment by
        segment, so even threshold-crossing traffic never falls back to
        per-payload appends.  ``lengths`` optionally forwards
        pre-computed payload lengths.
        """
        buffer = self.buffers[dst]
        if self._telemetry is not None and buffer.empty:
            buffer.open_time = self._clock()
        total = sum(n_bytes_each)
        if buffer.n_bytes + total < self.batch_size:
            buffer.append_run(payloads, total, lengths)
            return
        # Per-payload semantics: append, then flush as soon as the
        # accumulated bytes reach batch_size — i.e. each segment ends
        # at the first payload whose arrival crosses the threshold.
        offsets = np.cumsum(n_bytes_each)
        start = 0
        base = 0
        n = len(payloads)
        while start < n:
            cross = int(
                np.searchsorted(
                    offsets,
                    base + self.batch_size - buffer.n_bytes,
                    side="left",
                )
            )
            stop = min(cross + 1, n)
            buffer.append_run(
                payloads[start:stop],
                int(offsets[stop - 1]) - base,
                lengths[start:stop] if lengths is not None else None,
            )
            if buffer.n_bytes >= self.batch_size:
                self.flushes_on_size += 1
                self._flush(buffer)
            base = int(offsets[stop - 1])
            start = stop

    def tick(self) -> None:
        """Step 3-5: one inspection pass over all buffers."""
        for buffer in self.buffers.values():
            if buffer.empty:
                continue
            buffer.visits_since_first += 1
            if buffer.visits_since_first >= self.wait_time:
                self.flushes_on_timeout += 1
                self._flush(buffer)

    def flush_all(self) -> None:
        """Drain every buffer immediately (used at shutdown)."""
        for buffer in self.buffers.values():
            if not buffer.empty:
                self._flush(buffer)

    def reset(self) -> None:
        """Discard every buffered payload without sending (rollback
        recovery: buffered updates are re-derived from the restored
        checkpoint, so flushing them would double-apply)."""
        for buffer in self.buffers.values():
            if not buffer.empty:
                buffer.take()

    def _flush(self, buffer: AggregationBuffer) -> None:
        opened = buffer.open_time
        payloads, n_bytes, count = buffer.take()
        if self._telemetry is not None and opened is not None:
            self._telemetry.span(
                self.my_pe,
                "agg_wait",
                opened,
                self._clock(),
                f"agg->pe{buffer.dst}",
                n_bytes=n_bytes,
                n_items=count,
            )
        self._send_fn(buffer.dst, payloads, n_bytes)

    # ------------------------------------------------------------ state
    @property
    def pending_bytes(self) -> int:
        return sum(b.n_bytes for b in self.buffers.values())

    @property
    def empty(self) -> bool:
        return all(b.empty for b in self.buffers.values())
