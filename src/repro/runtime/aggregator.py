"""The communication aggregator (paper Section III-A3 and Figure 3).

Workers never wait on the network: they append remote updates to a
per-destination aggregation buffer and return immediately (Fig 3 steps
1-2).  The aggregator — on the real system a persistent kernel running
concurrently with application workers — monitors accumulation (step 3)
and flushes a buffer to the wire when either:

* accumulated bytes reach ``batch_size`` (default 1 MiB, the knee of
  the Figure 4 bandwidth curve), or
* the buffer has been inspected ``wait_time`` times since it last
  became non-empty (the timeout path; BFS uses ``wait_time=4`` for
  eager, latency-oriented sends, PageRank ``wait_time=32`` for
  bandwidth-oriented batching).

``tick()`` is the periodic inspection; the scheduler calls it once per
scheduling round, matching the paper's WAIT_TIME "visits" semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError

__all__ = ["AggregationBuffer", "Aggregator"]


@dataclass
class AggregationBuffer:
    """Accumulated updates headed to one destination PE."""

    dst: int
    payloads: list[Any] = field(default_factory=list)
    n_bytes: int = 0
    visits_since_first: int = 0

    @property
    def empty(self) -> bool:
        return not self.payloads

    def append(self, payload: Any, n_bytes: int) -> None:
        self.payloads.append(payload)
        self.n_bytes += n_bytes

    def take(self) -> tuple[list[Any], int]:
        payloads, n_bytes = self.payloads, self.n_bytes
        self.payloads = []
        self.n_bytes = 0
        self.visits_since_first = 0
        return payloads, n_bytes


class Aggregator:
    """Per-source-PE aggregation across all destinations.

    ``send_fn(dst, payloads, n_bytes)`` performs the actual wire send
    (the executor wires it to the fabric).
    """

    def __init__(
        self,
        my_pe: int,
        n_pes: int,
        send_fn: Callable[[int, list[Any], int], None],
        batch_size: int = 1 << 20,
        wait_time: int = 4,
    ):
        if batch_size < 1:
            raise ConfigurationError("batch_size must be positive")
        if wait_time < 1:
            raise ConfigurationError("wait_time must be positive")
        self.my_pe = my_pe
        self.batch_size = batch_size
        self.wait_time = wait_time
        self._send_fn = send_fn
        self.buffers = {
            pe: AggregationBuffer(pe) for pe in range(n_pes) if pe != my_pe
        }
        self.flushes_on_size = 0
        self.flushes_on_timeout = 0

    # ------------------------------------------------------------- path
    def add(self, dst: int, payload: Any, n_bytes: int) -> None:
        """Step 1-2: append and return immediately.

        A buffer crossing ``batch_size`` flushes at once (the
        aggregator notices "accumulated messages reach a BATCH_SIZE").
        """
        if dst == self.my_pe:
            raise ConfigurationError("aggregator is for remote traffic only")
        buffer = self.buffers[dst]
        buffer.append(payload, n_bytes)
        if buffer.n_bytes >= self.batch_size:
            self.flushes_on_size += 1
            self._flush(buffer)

    def tick(self) -> None:
        """Step 3-5: one inspection pass over all buffers."""
        for buffer in self.buffers.values():
            if buffer.empty:
                continue
            buffer.visits_since_first += 1
            if buffer.visits_since_first >= self.wait_time:
                self.flushes_on_timeout += 1
                self._flush(buffer)

    def flush_all(self) -> None:
        """Drain every buffer immediately (used at shutdown)."""
        for buffer in self.buffers.values():
            if not buffer.empty:
                self._flush(buffer)

    def _flush(self, buffer: AggregationBuffer) -> None:
        payloads, n_bytes = buffer.take()
        self._send_fn(buffer.dst, payloads, n_bytes)

    # ------------------------------------------------------------ state
    @property
    def pending_bytes(self) -> int:
        return sum(b.n_bytes for b in self.buffers.values())

    @property
    def empty(self) -> bool:
        return all(b.empty for b in self.buffers.values())
