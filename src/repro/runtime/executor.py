"""The Atos executor: assembles GPUs, queues, fabric, and an application
into a running simulation (the ``launch*`` APIs of paper Listing 4).

Each GPU is one DES process executing scheduling *rounds*: pop up to
(workers x fetch) tasks, run the application's task function over the
batch (vectorized), enqueue produced local work, issue produced remote
updates as one-sided messages (optionally through the communication
aggregator), then advance simulated time by the round's modeled cost.
Idle GPUs sleep until work is pushed to them (or a poll interval
elapses), so mesh-like graphs with starved GPUs don't melt the event
loop.

The same executor runs Groute-like configurations by (a) routing the
communication control path through the CPU (extra latency per send)
and (b) flushing remote updates only at kernel-segment boundaries —
the two knobs the paper credits for Atos's advantage over Groute.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.batchpath import batch_path_enabled
from repro.config import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_WAIT_TIME,
    MachineConfig,
    validate_tuning,
)
from repro.errors import ConfigurationError
from repro.faults.injectors import DeviceFaultInjector, LinkFaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.transport import ReliableTransport, RetryPolicy
from repro.gpu.kernel import FaultyKernelModel, KernelModel, KernelStrategy
from repro.gpu.memory import MemoryModel
from repro.gpu.worker import CTA, WorkerConfig
from repro.interconnect.transfer import NetworkFabric
from repro.metrics.counters import Counters
from repro.pgas.symmetric_heap import SymmetricHeap
from repro.sim.monitor import IntervalAccumulator
from repro.runtime.aggregator import Aggregator, MergedBatch
from repro.runtime.distributed_queue import DistributedQueues
from repro.runtime.priority_queue import DistributedPriorityQueues
from repro.runtime.termination import InFlightLedger, WorkTracker
from repro.sim.core import AnyOf, Environment
from repro.telemetry.spans import (
    DEFAULT_MAX_SPANS,
    Telemetry,
    telemetry_enabled,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.recovery.coordinator import (
        RecoveryCoordinator,
        RecoveryPolicy,
    )

__all__ = ["AtosConfig", "AtosApplication", "RoundOutcome", "AtosExecutor"]


@dataclass
class RoundOutcome:
    """What one batch of task processing produced."""

    edges_processed: int = 0
    conflicts: int = 0
    #: Tasks to enqueue on the local PE.
    local_pushes: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    #: Priorities for local pushes (priority-queue configurations).
    local_priorities: Optional[np.ndarray] = None
    #: Remote one-sided updates: dst PE -> opaque payload array.  The
    #: executor charges ``len(payload) * bytes_per_remote_update`` wire
    #: bytes and delivers the payload to ``handle_remote`` at the
    #: destination.
    remote_updates: dict[int, np.ndarray] = field(default_factory=dict)


class AtosApplication(ABC):
    """A task-parallel application runnable by the executor.

    Implementations are the paper's application function ``f()`` plus
    the arrival-side handler its one-sided updates trigger.
    """

    name: str = "app"

    @abstractmethod
    def setup(
        self, n_pes: int
    ) -> list[tuple[np.ndarray, Optional[np.ndarray]]]:
        """Allocate state; return per-PE (seed tasks, seed priorities)."""

    @abstractmethod
    def process(self, pe: int, tasks: np.ndarray) -> RoundOutcome:
        """Run the application function over a popped batch."""

    @abstractmethod
    def handle_remote(
        self, pe: int, payload: np.ndarray
    ) -> tuple[np.ndarray, Optional[np.ndarray]]:
        """Apply an arriving one-sided update batch at its owner PE.

        Returns (new tasks, their priorities) to enqueue on ``pe``.
        """

    def result(self) -> Any:
        """Final application output (after the run completes)."""
        return None

    def counters(self) -> Counters:
        """Application-level counters to merge into the run result."""
        return Counters()

    # ------------------------------------------- recovery protocol (opt-in)
    #: True when the application implements checkpoint/restore (required
    #: to run under a fault plan that schedules rank crashes).
    supports_recovery: bool = False

    def checkpoint_state(self) -> dict[str, np.ndarray]:
        """Global (partition-independent) state arrays at a quiesced cut."""
        raise NotImplementedError(
            f"{self.name} does not implement checkpoint_state"
        )

    def restore_state(
        self, state: dict[str, np.ndarray], partition: Any
    ) -> None:
        """Roll back to ``state`` re-sliced onto a (re-homed) partition."""
        raise NotImplementedError(
            f"{self.name} does not implement restore_state"
        )

    def mark_queued(self, pe: int, tasks: np.ndarray) -> None:
        """Recovery re-enqueued ``tasks`` on ``pe`` (frontier replay).

        Default no-op; applications with queue-membership flags (e.g.
        PageRank's ``in_queue``) re-set them here.
        """


@dataclass(frozen=True)
class AtosConfig:
    """Executor configuration: the paper's three key decisions + knobs."""

    worker: WorkerConfig = CTA
    kernel: KernelStrategy = KernelStrategy.PERSISTENT
    priority: bool = False
    threshold: float = 1.0
    threshold_delta: float = 1.0
    #: None = use the aggregator iff the machine is inter-node (IB).
    use_aggregator: Optional[bool] = None
    batch_size: int = DEFAULT_BATCH_SIZE
    wait_time: int = DEFAULT_WAIT_TIME
    #: Span-based tracing (:mod:`repro.telemetry`).  ``None`` = follow
    #: the ``REPRO_TELEMETRY`` environment toggle (default off); off
    #: means no :class:`~repro.telemetry.spans.Telemetry` hub is even
    #: constructed, so the run is bit-identical to the untraced seed.
    telemetry: Optional[bool] = None
    #: Per-rank span ring-buffer bound when tracing is on.
    telemetry_max_spans: int = DEFAULT_MAX_SPANS
    #: "gpu" = Atos's in-kernel control path; "cpu" = the baseline
    #: frameworks' host-mediated control path.
    control_path: str = "gpu"
    #: Remote sends leave only every N rounds (1 = immediately, the
    #: Atos behaviour; >1 models kernel-segment-boundary communication).
    segment_rounds: int = 1
    #: Host-side coordination cost charged every round (us).  Zero for
    #: Atos (the GPU owns scheduling); Groute-like engines pay their
    #: router/link management here.
    round_host_overhead: float = 0.0
    fetch_size: int = 8
    queue_capacity: int = 1 << 22
    num_recv_queues: int = 2
    #: Deterministic fault schedule (:mod:`repro.faults`).  ``None`` or
    #: an inert plan (all rates zero, no windows) leaves the executor
    #: on the exact fault-free code path; an active plan engages the
    #: link/device injectors *and* the resilient ack/retransmit
    #: transport with loss-safe termination accounting.
    faults: Optional[FaultPlan] = None
    #: Retransmission policy when ``faults`` is active (None = default).
    retry: Optional[RetryPolicy] = None
    #: Checkpoint/recovery policy (:class:`repro.recovery.RecoveryPolicy`).
    #: Only consulted when the fault plan schedules rank crashes; a
    #: crash schedule with ``recovery=None`` uses the default policy.
    recovery: Optional["RecoveryPolicy"] = None
    #: Fallback poll interval for idle GPUs (us).
    idle_poll: float = 5.0
    #: Polling cadence of the persistent aggregator kernel (us): the
    #: aggregator "runs persistently and concurrently alongside Atos
    #: workers, monitoring message accumulation" (paper Fig 3), so
    #: WAIT_TIME counts these fast polls, not application rounds.
    aggregator_poll: float = 2.0
    #: Safety valve for runaway simulations (us).
    max_sim_time: float = 5e8

    def __post_init__(self) -> None:
        validate_tuning(
            batch_size=self.batch_size,
            wait_time=self.wait_time,
            fetch_size=self.fetch_size,
        )
        if self.control_path not in ("gpu", "cpu"):
            raise ConfigurationError("control_path must be 'gpu' or 'cpu'")
        if self.segment_rounds < 1:
            raise ConfigurationError("segment_rounds must be >= 1")


class AtosExecutor:
    """Drives one application run on one machine."""

    def __init__(
        self,
        machine: MachineConfig,
        app: AtosApplication,
        config: AtosConfig = AtosConfig(),
    ):
        self.machine = machine
        self.app = app
        self.config = config
        self.env = Environment()
        self.fabric = NetworkFabric(self.env, machine)
        self.heap = SymmetricHeap(machine.n_gpus)
        self.tracker = self._make_tracker()
        self.memory = MemoryModel(machine.gpu, machine.cost)
        self.kernel = KernelModel(config.kernel, machine.cost)
        self.counters = Counters()
        #: Busy intervals: "compute" (any GPU processing a round) and
        #: "comm" (any link serializing), for the overlap analysis —
        #: the paper's "small messages ... better overlap with
        #: computation, hiding latency".
        self.intervals = IntervalAccumulator()

        #: Span tracing hub (:mod:`repro.telemetry`).  ``None`` when
        #: tracing is off — every instrumentation site below is a single
        #: ``is not None`` branch, so the disabled executor is provably
        #: the untraced executor (golden-digest inertness test).
        self.telemetry: Optional[Telemetry] = None
        trace = (
            telemetry_enabled()
            if config.telemetry is None
            else config.telemetry
        )
        if trace:
            self.telemetry = Telemetry(
                machine.n_gpus, config.telemetry_max_spans
            )
            self.telemetry.meta["engine_queue"] = self.env.engine_queue
            self.fabric.telemetry = self.telemetry

        # Fault injection + resilient delivery.  Everything below is
        # ``None`` unless the plan can actually inject a fault, so the
        # zero-fault executor is provably the pre-fault executor (the
        # golden-trace suite pins bit-identical event traces).
        plan = config.faults
        self.fault_plan: Optional[FaultPlan] = (
            plan if (plan is not None and plan.active) else None
        )
        self.link_faults: Optional[LinkFaultInjector] = None
        self.device_faults: Optional[DeviceFaultInjector] = None
        self.faulty_kernel: Optional[FaultyKernelModel] = None
        self.transport: Optional[ReliableTransport] = None
        self.ledger: Optional[InFlightLedger] = None
        if self.fault_plan is not None:
            self.link_faults = LinkFaultInjector(
                self.fault_plan, counters=self.counters
            )
            self.fabric.fault_injector = self.link_faults
            self.device_faults = DeviceFaultInjector(
                self.fault_plan, counters=self.counters
            )
            self.faulty_kernel = FaultyKernelModel(
                self.kernel, self.device_faults
            )
            self.ledger = InFlightLedger(self.tracker)
            self.transport = ReliableTransport(
                self.env,
                self.fabric,
                self.ledger,
                self._apply_remote,
                policy=config.retry,
                counters=self.counters,
                extra_latency_fn=self._control_extra_latency,
            )

        worker_cfg = config.worker
        self.tasks_per_round = (
            worker_cfg.n_workers(machine.gpu) * config.fetch_size
        )

        n = machine.n_gpus
        self.queues: Any = self._make_queues()

        # Fail-stop rank recovery.  Installed only when the plan
        # schedules crashes, so crash-free runs (faulty or not) never
        # construct a coordinator — the zero-crash trace-identity test
        # pins this.
        self.recovery: Optional[RecoveryCoordinator] = None
        if self.fault_plan is not None and self.fault_plan.crashes:
            # Imported lazily: repro.recovery sits above the runtime in
            # the layering (its coordinator drives this executor).
            from repro.recovery.coordinator import (
                RecoveryCoordinator,
                RecoveryPolicy,
            )

            policy = config.recovery or RecoveryPolicy()
            self.recovery = RecoveryCoordinator(self, policy)
            assert self.transport is not None
            self.transport.alive_fn = self.recovery.alive_for_transport
            self.transport.on_exhausted = self.recovery.note_exhausted

        #: Vectorized data path (read once at construction; the
        #: ``REPRO_BATCH_PATH=0`` escape hatch restores the per-payload
        #: reference path — bit-identical traces, pinned by the golden
        #: suite).
        self.batch_path = batch_path_enabled()

        use_agg = (
            config.use_aggregator
            if config.use_aggregator is not None
            else machine.inter_node
        )
        self.aggregators: Optional[list[Aggregator]] = None
        if use_agg and n > 1:
            self.aggregators = [
                Aggregator(
                    pe,
                    n,
                    self._make_agg_sender(pe),
                    batch_size=config.batch_size,
                    wait_time=config.wait_time,
                    vectorize=self.batch_path,
                    telemetry=self.telemetry,
                    clock=(
                        None
                        if self.telemetry is None
                        else lambda: self.env.now
                    ),
                )
                for pe in range(n)
            ]

        # Groute-like segment buffering of remote updates.
        self._segment_buffers: list[dict[int, list[np.ndarray]]] = [
            {} for _ in range(n)
        ]
        self._work_notify = [self.env.event() for _ in range(n)]
        #: Starved-wake counts per PE.  Observability only — kept out of
        #: the digested counters because the partitioned engine's final
        #: windows legitimately run idle polls past the serial
        #: termination time (they are side-effect-free otherwise).
        self.idle_polls = [0] * n

    # ------------------------------------------------------------ wiring
    def _make_tracker(self) -> WorkTracker:
        """Tracker factory; the partitioned executor substitutes the
        windowed (per-partition) variant here."""
        return WorkTracker(self.env)

    def _owned_ranks(self) -> range:
        """Ranks this executor seeds and runs processes for (all of
        them, serially; a partition replica overrides with its slice)."""
        return range(self.machine.n_gpus)
    def _make_queues(self) -> Any:
        """Fresh distributed queues per the configuration.

        Called at construction and again by the recovery coordinator,
        which discards the post-crash queues wholesale and replays the
        checkpoint frontier into a clean set.
        """
        config = self.config
        n = self.machine.n_gpus
        if config.priority:
            return DistributedPriorityQueues(
                n,
                config.queue_capacity,
                config.queue_capacity,
                config.num_recv_queues,
                config.threshold,
                config.threshold_delta,
            )
        return DistributedQueues(
            n,
            config.queue_capacity,
            config.queue_capacity,
            config.num_recv_queues,
        )

    def _notify(self, pe: int) -> None:
        event = self._work_notify[pe]
        if not event.triggered:
            event.succeed(None)

    def _control_extra_latency(self) -> float:
        if self.config.control_path == "cpu":
            return self.machine.cost.cpu_control_path_latency
        return 0.0

    def _payload_bytes(self, payload: np.ndarray) -> int:
        return max(
            1, len(payload) * self.machine.cost.bytes_per_remote_update
        )

    def _make_agg_sender(self, src_pe: int):
        def send(dst: int, payloads: list[np.ndarray], n_bytes: int) -> None:
            self.counters["aggregated_messages"] += 1
            if self.transport is not None:
                # Resilient path: the flushed batch carries one work
                # token per aggregated payload; the transport leases
                # them until the destination's ack lands.
                self.transport.send(
                    src_pe, dst, n_bytes, payloads, tokens=len(payloads)
                )
                return
            self.fabric.send(
                src_pe,
                dst,
                n_bytes,
                payloads,
                lambda msg: self._deliver(dst, msg.payload),
                extra_latency=self._control_extra_latency(),
            )

        return send

    def _deliver(self, pe: int, payloads: Any) -> None:
        """Fabric arrival: apply update batches, enqueue produced tasks.

        All payloads of one wire message are merged before the handler
        runs: an aggregated batch lands as *one* bulk update at the
        owner, so contributions to the same vertex consolidate into a
        single enqueue — the work-efficiency payoff of batching that
        motivates PageRank's WAIT_TIME=32.

        On the vectorized path the aggregator already merged the
        payloads into one dense :class:`MergedBatch` at enqueue time
        (where the payload-width invariant was asserted once), so this
        hot handler does no per-payload shape probing at all.  The
        reference path (``REPRO_BATCH_PATH=0``) receives the payload
        list and merges here, the original behavior.
        """
        if isinstance(payloads, MergedBatch):
            tasks, priorities = self.app.handle_remote(pe, payloads.data)
            if len(tasks):
                self.tracker.add(len(tasks))
                self._enqueue_recv(pe, tasks, priorities)
            self.tracker.remove(payloads.count)
            self._notify(pe)
            return
        batch = payloads if isinstance(payloads, list) else [payloads]
        if (
            len(batch) > 1
            and all(
                isinstance(p, np.ndarray) and p.ndim == 2 for p in batch
            )
            and len({p.shape[1] for p in batch}) == 1
        ):
            batch = [np.vstack(batch)]
            merged_tokens = len(payloads)
        else:
            merged_tokens = None
        for payload in batch:
            tasks, priorities = self.app.handle_remote(pe, payload)
            if len(tasks):
                self.tracker.add(len(tasks))
                self._enqueue_recv(pe, tasks, priorities)
            self.tracker.remove(
                merged_tokens if merged_tokens is not None else 1
            )
        self._notify(pe)

    def _apply_remote(self, pe: int, payloads: Any) -> None:
        """Transport delivery: apply update batches, enqueue derived work.

        The resilient counterpart of :meth:`_deliver` — same merge and
        apply logic, but the message's work tokens are *not* retired
        here: they stay leased in the :class:`InFlightLedger` until the
        sender receives the ack (loss-safe termination accounting).
        The transport has already deduplicated, so this runs at most
        once per sequence number.
        """
        if isinstance(payloads, MergedBatch):
            tasks, priorities = self.app.handle_remote(pe, payloads.data)
            if len(tasks):
                self.tracker.add(len(tasks))
                self._enqueue_recv(pe, tasks, priorities)
            self._notify(pe)
            return
        batch = payloads if isinstance(payloads, list) else [payloads]
        if (
            len(batch) > 1
            and all(
                isinstance(p, np.ndarray) and p.ndim == 2 for p in batch
            )
            and len({p.shape[1] for p in batch}) == 1
        ):
            batch = [np.vstack(batch)]
        for payload in batch:
            tasks, priorities = self.app.handle_remote(pe, payload)
            if len(tasks):
                self.tracker.add(len(tasks))
                self._enqueue_recv(pe, tasks, priorities)
        self._notify(pe)

    def _enqueue_local(
        self, pe: int, tasks: np.ndarray, priorities: Optional[np.ndarray]
    ) -> None:
        if self.config.priority:
            if priorities is None:
                priorities = np.zeros(len(tasks))
            self.queues[pe].push_local(tasks, priorities)
        else:
            self.queues[pe].push_local(tasks)

    def _enqueue_recv(
        self, pe: int, tasks: np.ndarray, priorities: Optional[np.ndarray]
    ) -> None:
        # Receive queue choice keyed on the sending side is folded into
        # a single index here; contention modeling happens in costs.
        if self.config.priority:
            if priorities is None:
                priorities = np.zeros(len(tasks))
            self.queues[pe].push_recv(tasks, priorities, src_pe=0)
        else:
            self.queues[pe].push_recv(tasks, src_pe=0)

    def _send_remote(
        self, src: int, dst: int, payload: np.ndarray, tracked: bool = False
    ) -> None:
        """One remote update batch: message token + wire or aggregator.

        ``tracked=True`` means the caller already holds the work token
        for this payload (segment buffering takes the token at
        buffering time so termination cannot fire around it).
        """
        if not tracked:
            self.tracker.add(1)
        n_bytes = self._payload_bytes(payload)
        self.counters["remote_updates"] += len(payload)
        if self.aggregators is not None:
            self.aggregators[src].add(dst, payload, n_bytes)
            return
        self.counters["direct_messages"] += 1
        if self.transport is not None:
            self.transport.send(src, dst, n_bytes, payload, tokens=1)
            return
        self.fabric.send(
            src,
            dst,
            n_bytes,
            payload,
            lambda msg: self._deliver(dst, msg.payload),
            extra_latency=self._control_extra_latency(),
        )

    def _flush_segment(self, pe: int) -> None:
        """Emit buffered remote updates (segment-boundary communication).

        With the aggregator on, the vectorized path hands each
        destination's payload run to :meth:`Aggregator.add_many` in one
        call (identical flush points, one threshold test for the whole
        run) instead of walking the nested dst -> payload loops.
        Without an aggregator each payload is its own wire message —
        that structure is part of the modeled Groute-like behavior, so
        it is preserved on both paths.
        """
        buffers = self._segment_buffers[pe]
        if self.batch_path and self.aggregators is not None:
            aggregator = self.aggregators[pe]
            bytes_per_update = self.machine.cost.bytes_per_remote_update
            for dst, payloads in buffers.items():
                # ``_payload_bytes`` hoisted out of the per-payload
                # call: one C-level length pass per run.
                lengths = list(map(len, payloads))
                self.counters["remote_updates"] += sum(lengths)
                aggregator.add_many(
                    dst,
                    payloads,
                    [max(1, n * bytes_per_update) for n in lengths],
                    lengths,
                )
            buffers.clear()
            return
        for dst, payloads in buffers.items():
            for payload in payloads:
                self._send_remote(pe, dst, payload, tracked=True)
        buffers.clear()

    # --------------------------------------------------------------- run
    def prepare(self) -> int:
        """Seed the owned ranks and start their processes.

        Returns the *global* seed-task count (every replica of a
        partitioned run computes the same deterministic setup, so each
        can validate the whole run was seeded) while enqueuing — and
        registering tracker tokens for — only the owned ranks' seeds.
        """
        seeds = self.app.setup(self.machine.n_gpus)
        if len(seeds) != self.machine.n_gpus:
            raise ConfigurationError("setup() must return one seed per PE")
        owned = set(self._owned_ranks())
        total_seeded = 0
        for pe, (tasks, priorities) in enumerate(seeds):
            if len(tasks):
                total_seeded += len(tasks)
                if pe in owned:
                    self.tracker.add(len(tasks))
                    self._enqueue_local(pe, tasks, priorities)
        if total_seeded == 0:
            raise ConfigurationError("no seed work on any PE")

        if self.recovery is not None:
            # Epoch-0 checkpoint of the freshly seeded (quiescent) state
            # so even a crash before the first periodic checkpoint can
            # roll back.
            self.recovery.bootstrap()
            self.env.process(self.recovery.run(), name="recovery")

        for pe in self._owned_ranks():
            self.env.process(self._gpu_process(pe), name=f"gpu{pe}")
            if self.aggregators is not None:
                self.env.process(
                    self._aggregator_process(pe), name=f"agg{pe}"
                )
        return total_seeded

    def finish(self, t_done: Optional[float] = None) -> tuple[float, Counters]:
        """Close out a completed run; returns (makespan, counters).

        ``t_done`` overrides the termination time for partitioned runs
        (the coordinator's global last-token-delta time); serially it
        is simply ``env.now`` at the ``done`` event.
        """
        end = self.env.now if t_done is None else t_done
        makespan = end + self.kernel.teardown_overhead()
        for start, end_ in self.fabric.transfer_intervals:
            self.intervals.add("comm", start, end_)
        self.counters.merge(self.app.counters())
        stats = self.fabric.stats()
        self.counters["fabric_messages"] += stats["messages"]
        self.counters["fabric_bytes"] += stats["bytes"]
        if self.telemetry is not None:
            self.counters["telemetry_spans"] += self.telemetry.total_spans
            self.counters["telemetry_edges"] += self.telemetry.total_edges
            self.counters["telemetry_spans_evicted"] += (
                self.telemetry.evicted
            )
        return makespan, self.counters

    def run(self) -> tuple[float, Counters]:
        """Execute to quiescence; returns (makespan in us, counters)."""
        self.prepare()
        self.env.run(self.tracker.done)
        return self.finish()

    def _pop(self, pe: int) -> np.ndarray:
        """Pop one round's tasks, per the kernel strategy.

        Persistent kernels pop what the resident workers can fetch.
        Discrete kernels drain the *whole* queue per launch — the grid
        is sized to the queue (Listing 3's loop interchange) — except
        in priority mode, where each launch processes only the lowest
        priority bucket (delta-stepping rounds).
        """
        if self.config.kernel is KernelStrategy.DISCRETE:
            if self.config.priority:
                return self.queues[pe].pop_lowest_bucket()
            return self.queues[pe].pop(1 << 62)
        return self.queues[pe].pop(self.tasks_per_round)

    def _aggregator_process(self, pe: int):
        """The persistent aggregator kernel: poll, count visits, flush."""
        aggregators = self.aggregators
        assert aggregators is not None
        while not self.tracker.finished:
            if self.recovery is not None and self.recovery.rank_failed(pe):
                return  # fail-stop: the rank's aggregator dies with it
            aggregators[pe].tick()
            yield self.env.timeout(self.config.aggregator_poll)

    # ------------------------------------------------------- GPU process
    def _gpu_process(self, pe: int):
        config = self.config
        telemetry = self.telemetry
        started = self.env.now
        if self.faulty_kernel is not None:
            yield self.env.timeout(
                self.faulty_kernel.startup_overhead(pe, self.env.now)
            )
        else:
            yield self.env.timeout(self.kernel.startup_overhead())
        if telemetry is not None:
            telemetry.span(pe, "compute", started, self.env.now, "startup")
        rounds_since_flush = 0
        while not self.tracker.finished:
            if self.recovery is not None:
                # Fail-stop check + checkpoint barrier.  A crashed rank
                # exits here (its queued tokens stay outstanding until
                # recovery re-homes them); a live rank may park while
                # the coordinator quiesces the system for a snapshot.
                alive = yield from self.recovery.rank_gate(pe)
                if not alive:
                    return
            if self.env.now > config.max_sim_time:
                raise ConfigurationError(
                    "simulation exceeded max_sim_time; likely livelock"
                )
            tasks = self._pop(pe)
            if len(tasks) == 0:
                # Starved: release any half-batched communication so
                # other PEs can make progress, then sleep until poked.
                if rounds_since_flush:
                    self._flush_segment(pe)
                    rounds_since_flush = 0
                if self.tracker.finished:
                    break
                self._work_notify[pe] = self.env.event()
                idle_from = self.env.now
                yield AnyOf(
                    self.env,
                    [
                        self._work_notify[pe],
                        self.env.timeout(config.idle_poll),
                        self.tracker.done,
                    ],
                )
                if telemetry is not None:
                    telemetry.span(
                        pe, "idle", idle_from, self.env.now, "starved"
                    )
                self.idle_polls[pe] += 1
                continue

            outcome = self.app.process(pe, tasks)
            self.counters["rounds"] += 1
            self.counters["tasks_processed"] += len(tasks)
            self.counters["edges_processed"] += outcome.edges_processed

            if len(outcome.local_pushes):
                self.tracker.add(len(outcome.local_pushes))
                self._enqueue_local(
                    pe, outcome.local_pushes, outcome.local_priorities
                )
                self._notify(pe)
            for dst, payload in outcome.remote_updates.items():
                if len(payload) == 0:
                    continue
                if config.segment_rounds > 1:
                    self.tracker.add(1)  # token held while buffered
                    self._segment_buffers[pe].setdefault(dst, []).append(
                        payload
                    )
                else:
                    self._send_remote(pe, dst, payload)
            rounds_since_flush += 1
            if config.segment_rounds > 1 and (
                rounds_since_flush >= config.segment_rounds
            ):
                self._flush_segment(pe)
                rounds_since_flush = 0

            queue_time = self.memory.queue_ops_time(
                len(tasks) + len(outcome.local_pushes)
            )
            duration = (
                self.kernel.round_overhead()
                + config.round_host_overhead
                + self.memory.edge_batch_time(
                    outcome.edges_processed, outcome.conflicts
                )
                + queue_time
            )
            if self.faulty_kernel is not None:
                # Straggler windows stretch the round; due transient
                # stalls land here as dead time.
                duration = self.faulty_kernel.round_duration(
                    pe, self.env.now, duration
                )
            # Retire the popped tasks only after derived work is
            # registered (termination-detection ordering).
            self.tracker.remove(len(tasks), source=f"round pe{pe}")
            self.intervals.add(
                "compute", self.env.now, self.env.now + duration
            )
            if telemetry is not None:
                # Round attribution: queue pop/push bookkeeping is its
                # own category; everything else (kernel + host overhead,
                # edge batch, fault stretch) is compute.  The two spans
                # tile [now, now + duration] exactly.
                split = self.env.now + duration - queue_time
                telemetry.span(
                    pe,
                    "compute",
                    self.env.now,
                    split,
                    "round",
                    n_bytes=outcome.edges_processed
                    * self.machine.cost.bytes_per_edge_update,
                    n_items=len(tasks),
                )
                telemetry.span(
                    pe,
                    "queue",
                    split,
                    self.env.now + duration,
                    "queue-ops",
                    n_items=len(tasks) + len(outcome.local_pushes),
                )
            yield self.env.timeout(duration)
