"""Partitioned execution of one Atos simulation across N event loops.

The serial :class:`~repro.runtime.executor.AtosExecutor` runs every
rank in one :class:`~repro.sim.core.Environment`.  Here the ranks are
split into partitions, each a :class:`PartitionReplica` — a *full*
executor replica (own environment, event queue, fabric, transport,
aggregators, application state) that only seeds and runs processes for
the ranks it owns.  Replication is cheap because every runtime
structure is already per-rank-sliced (app slices, queues, per-directed-
pair channels, endpoint transport state); the untouched foreign slices
cost nothing and guarantee any accidental cross-partition access is a
loud logic error rather than a silent race.

Cross-partition messages are cut at the fabric: a send whose
destination rank lives elsewhere performs all source-side physics
(serialization, counters, fault fate, telemetry) and becomes an
:class:`~repro.sim.partition.Export` carrying its computed arrival
time; the :class:`~repro.sim.partition.WindowCoordinator` routes it at
the window boundary and the owning replica re-materializes the arrival
in its own environment.  Delivery dispatches on the *payload type* —
transport data/ack packets to the replica's transport endpoint,
anything else to the executor's raw delivery handler — exactly the
callback the serial engine would have invoked.

Termination is the serial tracker's global-zero condition recovered
from per-partition deltas: each replica's
:class:`~repro.runtime.termination.WindowedWorkTracker` reports its
local adds-minus-removes and the time of its last delta; the
coordinator terminates when the global sum is zero with no export in
transit, and the serial termination time is the global latest delta
(the serial zeroing ``remove`` is, provably, the latest token movement
anywhere).

Two drivers share the one coordinator:

* :class:`LocalPartitionedEngine` — replicas stepped in-process, in
  partition order.  The correctness spine: deterministic, debuggable,
  and the digest reference for the pooled driver.
* :class:`PooledPartitionedEngine` — one worker process per partition
  (fork-preferred, mirroring :mod:`repro.harness.pool`'s lifecycle and
  crash isolation), windows exchanged as pickled batches over pipes.

Both produce **bit-identical** :meth:`RunResult.digest` values to the
serial engine — the partitioned-golden test suite pins that across
apps × fault plans × partition counts.

Crash-plan runs (fail-stop recovery) are downgraded to one partition
with a loud :class:`RuntimeWarning`: the recovery coordinator's
quiesce barriers are global-synchronous (zero lookahead), so
distributing them buys nothing and the collapse keeps digest equality
trivially exact.  The downgrade lives in the engines (not a silent
entrypoint rewrite), so callers constructing engines directly get the
same documented behavior.

Real (OS-level) worker loss is survivable: the pooled driver raises
typed :class:`~repro.errors.PartitionWorkerLost` from its pipe
proxies, supplies the coordinator a ``recover_host`` callback that
spawns a replacement process, and the coordinator replays the lost
partition's window journal into it (see
:mod:`repro.sim.partition`).  ``checkpoint_every`` enables barrier
checkpoints (replica snapshots via the ``snapshot`` worker RPC) that
verify the replay; :class:`WorkerKillPlan` injects a deterministic
kill for the chaos harness (``repro pdes-chaos``).
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
import warnings
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from repro.config import MachineConfig
from repro.errors import (
    ConfigurationError,
    PartitionWorkerLost,
    SimulationError,
)
from repro.faults.transport import _AckPacket, _DataPacket
from repro.gpu.kernel import KernelStrategy
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition
from repro.interconnect.transfer import Message
from repro.metrics.counters import Counters, RunResult
from repro.runtime.executor import AtosConfig, AtosExecutor
from repro.runtime.termination import WindowedWorkTracker, WorkTracker
from repro.sim.core import Event
from repro.sim.partition import (
    Export,
    WindowCoordinator,
    WindowReport,
    WindowStats,
    lookahead_matrix,
    partition_ranks,
)
from repro.telemetry.spans import Telemetry

__all__ = [
    "PartitionedRunSpec",
    "PartitionBridge",
    "PartitionReplica",
    "PartitionFinal",
    "WorkerKillPlan",
    "LocalPartitionedEngine",
    "PooledPartitionedEngine",
    "PARTITION_DRIVERS",
    "run_partitioned",
]


# --------------------------------------------------------------------- spec
@dataclass(frozen=True)
class PartitionedRunSpec:
    """Everything a worker needs to build its replica (picklable)."""

    app_name: str  # "bfs" | "pagerank"
    graph: CSRGraph
    partition: Partition
    machine: MachineConfig
    config: AtosConfig
    framework_name: str
    dataset: str = ""
    source: int = 0
    alpha: float = 0.85
    epsilon: float = 1e-4


def _build_app(spec: PartitionedRunSpec):
    from repro.apps.bfs import AtosBFS
    from repro.apps.pagerank import AtosPageRank

    if spec.app_name == "bfs":
        return AtosBFS(spec.graph, spec.partition, spec.source)
    if spec.app_name == "pagerank":
        return AtosPageRank(
            spec.graph, spec.partition,
            alpha=spec.alpha, epsilon=spec.epsilon,
        )
    raise ConfigurationError(f"unknown app {spec.app_name!r}")


# ------------------------------------------------------------------- bridge
class PartitionBridge:
    """The fabric's window into the partitioned world.

    Installed as ``NetworkFabric.partition_bridge``; the fabric asks it
    who owns a destination rank and hands over the messages that leave
    the partition.  ``link_seq`` stamps exports in creation order so
    the receiver can break same-arrival-time ties exactly as the
    sender-side sequence numbers would have.
    """

    __slots__ = ("owned", "_exports", "_seq")

    def __init__(self, owned: frozenset[int]):
        self.owned = owned
        self._exports: list[Export] = []
        self._seq = 0

    def owns(self, rank: int) -> bool:
        return rank in self.owned

    def export(self, message: Message) -> None:
        self._exports.append(
            Export(
                arrival_time=message.arrival_time,
                send_time=message.send_time,
                src=message.src,
                dst=message.dst,
                payload_bytes=message.payload_bytes,
                payload=message.payload,
                link_seq=self._seq,
            )
        )
        self._seq += 1

    def drain(self) -> list[Export]:
        exports, self._exports = self._exports, []
        return exports


def _import_order(exp: Export) -> tuple:
    return (exp.arrival_time, exp.send_time, exp.src, exp.link_seq)


# ------------------------------------------------------------------ replica
@dataclass(slots=True)
class PartitionFinal:
    """One partition's contribution to the assembled run result."""

    owned: list[int]
    makespan: float
    counters: Counters
    result: Any
    timeline: list[tuple[float, float]]
    telemetry: Optional[Telemetry]
    idle_polls: list[int]


class PartitionReplica(AtosExecutor):
    """A full executor replica owning a slice of the ranks.

    Implements the :class:`~repro.sim.partition.PartitionHost`
    protocol: seed/start, step one safe window, finalize.  The
    windowed tracker substitutes for the serial one (local token
    balances may go negative; termination is the coordinator's call),
    and the partition bridge turns foreign-rank fabric sends into
    exports.
    """

    def __init__(
        self,
        machine: MachineConfig,
        app: Any,
        config: AtosConfig,
        owned: Sequence[int],
    ):
        self.owned = frozenset(int(pe) for pe in owned)
        if not self.owned:
            raise ConfigurationError("a partition must own at least one rank")
        super().__init__(machine, app, config)
        if self.fault_plan is not None and self.fault_plan.crashes:
            # The engines downgrade crash plans to one partition before
            # any replica is built (recovery barriers are globally
            # synchronous — a per-partition quiesce would be unsound),
            # so this only fires on direct construction.  Warn rather
            # than raise: the replica still runs, but rank recovery
            # inside one partition of many is unsupported territory.
            warnings.warn(
                "crash plans are meant to run single-partition "
                "(recovery barriers are globally synchronous); the "
                "partitioned engines downgrade them — a directly-built "
                "multi-partition replica with a crash plan is unsound",
                RuntimeWarning,
                stacklevel=2,
            )
        self.bridge = PartitionBridge(self.owned)
        self.fabric.partition_bridge = self.bridge

    # ------------------------------------------------- executor overrides
    def _make_tracker(self) -> WorkTracker:
        return WindowedWorkTracker(self.env)

    def _owned_ranks(self) -> list[int]:
        return sorted(self.owned)

    # ------------------------------------------------------ host protocol
    def start(self) -> int:
        return self.prepare()

    def step_window(
        self, horizon: float, imports: Sequence[Export]
    ) -> WindowReport:
        t0 = time.perf_counter()
        env = self.env
        if imports:
            for exp in sorted(imports, key=_import_order):
                self._inject(exp)
        before = env.peek()
        # Horizons are not strictly monotone when link latencies break
        # the triangle inequality; a stale (≤ now) horizon simply means
        # nothing new is safe yet — execute nothing.
        if horizon > env.now:
            env.run(until=horizon)
        frontier = env.peek()
        tracker = self.tracker
        return WindowReport(
            frontier=frontier,
            net_tokens=tracker.net,
            last_delta_time=tracker.last_delta_time,
            exports=self.bridge.drain(),
            events=0 if frontier == before else 1,
            wall_s=time.perf_counter() - t0,
        )

    def finalize(self, t_done: float) -> PartitionFinal:
        makespan, counters = self.finish(t_done)
        return PartitionFinal(
            owned=sorted(self.owned),
            makespan=makespan,
            counters=counters,
            result=self.app.result(),
            timeline=self.fabric.timeline,
            telemetry=self.telemetry,
            idle_polls=self.idle_polls,
        )

    def snapshot_state(self, epoch: int) -> Any:
        """A read-only replica snapshot for a window-barrier checkpoint.

        Reuses the recovery layer's :class:`Checkpoint` value: the
        app's global arrays, the owned ranks' queue frontiers (foreign
        ranks snapshot empty — their state lives in other replicas),
        and the windowed tracker's counts.  Unlike a recovery-epoch
        snapshot this is *not* a quiesced cut (the environment holds
        live in-flight events no snapshot can capture), so it is used
        to **verify** respawn-and-replay, never to restore from — see
        :mod:`repro.sim.partition`.  Every source is copied, so taking
        a snapshot cannot perturb the run.
        """
        # Lazy import: repro.recovery sits beside repro.runtime in the
        # layering, and this module must stay importable without it.
        from repro.recovery.checkpoint import Checkpoint

        app_state = (
            self.app.checkpoint_state()
            if getattr(self.app, "supports_recovery", False)
            else {}
        )
        empty = (np.empty(0, dtype=np.int64), None)
        frontier = tuple(
            self.queues[pe].snapshot() if pe in self.owned else empty
            for pe in range(self.machine.n_gpus)
        )
        return Checkpoint(
            epoch=epoch,
            sim_time=self.env.now,
            app_state=app_state,
            frontier=frontier,
            tracker=self.tracker.snapshot(),
            owned_ranks=tuple(sorted(self.owned)),
        )

    # ----------------------------------------------------------- plumbing
    def _inject(self, exp: Export) -> None:
        """Re-materialize a cross-partition arrival in this environment.

        Dispatch is by payload *type* — the pickle-safe equivalent of
        the delivery closure the serial fabric would have scheduled:
        transport packets go to this replica's transport endpoint
        (dedup, ack, incarnation fencing all live there), anything
        else is a raw one-sided delivery.
        """
        payload = exp.payload
        message = Message(
            src=exp.src,
            dst=exp.dst,
            payload_bytes=exp.payload_bytes,
            payload=payload,
            send_time=exp.send_time,
            arrival_time=exp.arrival_time,
        )
        if isinstance(payload, _DataPacket):
            if self.transport is None:  # pragma: no cover - wiring error
                raise SimulationError("data packet without a transport")
            handler = self.transport._on_data
        elif isinstance(payload, _AckPacket):
            if self.transport is None:  # pragma: no cover - wiring error
                raise SimulationError("ack packet without a transport")
            handler = self.transport._on_ack
        else:
            dst = exp.dst
            handler = lambda msg: self._deliver(dst, msg.payload)  # noqa: E731
        event = Event(self.env)
        event._value = message
        event._ok = True
        event.callbacks.append(lambda _ev, m=message, h=handler: h(m))
        self.env.schedule_at(event, exp.arrival_time)


# ----------------------------------------------------------------- assembly
def _control_extra_latency(spec: PartitionedRunSpec) -> float:
    if spec.config.control_path == "cpu":
        return spec.machine.cost.cpu_control_path_latency
    return 0.0


def _assemble(
    spec: PartitionedRunSpec,
    parts: list[list[int]],
    finals: list[PartitionFinal],
    stats: WindowStats,
    horizon_history: Optional[list[list[float]]],
    driver_name: str,
) -> RunResult:
    """Merge partition finals into one serial-equivalent RunResult."""
    counters = Counters()
    for final in finals:
        counters.merge(final.counters)

    # Every vertex is owned by exactly one PE, and every PE by exactly
    # one partition: overlaying each partition's owned slices onto any
    # replica's template reconstructs the serial output exactly.
    result = finals[0].result
    if isinstance(result, np.ndarray):
        result = result.copy()
        part = spec.partition
        for final in finals:
            for pe in final.owned:
                verts = part.part_vertices[pe]
                result[verts] = final.result[verts]

    timeline: list[tuple[float, float]] = []
    for final in finals:
        timeline.extend(final.timeline)
    timeline.sort()

    telemetry = _merge_telemetry(
        spec, parts, finals, stats, horizon_history, driver_name
    )

    return RunResult(
        framework=spec.framework_name,
        app=spec.app_name,
        dataset=spec.dataset,
        n_gpus=spec.machine.n_gpus,
        time_ms=finals[0].makespan / 1000.0,
        counters=counters,
        output=result,
        timeline=timeline,
        telemetry=telemetry,
    )


def _merge_telemetry(
    spec: PartitionedRunSpec,
    parts: list[list[int]],
    finals: list[PartitionFinal],
    stats: WindowStats,
    horizon_history: Optional[list[list[float]]],
    driver_name: str,
) -> Optional[Telemetry]:
    """One hub from the per-partition hubs, plus window sync spans.

    Every span/edge is recorded at exactly one owner (timeline spans on
    the rank itself, comm spans and dep edges at the source rank), so
    the merge is a disjoint union: take each rank's log from its
    owner's hub.  Window synchronization is tagged as ``sync`` overlay
    spans on each partition's lead rank — ``python -m repro profile``
    then shows conservative-window overhead next to compute/comm.
    """
    if all(final.telemetry is None for final in finals):
        return None
    hub = Telemetry(spec.machine.n_gpus, spec.config.telemetry_max_spans)
    for final in finals:
        sub = final.telemetry
        if sub is None:  # pragma: no cover - all-or-nothing in practice
            continue
        hub.meta.update(sub.meta)
        for rank in final.owned:
            hub.logs[rank] = sub.logs[rank]
        hub.total_edges += sub.total_edges
        hub.edges.extend(sub.edges)
    hub.meta["pdes_driver"] = driver_name
    hub.meta["pdes_partitions"] = str(len(parts))
    hub.meta["pdes_windows"] = str(stats.windows)
    hub.meta["pdes_exports"] = str(stats.total_exports)
    if horizon_history:
        prev = [0.0] * len(parts)
        for w, horizons in enumerate(horizon_history):
            for p, ranks in enumerate(parts):
                end = min(horizons[p], finals[p].makespan)
                if end > prev[p]:
                    hub.span(
                        ranks[0], "sync", prev[p], end,
                        f"window{w}",
                    )
                    prev[p] = end
    return hub


# ------------------------------------------------------------------ drivers
def _downgrade_crash_plan(spec: PartitionedRunSpec, n_partitions: int) -> int:
    """Crash plans collapse to one partition, loudly (see module doc)."""
    plan = spec.config.faults
    if (
        n_partitions > 1
        and plan is not None
        and plan.active
        and plan.crashes
    ):
        warnings.warn(
            "crash plans run single-partition (recovery barriers are "
            f"globally synchronous); downgrading {n_partitions} "
            "partitions to 1 — digests are unchanged by construction",
            RuntimeWarning,
            stacklevel=3,
        )
        return 1
    return n_partitions


class LocalPartitionedEngine:
    """In-process windowed execution — the correctness spine."""

    name = "local"

    def __init__(
        self,
        spec: PartitionedRunSpec,
        n_partitions: int,
        *,
        checkpoint_every: Optional[int] = None,
        kill_plan: Optional[WorkerKillPlan] = None,
        max_respawns: int = 3,
    ):
        if kill_plan is not None:
            raise ConfigurationError(
                "kill plans need real worker processes; use the "
                "'pooled' driver"
            )
        self.spec = spec
        self.n_partitions = n_partitions
        self.checkpoint_every = checkpoint_every
        self.max_respawns = max_respawns
        self.stats = WindowStats()

    def run(self) -> RunResult:
        spec = self.spec
        self.n_partitions = _downgrade_crash_plan(spec, self.n_partitions)
        if self.n_partitions == 1:
            return _run_serial(spec)
        parts = partition_ranks(spec.machine.n_gpus, self.n_partitions)
        replicas = [
            PartitionReplica(spec.machine, _build_app(spec), spec.config, owned)
            for owned in parts
        ]
        lookahead = lookahead_matrix(
            replicas[0].fabric.topology, parts,
            extra_latency=_control_extra_latency(spec),
        )
        horizon_history: Optional[list[list[float]]] = (
            [] if replicas[0].telemetry is not None else None
        )

        def on_window(_w: int, horizons: list, _reports: list) -> None:
            if horizon_history is not None:
                horizon_history.append(list(horizons))

        coordinator = WindowCoordinator(
            replicas, lookahead, on_window=on_window,
            checkpoint_every=self.checkpoint_every,
        )
        coordinator.set_rank_owners(parts)
        t_done = coordinator.run()
        self.stats = coordinator.stats
        finals = [replica.finalize(t_done) for replica in replicas]
        return _assemble(
            spec, parts, finals, coordinator.stats, horizon_history,
            self.name,
        )


def _run_serial(spec: PartitionedRunSpec) -> RunResult:
    """P=1: the literal serial executor (no bridge, no windows)."""
    app = _build_app(spec)
    executor = AtosExecutor(spec.machine, app, spec.config)
    makespan, counters = executor.run()
    return RunResult(
        framework=spec.framework_name,
        app=spec.app_name,
        dataset=spec.dataset,
        n_gpus=spec.machine.n_gpus,
        time_ms=makespan / 1000.0,
        counters=counters,
        output=app.result(),
        timeline=executor.fabric.timeline,
        telemetry=executor.telemetry,
    )


# ------------------------------------------------------------- pooled driver
def _mp_context() -> multiprocessing.context.BaseContext:
    """Fork-preferred start method (same choice as repro.harness.pool):
    the graph/partition/config land in workers as copy-on-write pages
    instead of pickled blobs."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


@dataclass(frozen=True)
class WorkerKillPlan:
    """Deterministic fail-stop injection for the pooled driver.

    The worker spawned for ``partition`` counts the ``step`` requests
    it receives and hard-exits (``os._exit`` — no cleanup, no
    good-bye, a faithful SIGKILL stand-in) immediately before
    executing its ``window``-th one (0-based).  ``P=1`` serial workers
    exit before running at all.  Replacement workers never inherit the
    plan, so a killed run terminates after exactly one injected loss.
    Used by the ``repro pdes-chaos`` harness to pin digest equality
    under real process death.
    """

    partition: int
    window: int


#: Exit code of an injected kill — distinguishable from a genuine
#: crash in post-mortems (anything nonzero surfaces the same way).
_KILL_EXITCODE = 17


def _partition_worker(spec, owned, serial, conn, kill_at_step=None) -> None:
    """Worker main: build the replica, serve coordinator RPCs.

    ``kill_at_step`` (from a :class:`WorkerKillPlan`) hard-exits the
    process when the ``kill_at_step``-th ``step`` request arrives —
    before executing it, so the coordinator observes a worker that
    accepted a window and never reported.
    """
    try:
        if serial:
            if kill_at_step is not None:
                conn.close()
                os._exit(_KILL_EXITCODE)
            result = _run_serial(spec)
            conn.send(("ok", result))
            conn.close()
            return
        replica = PartitionReplica(spec.machine, _build_app(spec),
                                   spec.config, owned)
        steps = 0
        while True:
            request = conn.recv()
            op = request[0]
            if op == "start":
                conn.send(("ok", replica.start()))
            elif op == "step":
                steps += 1
                if kill_at_step is not None and steps >= kill_at_step:
                    conn.close()
                    os._exit(_KILL_EXITCODE)
                conn.send(("ok", replica.step_window(request[1], request[2])))
            elif op == "snapshot":
                conn.send(("ok", replica.snapshot_state(request[1])))
            elif op == "finalize":
                conn.send(("ok", replica.finalize(request[1])))
            elif op == "exit":
                break
            else:  # pragma: no cover - protocol error
                raise SimulationError(f"unknown worker op {op!r}")
    except EOFError:  # pragma: no cover - parent died
        pass
    except BaseException as exc:  # noqa: BLE001 - forwarded to parent
        try:
            conn.send(
                ("error", f"{type(exc).__name__}: {exc}",
                 traceback.format_exc())
            )
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


class _WorkerHost:
    """Pipe proxy implementing the PartitionHost protocol."""

    def __init__(self, index: int, process, conn):
        self.index = index
        self.process = process
        self.conn = conn

    def _call(self, *request):
        try:
            self.conn.send(request)
            reply = self.conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise PartitionWorkerLost(
                self.index, exitcode=self.process.exitcode
            ) from exc
        if reply[0] == "error":
            raise SimulationError(
                f"partition worker {self.index} failed: {reply[1]}\n"
                f"{reply[2]}"
            )
        return reply[1]

    def start(self) -> int:
        return self._call("start")

    def step_window(self, horizon, imports) -> WindowReport:
        return self._call("step", horizon, list(imports))

    def snapshot_state(self, epoch: int) -> Any:
        return self._call("snapshot", epoch)

    # Split-phase stepping: the coordinator issues every partition's
    # begin before gathering any end, so the worker processes execute
    # their windows concurrently — this pair is the entire speedup.
    def begin_window(self, horizon, imports) -> None:
        try:
            self.conn.send(("step", horizon, list(imports)))
        except (BrokenPipeError, OSError) as exc:
            raise PartitionWorkerLost(
                self.index, exitcode=self.process.exitcode
            ) from exc

    def end_window(self) -> WindowReport:
        try:
            reply = self.conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise PartitionWorkerLost(
                self.index, exitcode=self.process.exitcode
            ) from exc
        if reply[0] == "error":
            raise SimulationError(
                f"partition worker {self.index} failed: {reply[1]}\n"
                f"{reply[2]}"
            )
        return reply[1]

    def finalize(self, t_done) -> PartitionFinal:
        return self._call("finalize", t_done)

    def close(self, timeout: float = 30.0) -> None:
        """Best-effort shutdown: polite exit, close, join, terminate."""
        try:
            self.conn.send(("exit",))
        except (BrokenPipeError, OSError):
            pass
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - hung worker
            self.process.terminate()


class PooledPartitionedEngine:
    """One simulation across N worker processes.

    The coordinator code is byte-for-byte the local driver's (the
    hosts are pipe proxies), so pooled output equals local output
    equals serial output; what the processes buy is wall-clock — each
    partition's window executes on its own core, and the coordinator's
    pickled export batches are the only cross-process traffic.
    """

    name = "pooled"

    def __init__(
        self,
        spec: PartitionedRunSpec,
        n_partitions: int,
        *,
        checkpoint_every: Optional[int] = None,
        kill_plan: Optional[WorkerKillPlan] = None,
        max_respawns: int = 3,
    ):
        self.spec = spec
        self.n_partitions = n_partitions
        self.checkpoint_every = checkpoint_every
        self.kill_plan = kill_plan
        self.max_respawns = max_respawns
        self.stats = WindowStats()

    def _spawn(
        self, ctx, index: int, owned: Sequence[int],
        serial: bool = False, kill_at_step: Optional[int] = None,
    ) -> _WorkerHost:
        parent, child = ctx.Pipe()
        proc = ctx.Process(
            target=_partition_worker,
            args=(self.spec, list(owned), serial, child, kill_at_step),
            daemon=True,
        )
        proc.start()
        child.close()
        return _WorkerHost(index, proc, parent)

    def _run_one_worker(self, ctx) -> RunResult:
        """P=1: the serial path through a real worker process.

        A lost worker is survivable here too — the whole run is its
        own journal, so recovery is simply a respawn (sans kill plan)
        and rerun, bounded by the respawn budget.
        """
        kill = self.kill_plan
        attempt = 0
        while True:
            host = self._spawn(
                ctx, 0, [0], serial=True,
                kill_at_step=1 if kill is not None else None,
            )
            try:
                try:
                    result = host.conn.recv()
                except (EOFError, BrokenPipeError, OSError) as exc:
                    if attempt >= self.max_respawns:
                        raise PartitionWorkerLost(
                            0, exitcode=host.process.exitcode
                        ) from exc
                    attempt += 1
                    kill = None
                    self.stats.workers_respawned += 1
                    continue
                if result[0] == "error":
                    raise SimulationError(
                        f"serial partition worker failed: {result[1]}\n"
                        f"{result[2]}"
                    )
                return result[1]
            finally:
                try:
                    host.conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
                host.process.join(timeout=30)
                if host.process.is_alive():  # pragma: no cover
                    host.process.terminate()

    def run(self) -> RunResult:
        spec = self.spec
        ctx = _mp_context()
        self.n_partitions = _downgrade_crash_plan(spec, self.n_partitions)
        if self.n_partitions == 1:
            # Still one worker process: the serial path, but through
            # the full pickle/process lifecycle (exercises the same
            # plumbing grids rely on for crash-plan collapses).
            return self._run_one_worker(ctx)

        parts = partition_ranks(spec.machine.n_gpus, self.n_partitions)
        # Topology/lookahead derived parent-side from a throwaway
        # instance (pure config, no simulation state).
        from repro.interconnect.topology import Topology

        lookahead = lookahead_matrix(
            Topology(spec.machine), parts,
            extra_latency=_control_extra_latency(spec),
        )
        hosts: list[_WorkerHost] = []
        try:
            for index, owned in enumerate(parts):
                kill_at = None
                if (
                    self.kill_plan is not None
                    and self.kill_plan.partition == index
                ):
                    kill_at = self.kill_plan.window + 1
                hosts.append(
                    self._spawn(ctx, index, owned, kill_at_step=kill_at)
                )

            def recover_host(p: int) -> _WorkerHost:
                # The dead worker's pipe may still be open parent-side;
                # reap it before spawning the replacement (which never
                # inherits a kill plan — one injected loss per run).
                hosts[p].close(timeout=5.0)
                fresh = self._spawn(ctx, p, parts[p])
                hosts[p] = fresh
                return fresh

            horizon_history: list[list[float]] = []

            def on_window(_w, horizons, _reports) -> None:
                horizon_history.append(list(horizons))

            coordinator = WindowCoordinator(
                hosts, lookahead, on_window=on_window,
                checkpoint_every=self.checkpoint_every,
                recover_host=recover_host,
                max_respawns=self.max_respawns,
            )
            coordinator.set_rank_owners(parts)
            t_done = coordinator.run()
            self.stats = coordinator.stats
            finals = []
            for p in range(len(hosts)):
                try:
                    finals.append(hosts[p].finalize(t_done))
                except PartitionWorkerLost as lost:
                    # Lost between its last window and finalize; the
                    # coordinator replays it to the end and retries.
                    host = coordinator.revive(p, lost)
                    finals.append(host.finalize(t_done))
            keep_history = (
                horizon_history
                if any(f.telemetry is not None for f in finals)
                else None
            )
            return _assemble(
                spec, parts, finals, coordinator.stats, keep_history,
                self.name,
            )
        finally:
            for host in hosts:
                host.close()


PARTITION_DRIVERS = {
    "local": LocalPartitionedEngine,
    "pooled": PooledPartitionedEngine,
}


# ---------------------------------------------------------------- entrypoint
def run_partitioned(
    app: str,
    graph: CSRGraph,
    partition: Partition,
    machine: MachineConfig,
    *,
    n_partitions: int = 2,
    driver: str = "local",
    source: int = 0,
    alpha: float = 0.85,
    epsilon: float = 1e-4,
    dataset: str = "",
    kernel: KernelStrategy = KernelStrategy.PERSISTENT,
    priority: bool = False,
    variant_name: Optional[str] = None,
    base_config: Optional[AtosConfig] = None,
    stats: Optional[WindowStats] = None,
    checkpoint_every: Optional[int] = None,
    kill_plan: Optional[WorkerKillPlan] = None,
    max_respawns: int = 3,
    config_overrides: Optional[dict] = None,
) -> RunResult:
    """Run one application partitioned across ``n_partitions`` loops.

    Mirrors :class:`repro.frameworks.atos.AtosDriver` field-for-field
    (framework name, per-app config derivation), so the result digest
    is directly comparable to a serial run of the same cell.  Crash
    plans downgrade to one partition with a RuntimeWarning (the
    engines own that decision — see module docstring); ``stats`` (when
    passed) receives the coordinator's window accounting, including
    the resilience counts.  ``checkpoint_every`` enables window-barrier
    checkpoints, ``kill_plan`` injects one deterministic worker kill
    (pooled driver only), and ``max_respawns`` bounds replacement
    workers per partition.
    """
    from repro.frameworks.atos import AtosDriver

    if driver not in PARTITION_DRIVERS:
        raise ConfigurationError(
            f"unknown partition driver {driver!r}; "
            f"known: {sorted(PARTITION_DRIVERS)}"
        )
    if app not in ("bfs", "pagerank"):
        raise ConfigurationError(f"unknown app {app!r}")
    atos = AtosDriver(
        kernel=kernel, priority=priority, variant_name=variant_name,
        base_config=base_config or AtosConfig(),
        overrides=config_overrides,
    )
    config = atos._config(app, machine)
    n_partitions = min(n_partitions, machine.n_gpus)
    spec = PartitionedRunSpec(
        app_name=app,
        graph=graph,
        partition=partition,
        machine=machine,
        config=config,
        framework_name=atos.name,
        dataset=dataset,
        source=source,
        alpha=alpha,
        epsilon=epsilon,
    )
    engine = PARTITION_DRIVERS[driver](
        spec, n_partitions,
        checkpoint_every=checkpoint_every,
        kill_plan=kill_plan,
        max_respawns=max_respawns,
    )
    result = engine.run()
    if stats is not None:
        stats.windows = engine.stats.windows
        stats.total_exports = engine.stats.total_exports
        stats.total_events = engine.stats.total_events
        stats.idle_partition_windows = engine.stats.idle_partition_windows
        stats.critical_wall_s = engine.stats.critical_wall_s
        stats.busy_wall_s = engine.stats.busy_wall_s
        stats.checkpoints_taken = engine.stats.checkpoints_taken
        stats.windows_replayed = engine.stats.windows_replayed
        stats.workers_respawned = engine.stats.workers_respawned
    return result
