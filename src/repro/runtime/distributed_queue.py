"""Distributed queues: the Atos ``DistributedQueues`` API (Listing 4).

Each PE owns one *local* queue plus ``num_queues`` *receive* queues
that remote PEs push into (many-to-many pattern: separate receive
queues reduce producer contention).  Workers pop round-robin across
the local queue and receive queues; new local tasks go to the local
queue and remote tasks are routed to the owner PE's receive queue.

All queues are :class:`~repro.queues.atos_queue.AtosQueue` instances —
the counter-based structure is exactly what makes in-kernel one-sided
pushes consistent without synchronization.

The priority variant (``DistributedPriorityQueues``) swaps the local
structure for bucketed priority queues; see
:mod:`repro.runtime.priority_queue`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.queues.atos_queue import AtosQueue

__all__ = ["PEQueues", "DistributedQueues"]


class PEQueues:
    """One PE's view: a local queue and its receive queues."""

    def __init__(
        self,
        my_pe: int,
        local_capacity: int,
        recv_capacity: int,
        num_recv_queues: int,
        dtype=np.int64,
    ):
        if num_recv_queues < 1:
            raise ConfigurationError("need at least one receive queue")
        self.my_pe = my_pe
        self.local = AtosQueue(local_capacity, dtype=dtype)
        self.recv = [
            AtosQueue(recv_capacity, dtype=dtype)
            for _ in range(num_recv_queues)
        ]
        self._rr = 0  # round-robin cursor over [local] + recv

    # ------------------------------------------------------------- push
    def push_local(self, items: np.ndarray) -> None:
        self.local.push(items)

    def push_recv(self, items: np.ndarray, src_pe: int) -> None:
        """Push arriving remote items (the one-sided write target).

        The source PE hashes onto a receive queue, spreading producers
        across queues like the paper's ``num_queues`` parameter.
        """
        self.recv[src_pe % len(self.recv)].push(items)

    # -------------------------------------------------------------- pop
    def pop(self, max_items: int) -> np.ndarray:
        """Pop up to ``max_items``, round-robin over all queues."""
        if max_items < 0:
            raise ValueError("max_items must be non-negative")
        queues = [self.local, *self.recv]
        out: list[np.ndarray] = []
        remaining = max_items
        for offset in range(len(queues)):
            if remaining == 0:
                break
            q = queues[(self._rr + offset) % len(queues)]
            got = q.pop(remaining)
            if len(got):
                out.append(got)
                remaining -= len(got)
        self._rr = (self._rr + 1) % len(queues)
        if not out:
            return np.empty(0, dtype=self.local.storage.dtype)
        return np.concatenate(out)

    # ------------------------------------------------------------ state
    @property
    def readable(self) -> int:
        return self.local.readable + sum(q.readable for q in self.recv)

    @property
    def empty(self) -> bool:
        return self.readable == 0

    def snapshot(self) -> tuple[np.ndarray, None]:
        """Non-destructive copy of every queued task on this PE
        (local first, then receive queues), for checkpointing.  FIFO
        queues carry no priorities, hence the ``None`` slot."""
        parts = [self.local.snapshot()] + [q.snapshot() for q in self.recv]
        parts = [p for p in parts if len(p)]
        if not parts:
            return np.empty(0, dtype=self.local.storage.dtype), None
        return np.concatenate(parts), None


class DistributedQueues:
    """The whole system's queues: one :class:`PEQueues` per PE.

    Mirrors ``DistributedQueues::init(my_pe, n_pes, local_cap,
    recv_cap, num_queues, ...)`` — here constructed once for all PEs
    since the simulation owns every rank.
    """

    def __init__(
        self,
        n_pes: int,
        local_capacity: int,
        recv_capacity: int,
        num_recv_queues: int = 1,
        dtype=np.int64,
    ):
        if n_pes < 1:
            raise ConfigurationError("need at least one PE")
        self.n_pes = n_pes
        self.pes = [
            PEQueues(
                pe, local_capacity, recv_capacity, num_recv_queues, dtype
            )
            for pe in range(n_pes)
        ]

    def __getitem__(self, pe: int) -> PEQueues:
        return self.pes[pe]

    @property
    def total_readable(self) -> int:
        return sum(pe.readable for pe in self.pes)

    @property
    def all_empty(self) -> bool:
        return self.total_readable == 0
