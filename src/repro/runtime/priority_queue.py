"""Distributed priority queues (``DistributedPriorityQueues``, Listing 4).

Same shape as :class:`~repro.runtime.distributed_queue.DistributedQueues`
but tasks carry a priority (for BFS: the vertex depth), stored in
bucketed priority structures.  Workers preferentially pop the lowest
buckets; the shared threshold rises by ``threshold_delta`` when no
eligible work remains.  Table III measures the payoff: near-ideal
visit counts on scale-free graphs where plain FIFO speculation
re-visits vertices 1.3-1.6x.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.queues.priority import BucketedPriorityQueue

__all__ = ["PEPriorityQueues", "DistributedPriorityQueues"]


class PEPriorityQueues:
    """One PE's priority queues: local + receive, merged by bucket."""

    def __init__(
        self,
        my_pe: int,
        local_capacity: int,
        recv_capacity: int,
        num_recv_queues: int,
        threshold: float,
        threshold_delta: float,
        dtype=np.int64,
    ):
        if num_recv_queues < 1:
            raise ConfigurationError("need at least one receive queue")
        self.my_pe = my_pe
        # Priorities make FIFO receive-queue separation unnecessary for
        # correctness; we keep one bucketed structure per producer class
        # (local vs remote) to preserve the contention structure.
        self.local = BucketedPriorityQueue(
            local_capacity, threshold, threshold_delta, dtype=dtype
        )
        self.recv = [
            BucketedPriorityQueue(
                recv_capacity, threshold, threshold_delta, dtype=dtype
            )
            for _ in range(num_recv_queues)
        ]

    def push_local(
        self, items: np.ndarray, priorities: np.ndarray
    ) -> None:
        self.local.push(priorities, items)

    def push_recv(
        self, items: np.ndarray, priorities: np.ndarray, src_pe: int
    ) -> None:
        self.recv[src_pe % len(self.recv)].push(priorities, items)

    def pop(self, max_items: int) -> np.ndarray:
        """Pop up to ``max_items``, lowest buckets first across queues."""
        if max_items < 0:
            raise ValueError("max_items must be non-negative")
        out: list[np.ndarray] = []
        remaining = max_items
        queues = sorted(
            [self.local, *self.recv],
            key=lambda q: (
                q._lowest_nonempty()
                if q._lowest_nonempty() is not None
                else np.inf
            ),
        )
        for q in queues:
            if remaining == 0:
                break
            got = q.pop(remaining)
            if len(got):
                out.append(got)
                remaining -= len(got)
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(out)

    def pop_lowest_bucket(self) -> np.ndarray:
        """Drain the globally lowest non-empty bucket across all queues.

        One discrete-kernel launch processes exactly one priority band
        (delta-stepping): the kernel's grid covers every task whose
        priority falls below the shared threshold.
        """
        keys = [
            k
            for q in (self.local, *self.recv)
            if (k := q._lowest_nonempty()) is not None
        ]
        if not keys:
            return np.empty(0, dtype=np.int64)
        lowest = min(keys)
        parts = [
            q.pop_bucket(lowest) for q in (self.local, *self.recv)
        ]
        parts = [p for p in parts if len(p)]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    @property
    def readable(self) -> int:
        return self.local.readable + sum(q.readable for q in self.recv)

    @property
    def empty(self) -> bool:
        return self.readable == 0

    def snapshot(self) -> tuple[np.ndarray, np.ndarray]:
        """Non-destructive (tasks, priorities) copy of every queue on
        this PE, for checkpointing.  Priorities are each bucket's
        representative (see ``BucketedPriorityQueue.snapshot``)."""
        tasks: list[np.ndarray] = []
        priorities: list[np.ndarray] = []
        for q in (self.local, *self.recv):
            prios, values = q.snapshot()
            if len(values):
                tasks.append(values)
                priorities.append(prios)
        if not tasks:
            return np.empty(0, dtype=np.int64), np.empty(0)
        return np.concatenate(tasks), np.concatenate(priorities)


class DistributedPriorityQueues:
    """System-wide priority queues, one :class:`PEPriorityQueues` per PE."""

    def __init__(
        self,
        n_pes: int,
        local_capacity: int,
        recv_capacity: int,
        num_recv_queues: int = 1,
        threshold: float = 1.0,
        threshold_delta: float = 1.0,
        dtype=np.int64,
    ):
        if n_pes < 1:
            raise ConfigurationError("need at least one PE")
        self.n_pes = n_pes
        self.pes = [
            PEPriorityQueues(
                pe,
                local_capacity,
                recv_capacity,
                num_recv_queues,
                threshold,
                threshold_delta,
                dtype,
            )
            for pe in range(n_pes)
        ]

    def __getitem__(self, pe: int) -> PEPriorityQueues:
        return self.pes[pe]

    @property
    def total_readable(self) -> int:
        return sum(pe.readable for pe in self.pes)

    @property
    def all_empty(self) -> bool:
        return self.total_readable == 0
