"""The Atos runtime: distributed queues, aggregator, executor, termination."""

from repro.runtime.aggregator import AggregationBuffer, Aggregator
from repro.runtime.distributed_queue import DistributedQueues, PEQueues
from repro.runtime.executor import (
    AtosApplication,
    AtosConfig,
    AtosExecutor,
    RoundOutcome,
)
from repro.runtime.priority_queue import (
    DistributedPriorityQueues,
    PEPriorityQueues,
)
from repro.runtime.partitioned import (
    LocalPartitionedEngine,
    PartitionReplica,
    PooledPartitionedEngine,
    run_partitioned,
)
from repro.runtime.termination import (
    InFlightLedger,
    TrackerSnapshot,
    WindowedWorkTracker,
    WorkTracker,
)

__all__ = [
    "InFlightLedger",
    "TrackerSnapshot",
    "WindowedWorkTracker",
    "PartitionReplica",
    "LocalPartitionedEngine",
    "PooledPartitionedEngine",
    "run_partitioned",
    "DistributedQueues",
    "PEQueues",
    "DistributedPriorityQueues",
    "PEPriorityQueues",
    "Aggregator",
    "AggregationBuffer",
    "WorkTracker",
    "AtosApplication",
    "AtosConfig",
    "AtosExecutor",
    "RoundOutcome",
]
