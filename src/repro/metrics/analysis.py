"""Communication-timeline analyses.

The paper's first lesson: "Fine-grained one-sided communication ...
smooths out network usage".  These helpers quantify that: a
*communication timeline* is a list of ``(time, bytes)`` send events;
:func:`burstiness` is the coefficient of variation of bytes binned
over the run — near 0 for perfectly smooth traffic, large when all
bytes travel in a few phase-boundary spikes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "burstiness",
    "peak_to_mean",
    "byte_histogram",
    "utilization_table",
]


def byte_histogram(
    timeline: list[tuple[float, float]],
    t_end: float,
    n_bins: int = 40,
) -> tuple[np.ndarray, np.ndarray]:
    """Bin sent bytes over [0, t_end]; returns (edges, bytes per bin)."""
    if t_end <= 0:
        raise ValueError("t_end must be positive")
    if n_bins < 1:
        raise ValueError("need at least one bin")
    edges = np.linspace(0.0, t_end, n_bins + 1)
    if not timeline:
        return edges, np.zeros(n_bins)
    times = np.array([t for t, _ in timeline])
    sizes = np.array([b for _, b in timeline], dtype=np.float64)
    counts, _ = np.histogram(
        np.clip(times, 0.0, t_end), bins=edges, weights=sizes
    )
    return edges, counts


def burstiness(
    timeline: list[tuple[float, float]],
    t_end: float,
    n_bins: int = 40,
) -> float:
    """Coefficient of variation of per-bin traffic (0 = smooth)."""
    _, per_bin = byte_histogram(timeline, t_end, n_bins)
    mean = per_bin.mean()
    if mean == 0:
        return 0.0
    return float(per_bin.std() / mean)


def peak_to_mean(
    timeline: list[tuple[float, float]],
    t_end: float,
    n_bins: int = 40,
) -> float:
    """Peak bin traffic over mean bin traffic (1.0 = perfectly even)."""
    _, per_bin = byte_histogram(timeline, t_end, n_bins)
    mean = per_bin.mean()
    if mean == 0:
        return 1.0
    return float(per_bin.max() / mean)


#: Column order of :func:`utilization_table` — the sequential timeline
#: split first (sums to 100% of the makespan per rank), then the
#: concurrent comm/agg_wait overlays (may exceed 100%; overlap with
#: compute is the latency-hiding point).
_UTILIZATION_COLUMNS = (
    "compute", "queue", "idle", "recovery", "comm", "agg_wait",
)


def utilization_table(
    per_rank: dict[int, dict[str, float]], makespan_us: float
) -> str:
    """Format a per-rank compute/comm/idle split as an aligned table.

    ``per_rank`` is :func:`repro.telemetry.rank_breakdown` output: rank
    -> category -> simulated us.  Each cell shows the category's share
    of the makespan; timeline categories sum to 100% per rank, overlay
    categories (comm, agg_wait) are concurrent and reported as-is.
    """
    columns = [
        c
        for c in _UTILIZATION_COLUMNS
        if any(row.get(c, 0.0) for row in per_rank.values())
        or c in ("compute", "idle")
    ]
    header = "rank" + "".join(f"{c:>10}" for c in columns)
    lines = [header, "-" * len(header)]
    denom = makespan_us if makespan_us > 0 else 1.0
    for rank in sorted(per_rank):
        row = per_rank[rank]
        cells = "".join(
            f"{100.0 * row.get(c, 0.0) / denom:>9.1f}%" for c in columns
        )
        lines.append(f"{rank:>4}{cells}")
    lines.append(
        f"(makespan {makespan_us:.1f} us; timeline columns sum to 100% "
        "per rank, comm/agg_wait overlap the timeline)"
    )
    return "\n".join(lines)
