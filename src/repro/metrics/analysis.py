"""Communication-timeline analyses.

The paper's first lesson: "Fine-grained one-sided communication ...
smooths out network usage".  These helpers quantify that: a
*communication timeline* is a list of ``(time, bytes)`` send events;
:func:`burstiness` is the coefficient of variation of bytes binned
over the run — near 0 for perfectly smooth traffic, large when all
bytes travel in a few phase-boundary spikes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["burstiness", "peak_to_mean", "byte_histogram"]


def byte_histogram(
    timeline: list[tuple[float, float]],
    t_end: float,
    n_bins: int = 40,
) -> tuple[np.ndarray, np.ndarray]:
    """Bin sent bytes over [0, t_end]; returns (edges, bytes per bin)."""
    if t_end <= 0:
        raise ValueError("t_end must be positive")
    if n_bins < 1:
        raise ValueError("need at least one bin")
    edges = np.linspace(0.0, t_end, n_bins + 1)
    if not timeline:
        return edges, np.zeros(n_bins)
    times = np.array([t for t, _ in timeline])
    sizes = np.array([b for _, b in timeline], dtype=np.float64)
    counts, _ = np.histogram(
        np.clip(times, 0.0, t_end), bins=edges, weights=sizes
    )
    return edges, counts


def burstiness(
    timeline: list[tuple[float, float]],
    t_end: float,
    n_bins: int = 40,
) -> float:
    """Coefficient of variation of per-bin traffic (0 = smooth)."""
    _, per_bin = byte_histogram(timeline, t_end, n_bins)
    mean = per_bin.mean()
    if mean == 0:
        return 0.0
    return float(per_bin.std() / mean)


def peak_to_mean(
    timeline: list[tuple[float, float]],
    t_end: float,
    n_bins: int = 40,
) -> float:
    """Peak bin traffic over mean bin traffic (1.0 = perfectly even)."""
    _, per_bin = byte_histogram(timeline, t_end, n_bins)
    mean = per_bin.mean()
    if mean == 0:
        return 1.0
    return float(per_bin.max() / mean)
