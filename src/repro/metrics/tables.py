"""Paper-style table and figure formatting.

The benchmark harness prints the same rows/series the paper reports:
runtimes with speedups-vs-baseline in parentheses, bold-free ASCII.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_runtime_table", "format_scaling_series",
           "format_generic_table", "format_cache_line"]


def _fmt_ms(value: float) -> str:
    if value >= 100:
        return f"{value:.0f}"
    if value >= 10:
        return f"{value:.1f}"
    return f"{value:.3g}"


def format_runtime_table(
    title: str,
    column_labels: Sequence[str],
    rows: Mapping[str, Sequence[float]],
    baselines: Mapping[str, Sequence[float]] | None = None,
) -> str:
    """Runtimes in ms per dataset row, speedup vs baseline in parens.

    Mirrors the layout of the paper's Tables II/IV/V: one row per
    dataset, one column per GPU count.
    """
    header = f"{'Dataset':<20}" + "".join(
        f"{label:>16}" for label in column_labels
    )
    lines = [title, "-" * len(header), header, "-" * len(header)]
    for dataset, values in rows.items():
        cells = []
        for i, value in enumerate(values):
            cell = _fmt_ms(value)
            if baselines is not None and dataset in baselines:
                base = baselines[dataset][i]
                if value > 0:
                    cell += f" (x{base / value:.2f})"
            cells.append(f"{cell:>16}")
        lines.append(f"{dataset:<20}" + "".join(cells))
    return "\n".join(lines)


def format_scaling_series(
    title: str,
    gpu_counts: Sequence[int],
    series: Mapping[str, Sequence[float]],
) -> str:
    """Strong-scaling speedups relative to each series' own 1-GPU time.

    Mirrors the paper's Figures 5/7/8/9 (self-relative speedup vs #GPUs).
    """
    header = f"{'Framework':<28}" + "".join(
        f"{n:>4} GPU" + ("s" if n > 1 else " ") for n in gpu_counts
    )
    lines = [title, "-" * len(header), header, "-" * len(header)]
    for name, times in series.items():
        base = times[0]
        cells = "".join(
            f"{(base / t if t > 0 else float('nan')):>8.2f}" for t in times
        )
        lines.append(f"{name:<28}{cells}")
    return "\n".join(lines)


def format_generic_table(
    title: str,
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
    widths: Sequence[int] | None = None,
) -> str:
    """Uniform fixed-width table for everything else (Table I, III...)."""
    rows = list(rows)
    if widths is None:
        widths = [
            max(
                len(str(header[i])),
                *(len(str(r[i])) for r in rows) if rows else (0,),
            )
            + 2
            for i in range(len(header))
        ]
    def fmt(cells):
        return "".join(f"{str(c):>{w}}" for c, w in zip(cells, widths))

    lines = [title, fmt(header), "-" * sum(widths)]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def format_cache_line(
    hits: int, misses: int, waits: int = 0, label: str = "run cache"
) -> str:
    """One-line persistent-cache effectiveness summary.

    Rendered by ``report``-style summaries and the tune study output —
    never inside the runtime tables themselves, whose bytes must not
    depend on cache temperature.
    """
    total = hits + misses
    rate = (100.0 * hits / total) if total else 0.0
    line = (
        f"{label}: {hits} hit{'s' if hits != 1 else ''} / "
        f"{total} run{'s' if total != 1 else ''} ({rate:.0f}% hit rate)"
    )
    if waits:
        line += f", {waits} single-flight wait{'s' if waits != 1 else ''}"
    return line
