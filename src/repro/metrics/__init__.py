"""Measurement: counters, run results, tables, timeline analyses."""

from repro.metrics.analysis import burstiness, byte_histogram, peak_to_mean
from repro.metrics.counters import Counters, RunResult

__all__ = [
    "Counters",
    "RunResult",
    "burstiness",
    "byte_histogram",
    "peak_to_mean",
]
