"""Measurement: counters, run results, tables, timeline analyses."""

from repro.metrics.analysis import (
    burstiness,
    byte_histogram,
    peak_to_mean,
    utilization_table,
)
from repro.metrics.counters import (
    FAULT_COUNTERS,
    RECOVERY_COUNTERS,
    RESILIENCE_COUNTERS,
    SERVICE_COUNTERS,
    Counters,
    RunResult,
    fault_summary,
    service_summary,
)

__all__ = [
    "Counters",
    "RunResult",
    "FAULT_COUNTERS",
    "RECOVERY_COUNTERS",
    "RESILIENCE_COUNTERS",
    "SERVICE_COUNTERS",
    "fault_summary",
    "service_summary",
    "burstiness",
    "byte_histogram",
    "peak_to_mean",
    "utilization_table",
]
