"""Run results and work/message counters shared by all drivers."""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "Counters",
    "RunResult",
    "FAULT_COUNTERS",
    "RECOVERY_COUNTERS",
    "RESILIENCE_COUNTERS",
    "SERVICE_COUNTERS",
    "fault_summary",
    "service_summary",
]

#: The canonical fault/resilience counter family.  Injectors write the
#: ``fault_*`` names (what the plan did to the run); the reliable
#: transport writes the ``transport_*`` names (what the runtime did to
#: survive it).  All are zero — in fact absent — on fault-free runs.
FAULT_COUNTERS = (
    "fault_dropped",
    "fault_duplicated",
    "fault_delayed",
    "fault_straggler_rounds",
    "fault_stalls",
    "fault_stall_time_us",
    "transport_sends",
    "transport_retransmits",
    "transport_acks_sent",
    "transport_acks_received",
    "transport_stale_acks",
    "transport_duplicates_suppressed",
    "transport_stale_incarnation_drops",
    "transport_dead_receiver_drops",
    "transport_dead_sender_timeouts",
)

#: The fail-stop recovery counter family (:mod:`repro.recovery`):
#: what the checkpoint/recovery layer did during a crashed run.  Like
#: the fault counters, absent on runs without a recovery coordinator.
RECOVERY_COUNTERS = (
    "recovery_checkpoints_taken",
    "recovery_bytes_snapshotted",
    "recovery_ranks_recovered",
    "recovery_tokens_reclaimed",
    "recovery_replay_messages",
)


#: The fail-stop *process* resilience family: what the fault-tolerant
#: execution layers did about real OS-level worker loss.  The pooled
#: PDES driver writes the checkpoint/replay/respawn names (via
#: :class:`repro.sim.partition.WindowStats`); the serving layer writes
#: the retry/quarantine names.  Deliberately kept out of
#: :class:`RunResult.counters` — a recovered run must digest
#: bit-identical to an undisturbed one, so these live in the run's
#: *stats*, not its result.
RESILIENCE_COUNTERS = (
    "resilience_checkpoints_taken",
    "resilience_windows_replayed",
    "resilience_workers_respawned",
    "resilience_jobs_retried",
    "resilience_specs_quarantined",
)


#: The serving-layer counter family (:mod:`repro.serve`): what the
#: ``repro serve`` front door did with the traffic it saw.  Requests
#: are HTTP submits; cells are the run-grid units they expand to.
#: ``service_deduped`` counts cells coalesced onto an identical
#: in-flight execution (single-flight on the run-cache key);
#: ``service_cache_hits`` counts cells answered by the persistent run
#: cache inside a worker.  ``service_retries`` counts failed attempts
#: re-queued under the per-class retry policy (``service_respawn_retries``
#: is the subset caused by a worker crash rather than a deadline);
#: ``service_quarantined`` counts specs poisoned out of admission after
#: repeatedly crashing their worker.
SERVICE_COUNTERS = (
    "service_requests",
    "service_rejected",
    "service_cells",
    "service_deduped",
    "service_cache_hits",
    "service_completed",
    "service_failed",
    "service_cancelled",
    "service_retries",
    "service_respawn_retries",
    "service_quarantined",
    "service_trace_exports",
)


def service_summary(counters: "Counters") -> dict[str, float]:
    """The serving-layer counters present in a counter bag."""
    return {
        name: float(counters[name])
        for name in SERVICE_COUNTERS
        if name in counters
    }


def fault_summary(counters: "Counters") -> dict[str, float]:
    """The fault/resilience/recovery counters present in a counter bag.

    Chaos tables and reports use this to show exactly what was injected
    into a run and how the delivery, recovery, and process-resilience
    layers absorbed it.
    """
    return {
        name: float(counters[name])
        for name in (*FAULT_COUNTERS, *RECOVERY_COUNTERS,
                     *RESILIENCE_COUNTERS)
        if name in counters
    }


class Counters(Counter):
    """A string-keyed counter bag with float values.

    Thin wrapper over :class:`collections.Counter` so drivers can do
    ``counters["edges_processed"] += n`` without key setup, plus a
    merge that keeps provenance readable.
    """

    def merge(self, other: "Counters", prefix: str = "") -> None:
        for key, value in other.items():
            self[f"{prefix}{key}"] += value


@dataclass
class RunResult:
    """Outcome of one application run under one framework driver.

    ``time_ms`` is simulated wall time (the paper's tables are in ms).
    ``output`` carries the application's final state (e.g. the global
    depth array) so the harness can validate against the serial
    reference.
    """

    framework: str
    app: str
    dataset: str
    n_gpus: int
    time_ms: float
    counters: Counters = field(default_factory=Counters)
    output: Any = None
    #: Optional communication timeline [(time_us, bytes), ...] for the
    #: smoothness analyses (repro.metrics.analysis).
    timeline: Any = None
    #: The run's :class:`repro.telemetry.Telemetry` span hub when the
    #: run traced itself, else None.  Like the wall-clock fields it is
    #: excluded from :meth:`digest` (spans are observation, not
    #: outcome) and stripped before persistent-cache storage.
    telemetry: Any = None
    #: Host wall-clock seconds spent computing this run (0.0 when the
    #: result came out of a cache rather than a simulation).
    wall_clock_s: float = 0.0
    #: Persistent-cache accounting for this run: (1, 0) served from
    #: disk, (0, 1) computed with caching on, (0, 0) caching off.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Host-side observation of how the run was executed (e.g. the
    #: partitioned coordinator's ``WindowStats.as_dict()``).  Excluded
    #: from :meth:`digest` like the other host metadata, but — unlike
    #: ``telemetry`` — *kept* through persistent-cache storage so
    #: critical-path objectives survive a cache-hit replay.
    host_stats: Any = None

    def speedup_over(self, other: "RunResult") -> float:
        """other.time / self.time — how much faster self is."""
        if self.time_ms <= 0:
            raise ValueError("non-positive runtime")
        return other.time_ms / self.time_ms

    def digest(self) -> str:
        """SHA-256 over the *deterministic* content of the result.

        Covers identity, simulated time, every counter, and the exact
        output bytes — and deliberately excludes host-side metadata
        (``wall_clock_s``, cache accounting), so a fresh simulation, a
        pooled worker's result, and a cache-hit replay of the same spec
        must all digest identically.  The golden-trace suite pins this.
        """
        h = hashlib.sha256()
        h.update(
            f"{self.framework}|{self.app}|{self.dataset}|{self.n_gpus}"
            f"|{self.time_ms!r}".encode()
        )
        for key in sorted(self.counters):
            h.update(f"|{key}={float(self.counters[key])!r}".encode())
        if self.output is not None:
            arr = np.asarray(self.output)
            h.update(f"|{arr.dtype.str}|{arr.shape}".encode())
            h.update(arr.tobytes())
        return h.hexdigest()
