"""Run results and work/message counters shared by all drivers."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Counters", "RunResult"]


class Counters(Counter):
    """A string-keyed counter bag with float values.

    Thin wrapper over :class:`collections.Counter` so drivers can do
    ``counters["edges_processed"] += n`` without key setup, plus a
    merge that keeps provenance readable.
    """

    def merge(self, other: "Counters", prefix: str = "") -> None:
        for key, value in other.items():
            self[f"{prefix}{key}"] += value


@dataclass
class RunResult:
    """Outcome of one application run under one framework driver.

    ``time_ms`` is simulated wall time (the paper's tables are in ms).
    ``output`` carries the application's final state (e.g. the global
    depth array) so the harness can validate against the serial
    reference.
    """

    framework: str
    app: str
    dataset: str
    n_gpus: int
    time_ms: float
    counters: Counters = field(default_factory=Counters)
    output: Any = None
    #: Optional communication timeline [(time_us, bytes), ...] for the
    #: smoothness analyses (repro.metrics.analysis).
    timeline: Any = None

    def speedup_over(self, other: "RunResult") -> float:
        """other.time / self.time — how much faster self is."""
        if self.time_ms <= 0:
            raise ValueError("non-positive runtime")
        return other.time_ms / self.time_ms
