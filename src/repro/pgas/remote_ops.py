"""One-sided memory operations (put / get / remote atomics).

This is the Atos communication primitive set: a GPU thread issues an
operation against a remote PE's symmetric memory *from inside a
kernel*, with no remote-side involvement (paper Listing 5's
``atomicMin(bfs.depth+neighbor, depth+1, pe)``).

Operations are asynchronous: the call returns immediately; the effect
is applied at the destination when the message arrives through the
:class:`~repro.interconnect.transfer.NetworkFabric`.  ``get`` is the
only operation with a reply leg.  Local-PE operations apply instantly
(a plain device memory access).

The *control path* cost is on the GPU (``gpu_control_path_latency``)
— baselines that route control through the CPU pass their penalty via
``extra_latency`` instead, which is exactly the experiment knob the
paper turns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.config import CostModel
from repro.errors import PGASError
from repro.gpu.atomics import atomic_add_relaxed, atomic_min_relaxed
from repro.interconnect.transfer import NetworkFabric
from repro.pgas.symmetric_heap import SymmetricArray

__all__ = ["RemoteOps"]

#: Wire cost per element of a one-sided vector op: index + value.
BYTES_PER_ELEMENT = 12


@dataclass
class _OpCounters:
    puts: int = 0
    gets: int = 0
    atomics: int = 0
    local_ops: int = 0
    elements: int = 0


class RemoteOps:
    """One-sided op endpoint over a fabric + symmetric heap."""

    def __init__(
        self,
        fabric: NetworkFabric,
        cost: Optional[CostModel] = None,
    ):
        self.fabric = fabric
        self.env = fabric.env
        self.cost = cost or fabric.machine.cost
        self.counters = _OpCounters()

    # ------------------------------------------------------------ helpers
    def _payload_bytes(self, n_elements: int) -> int:
        return max(1, n_elements) * BYTES_PER_ELEMENT

    def _issue(
        self,
        src_pe: int,
        dst_pe: int,
        n_elements: int,
        apply: Callable[[], None],
        extra_latency: float = 0.0,
    ) -> float:
        """Route an op through the fabric; returns arrival time."""
        return self.fabric.send(
            src_pe,
            dst_pe,
            self._payload_bytes(n_elements),
            None,
            lambda _msg: apply(),
            extra_latency=extra_latency + self.cost.gpu_control_path_latency,
        )

    @staticmethod
    def _check(array: SymmetricArray, pe: int, idx: np.ndarray) -> np.ndarray:
        buf = array.local(pe)
        idx = np.asarray(idx, dtype=np.int64)
        if len(idx) and (idx.min() < 0 or idx.max() >= len(buf)):
            raise PGASError(
                f"offset out of range for {array.name!r} on PE {pe}"
            )
        return idx

    # ---------------------------------------------------------------- put
    def put(
        self,
        src_pe: int,
        dst_pe: int,
        array: SymmetricArray,
        idx: np.ndarray,
        values: np.ndarray,
        on_complete: Optional[Callable[[], None]] = None,
        extra_latency: float = 0.0,
    ) -> float:
        """Scatter ``values`` into ``array[idx]`` on ``dst_pe``."""
        idx = self._check(array, dst_pe, idx)
        values = np.asarray(values, dtype=array.local(dst_pe).dtype)
        if idx.shape != values.shape:
            raise PGASError("idx and values must have matching shapes")
        self.counters.elements += len(idx)

        def apply() -> None:
            array.local(dst_pe)[idx] = values
            if on_complete is not None:
                on_complete()

        if src_pe == dst_pe:
            self.counters.local_ops += 1
            apply()
            return self.env.now
        self.counters.puts += 1
        return self._issue(src_pe, dst_pe, len(idx), apply, extra_latency)

    # ---------------------------------------------------------------- get
    def get(
        self,
        src_pe: int,
        dst_pe: int,
        array: SymmetricArray,
        idx: np.ndarray,
        on_data: Callable[[np.ndarray], None],
        extra_latency: float = 0.0,
    ) -> None:
        """Fetch ``array[idx]`` from ``dst_pe``; ``on_data`` gets the copy."""
        idx = self._check(array, dst_pe, idx)
        self.counters.elements += len(idx)
        if src_pe == dst_pe:
            self.counters.local_ops += 1
            on_data(array.local(dst_pe)[idx].copy())
            return
        self.counters.gets += 1

        def reply() -> None:
            data = array.local(dst_pe)[idx].copy()
            self.fabric.send(
                dst_pe,
                src_pe,
                self._payload_bytes(len(idx)),
                None,
                lambda _msg: on_data(data),
            )

        self._issue(src_pe, dst_pe, len(idx), reply, extra_latency)

    # ------------------------------------------------------------ atomics
    def atomic_min(
        self,
        src_pe: int,
        dst_pe: int,
        array: SymmetricArray,
        idx: np.ndarray,
        values: np.ndarray,
        on_old: Optional[Callable[[np.ndarray], None]] = None,
        extra_latency: float = 0.0,
    ) -> float:
        """Remote ``atomicMin``; optional ``on_old`` receives old values
        *at the destination* (used for the push-if-improved pattern)."""
        idx = self._check(array, dst_pe, idx)
        values = np.asarray(values, dtype=array.local(dst_pe).dtype)
        if idx.shape != values.shape:
            raise PGASError("idx and values must have matching shapes")
        self.counters.elements += len(idx)

        def apply() -> None:
            old = atomic_min_relaxed(array.local(dst_pe), idx, values)
            if on_old is not None:
                on_old(old)

        if src_pe == dst_pe:
            self.counters.local_ops += 1
            apply()
            return self.env.now
        self.counters.atomics += 1
        return self._issue(src_pe, dst_pe, len(idx), apply, extra_latency)

    def atomic_add(
        self,
        src_pe: int,
        dst_pe: int,
        array: SymmetricArray,
        idx: np.ndarray,
        values: np.ndarray,
        on_old: Optional[Callable[[np.ndarray], None]] = None,
        extra_latency: float = 0.0,
    ) -> float:
        """Remote ``atomicAdd`` (PageRank's residual propagation)."""
        idx = self._check(array, dst_pe, idx)
        values = np.asarray(values, dtype=array.local(dst_pe).dtype)
        if idx.shape != values.shape:
            raise PGASError("idx and values must have matching shapes")
        self.counters.elements += len(idx)

        def apply() -> None:
            old = atomic_add_relaxed(array.local(dst_pe), idx, values)
            if on_old is not None:
                on_old(old)

        if src_pe == dst_pe:
            self.counters.local_ops += 1
            apply()
            return self.env.now
        self.counters.atomics += 1
        return self._issue(src_pe, dst_pe, len(idx), apply, extra_latency)
