"""Partitioned global arrays: the PGAS "distributed data structure" view.

A :class:`DistributedArray` maps a global index space onto per-PE
slices via a :class:`~repro.graph.partition.Partition`.  This is how
application state (BFS depths, PageRank ranks/residuals) is spread
over GPUs: ``owner[v]`` says which PE holds vertex ``v``; reads and
writes at global indices are translated to (pe, local offset) pairs —
with remote accesses flowing through :class:`~repro.pgas.remote_ops.RemoteOps`.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import PGASError
from repro.graph.partition import Partition
from repro.pgas.remote_ops import RemoteOps
from repro.pgas.symmetric_heap import SymmetricArray, SymmetricHeap

__all__ = ["DistributedArray"]


class DistributedArray:
    """A global array partitioned over PEs."""

    def __init__(
        self,
        heap: SymmetricHeap,
        name: str,
        partition: Partition,
        dtype=np.float64,
        fill=0,
    ):
        if heap.n_pes != partition.n_parts:
            raise PGASError("heap PE count != partition part count")
        self.partition = partition
        self.backing: SymmetricArray = heap.malloc_partitioned(
            name,
            [partition.part_size(pe) for pe in range(partition.n_parts)],
            dtype=dtype,
            fill=fill,
        )

    @property
    def name(self) -> str:
        return self.backing.name

    @property
    def n_global(self) -> int:
        return self.partition.n_vertices

    # ------------------------------------------------------- translation
    def locate(self, global_idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(owner PE, local offset) for each global index."""
        global_idx = np.asarray(global_idx, dtype=np.int64)
        if len(global_idx) and (
            global_idx.min() < 0 or global_idx.max() >= self.n_global
        ):
            raise PGASError("global index out of range")
        return (
            self.partition.owner[global_idx],
            self.partition.local_index[global_idx],
        )

    def local_slice(self, pe: int) -> np.ndarray:
        """This PE's slice (direct reference)."""
        return self.backing.local(pe)

    # ------------------------------------------------- whole-array views
    def gather_global(self) -> np.ndarray:
        """Assemble the full global array (host-side, for validation)."""
        out = np.empty(self.n_global, dtype=self.backing.local(0).dtype)
        for pe in range(self.partition.n_parts):
            out[self.partition.part_vertices[pe]] = self.backing.local(pe)
        return out

    def scatter_global(self, values: np.ndarray) -> None:
        """Initialize all PE slices from a full global array."""
        values = np.asarray(values)
        if len(values) != self.n_global:
            raise PGASError("global array length mismatch")
        for pe in range(self.partition.n_parts):
            self.backing.local(pe)[...] = values[
                self.partition.part_vertices[pe]
            ]

    def fill(self, value) -> None:
        self.backing.fill(value)

    # ---------------------------------------------------- one-sided ops
    def atomic_min_from(
        self,
        ops: RemoteOps,
        src_pe: int,
        global_idx: np.ndarray,
        values: np.ndarray,
        on_old: Optional[Callable[[int, np.ndarray, np.ndarray], None]] = None,
        extra_latency: float = 0.0,
    ) -> None:
        """atomicMin at global indices, split by owner PE.

        ``on_old(dst_pe, local_idx, old_values)`` fires per destination
        when that destination's batch applies.
        """
        owners, local = self.locate(global_idx)
        values = np.asarray(values)
        for pe in np.unique(owners):
            sel = owners == pe
            pe_local = local[sel]
            callback = None
            if on_old is not None:
                callback = (
                    lambda old, pe=int(pe), pe_local=pe_local: on_old(
                        pe, pe_local, old
                    )
                )
            ops.atomic_min(
                src_pe,
                int(pe),
                self.backing,
                pe_local,
                values[sel],
                on_old=callback,
                extra_latency=extra_latency,
            )

    def atomic_add_from(
        self,
        ops: RemoteOps,
        src_pe: int,
        global_idx: np.ndarray,
        values: np.ndarray,
        on_old: Optional[Callable[[int, np.ndarray, np.ndarray], None]] = None,
        extra_latency: float = 0.0,
    ) -> None:
        """atomicAdd at global indices, split by owner PE."""
        owners, local = self.locate(global_idx)
        values = np.asarray(values)
        for pe in np.unique(owners):
            sel = owners == pe
            pe_local = local[sel]
            callback = None
            if on_old is not None:
                callback = (
                    lambda old, pe=int(pe), pe_local=pe_local: on_old(
                        pe, pe_local, old
                    )
                )
            ops.atomic_add(
                src_pe,
                int(pe),
                self.backing,
                pe_local,
                values[sel],
                on_old=callback,
                extra_latency=extra_latency,
            )
