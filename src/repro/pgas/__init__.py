"""PGAS substrate: symmetric heap, one-sided ops, distributed arrays, teams."""

from repro.pgas.distributed_array import DistributedArray
from repro.pgas.remote_ops import RemoteOps
from repro.pgas.symmetric_heap import SymmetricArray, SymmetricHeap
from repro.pgas.team import Team

__all__ = [
    "SymmetricHeap",
    "SymmetricArray",
    "RemoteOps",
    "DistributedArray",
    "Team",
]
