"""PE teams: SPMD process groups with barriers and small collectives.

PGAS programs are SPMD: a fixed set of PEs starts together and
terminates together (paper Section II).  :class:`Team` gives the DES
processes that play the PEs a barrier and reduction primitives — used
by examples and by the BSP baseline's phase boundaries.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import PGASError
from repro.sim.core import Environment, Event

__all__ = ["Team"]


class Team:
    """A fixed group of ``n_pes`` simulated PEs."""

    def __init__(self, env: Environment, n_pes: int):
        if n_pes < 1:
            raise PGASError("need at least one PE")
        self.env = env
        self.n_pes = n_pes
        self._barrier_waiting: list[Event] = []
        self._barrier_values: list[Any] = []
        self._generation = 0

    def barrier(self, pe: int) -> Event:
        """Event that fires when all PEs have entered the barrier."""
        return self._enter(pe, None, None)

    def allreduce(
        self, pe: int, value: Any, op: Callable[[Any, Any], Any]
    ) -> Event:
        """Barrier + reduction: every PE's event yields the reduced value."""
        return self._enter(pe, value, op)

    def _enter(self, pe: int, value: Any, op) -> Event:
        if not 0 <= pe < self.n_pes:
            raise PGASError(f"PE {pe} out of range")
        if len(self._barrier_waiting) >= self.n_pes:
            raise PGASError("barrier generation overflow")  # pragma: no cover
        event = self.env.event()
        self._barrier_waiting.append(event)
        self._barrier_values.append(value)
        if len(self._barrier_waiting) == self.n_pes:
            waiting = self._barrier_waiting
            values = self._barrier_values
            self._barrier_waiting = []
            self._barrier_values = []
            self._generation += 1
            result: Any = None
            if op is not None:
                result = values[0]
                for v in values[1:]:
                    result = op(result, v)
            for ev in waiting:
                ev.succeed(result)
        return event

    @property
    def generation(self) -> int:
        """Number of completed barrier episodes."""
        return self._generation
