"""Symmetric heap: NVSHMEM-style allocation across PEs.

``nvshmem_malloc`` allocates the same object on every PE and returns a
symmetric address valid everywhere.  :class:`SymmetricHeap` mirrors
that: :meth:`malloc` creates one numpy buffer per PE under a single
name, and :class:`SymmetricArray` exposes per-PE views.  Partitioned
allocations (different length per PE — e.g. the depth slice of each
GPU's owned vertices) use :meth:`malloc_partitioned`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import PGASError

__all__ = ["SymmetricArray", "SymmetricHeap"]


class SymmetricArray:
    """One logical array with a per-PE instance."""

    __slots__ = ("name", "n_pes", "_buffers")

    def __init__(self, name: str, buffers: list[np.ndarray]):
        self.name = name
        self.n_pes = len(buffers)
        self._buffers = buffers

    def local(self, pe: int) -> np.ndarray:
        """The PE-local buffer (a real reference, not a copy)."""
        self._check_pe(pe)
        return self._buffers[pe]

    def _check_pe(self, pe: int) -> None:
        if not 0 <= pe < self.n_pes:
            raise PGASError(
                f"PE {pe} out of range for {self.name!r} ({self.n_pes} PEs)"
            )

    def size(self, pe: int) -> int:
        return len(self.local(pe))

    def fill(self, value) -> None:
        """Set every PE's buffer to ``value`` (host-side initialization)."""
        for buf in self._buffers:
            buf[...] = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        shapes = [b.shape for b in self._buffers]
        return f"SymmetricArray({self.name!r}, shapes={shapes})"


class SymmetricHeap:
    """Named symmetric allocations for a fixed set of PEs."""

    def __init__(self, n_pes: int):
        if n_pes < 1:
            raise PGASError("need at least one PE")
        self.n_pes = n_pes
        self._arrays: dict[str, SymmetricArray] = {}

    def malloc(
        self, name: str, shape: int | tuple, dtype=np.float64, fill=0
    ) -> SymmetricArray:
        """Allocate ``shape`` on *every* PE (symmetric sizes)."""
        return self._register(
            name,
            [np.full(shape, fill, dtype=dtype) for _ in range(self.n_pes)],
        )

    def malloc_partitioned(
        self,
        name: str,
        sizes: Sequence[int],
        dtype=np.float64,
        fill=0,
    ) -> SymmetricArray:
        """Allocate a per-PE-sized buffer (a partitioned global array)."""
        if len(sizes) != self.n_pes:
            raise PGASError(
                f"need {self.n_pes} sizes, got {len(sizes)}"
            )
        return self._register(
            name, [np.full(int(s), fill, dtype=dtype) for s in sizes]
        )

    def _register(self, name: str, buffers: list[np.ndarray]) -> SymmetricArray:
        if name in self._arrays:
            raise PGASError(f"symmetric array {name!r} already allocated")
        array = SymmetricArray(name, buffers)
        self._arrays[name] = array
        return array

    def get(self, name: str) -> SymmetricArray:
        try:
            return self._arrays[name]
        except KeyError:
            raise PGASError(f"no symmetric array named {name!r}") from None

    def free(self, name: str) -> None:
        if name not in self._arrays:
            raise PGASError(f"no symmetric array named {name!r}")
        del self._arrays[name]

    def __contains__(self, name: str) -> bool:
        return name in self._arrays
