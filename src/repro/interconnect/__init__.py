"""Interconnect substrate: link cost models, topologies, DES transport."""

from repro.interconnect.infiniband import (
    InfiniBandModel,
    default_ib,
    optimal_batch_size,
)
from repro.interconnect.link import LinkModel
from repro.interconnect.nvlink import (
    MAX_SECTORS_PER_PACKET,
    PACKET_HEADER_BYTES,
    SECTOR_BYTES,
    NVLinkModel,
    default_nvlink,
)
from repro.interconnect.pcie import PCIeModel, default_pcie
from repro.interconnect.topology import Topology, link_model_for
from repro.interconnect.transfer import LinkChannel, Message, NetworkFabric

__all__ = [
    "LinkModel",
    "NVLinkModel",
    "PCIeModel",
    "InfiniBandModel",
    "default_nvlink",
    "default_pcie",
    "default_ib",
    "optimal_batch_size",
    "SECTOR_BYTES",
    "MAX_SECTORS_PER_PACKET",
    "PACKET_HEADER_BYTES",
    "Topology",
    "link_model_for",
    "LinkChannel",
    "Message",
    "NetworkFabric",
]
