"""Interconnect topologies (paper Figure 6 and the appendix matrix).

A :class:`Topology` wraps a :class:`~repro.config.MachineConfig` with
per-directed-pair :class:`~repro.interconnect.link.LinkModel` instances
and answers routing/cost queries.  All machines in the paper are fully
connected at the level we model (Daisy all-to-all NVLink; Summit-node
all-to-all with a socket penalty; Summit-IB through the fabric), so a
route is always the single direct link.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import MachineConfig
from repro.errors import TopologyError
from repro.interconnect.infiniband import InfiniBandModel
from repro.interconnect.link import LinkModel
from repro.interconnect.nvlink import NVLinkModel
from repro.interconnect.pcie import PCIeModel

__all__ = ["Topology", "link_model_for"]


def link_model_for(machine: MachineConfig, src: int, dst: int) -> LinkModel:
    """Instantiate the right :class:`LinkModel` subclass for a link."""
    spec = machine.link(src, dst)
    if spec.kind == "nvlink":
        return NVLinkModel(spec)
    if spec.kind == "pcie":
        return PCIeModel(spec)
    if spec.kind == "ib":
        return InfiniBandModel(spec, cost=machine.cost)
    raise TopologyError(f"unknown link kind {spec.kind!r}")


@dataclass(frozen=True)
class Topology:
    """All pairwise link models of one machine."""

    machine: MachineConfig

    def __post_init__(self) -> None:
        models = {}
        for (i, j) in self.machine.links:
            models[(i, j)] = link_model_for(self.machine, i, j)
        object.__setattr__(self, "_models", models)
        # Ranks marked down by fail-stop recovery (degraded mode).  The
        # dataclass stays a frozen value; the down-set is runtime state,
        # like the link-model cache above.
        object.__setattr__(self, "_down", set())

    @property
    def n_gpus(self) -> int:
        return self.machine.n_gpus

    # ------------------------------------------------------ degraded mode
    @property
    def down_ranks(self) -> frozenset:
        """Ranks whose routes are administratively down."""
        return frozenset(self._down)  # type: ignore[attr-defined]

    def mark_rank_down(self, pe: int) -> None:
        """Take every route to and from ``pe`` out of service."""
        if not 0 <= pe < self.n_gpus:
            raise TopologyError(f"no rank {pe} on {self.machine.name}")
        self._down.add(pe)  # type: ignore[attr-defined]

    def route_up(self, src: int, dst: int) -> bool:
        """Is the (src -> dst) route in service (both endpoints up)?"""
        down = self._down  # type: ignore[attr-defined]
        return src not in down and dst not in down

    def link(self, src: int, dst: int) -> LinkModel:
        try:
            return self._models[(src, dst)]  # type: ignore[attr-defined]
        except KeyError:
            raise TopologyError(
                f"no link {src}->{dst} on {self.machine.name}"
            ) from None

    def latency(self, src: int, dst: int) -> float:
        return self.link(src, dst).spec.latency

    def bandwidth(self, src: int, dst: int) -> float:
        return self.link(src, dst).spec.bandwidth

    # ----------------------------------------------------------- lookahead
    def partition_lookahead(
        self,
        src_ranks,
        dst_ranks,
        extra_latency: float = 0.0,
    ) -> float:
        """Minimum one-way latency from any rank in ``src_ranks`` to any
        rank in ``dst_ranks`` (plus ``extra_latency``, e.g. the CPU
        control-path hop).

        This is the conservative-PDES *lookahead* between two rank
        partitions: every cross-partition event must traverse a link,
        and a message sent at time ``t`` cannot arrive before ``t +
        lookahead`` (serialization only adds to that).  Disjoint
        partitions with no connecting link have infinite lookahead
        (they can never affect each other).
        """
        best = float("inf")
        for i in src_ranks:
            for j in dst_ranks:
                if i == j:
                    continue
                try:
                    latency = self.latency(i, j)
                except TopologyError:
                    continue
                best = min(best, latency + extra_latency)
        return best

    # ---------------------------------------------------------- summaries
    def bandwidth_matrix(self) -> np.ndarray:
        """n×n matrix of link bandwidths (0 on the diagonal)."""
        n = self.n_gpus
        matrix = np.zeros((n, n))
        for (i, j), model in self._models.items():  # type: ignore[attr-defined]
            matrix[i, j] = model.spec.bandwidth
        return matrix

    def latency_matrix(self) -> np.ndarray:
        n = self.n_gpus
        matrix = np.zeros((n, n))
        for (i, j), model in self._models.items():  # type: ignore[attr-defined]
            matrix[i, j] = model.spec.latency
        return matrix

    def mean_pair_latency(self) -> float:
        """Average one-way latency over all ordered GPU pairs.

        The latency-hiding experiment (Fig 7) contrasts Daisy's uniform
        low latency against Summit-node's socket-crossing penalty; this
        scalar summarizes exactly that difference.
        """
        lat = self.latency_matrix()
        n = self.n_gpus
        if n < 2:
            return 0.0
        return float(lat.sum() / (n * (n - 1)))

    def describe(self) -> str:
        """Human-readable connection matrix like the paper's appendix."""
        n = self.n_gpus
        header = "      " + "".join(f"GPU{j:<5}" for j in range(n))
        rows = [header]
        bw = self.bandwidth_matrix()
        for i in range(n):
            cells = []
            for j in range(n):
                if i == j:
                    cells.append("X       ")
                else:
                    spec = self.machine.link(i, j)
                    if spec.kind == "nvlink":
                        n_links = max(1, round(spec.bandwidth / 25000.0))
                        cells.append(f"NV{n_links}     ")
                    else:
                        cells.append(f"{spec.kind.upper():<8}")
            rows.append(f"GPU{i}  " + "".join(cells))
        del bw
        return "\n".join(rows)

    def bisection_bandwidth(self) -> float:
        """Min over balanced bipartitions of cross-partition bandwidth.

        Exhaustive over GPU subsets — machines here have ≤8 GPUs.
        """
        n = self.n_gpus
        if n < 2:
            return 0.0
        bw = self.bandwidth_matrix()
        best = float("inf")
        half = n // 2
        from itertools import combinations

        for subset in combinations(range(n), half):
            mask = np.zeros(n, dtype=bool)
            mask[list(subset)] = True
            cross = bw[mask][:, ~mask].sum() + bw[~mask][:, mask].sum()
            best = min(best, float(cross))
        return best
