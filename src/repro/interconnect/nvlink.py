"""NVLink link model: sector-granular packets (paper Figure 2).

NVLink moves data in 32-byte *sectors*; a packet (flit train) carries
up to four sectors (128 bytes) behind a fixed header.  A request is
rounded up to whole sectors, so bandwidth efficiency is a staircase of
``payload / (ceil(payload/32)*32 + header)`` — exactly the shape of the
paper's Figure 2, where "even a 32 byte payload has more than 50%
efficiency".

The model also captures what makes NVLink friendly to Atos-style
fine-grained communication: remote accesses behave like ordinary loads
and stores, so adjacent accesses within a warp coalesce into a single
packet (``coalesced_wire_bytes``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import LinkSpec
from repro.interconnect.link import LinkModel

__all__ = ["NVLinkModel", "SECTOR_BYTES", "MAX_SECTORS_PER_PACKET",
           "PACKET_HEADER_BYTES"]

#: Minimum payload granule on NVLink (paper Fig. 2 caption).
SECTOR_BYTES = 32
#: A NVLink packet can carry up to 4 sectors (paper Fig. 2 caption).
MAX_SECTORS_PER_PACKET = 4
#: Fixed per-packet framing (header + CRC flits), calibrated so a
#: full 128-byte packet lands at ~89% efficiency and a single 32-byte
#: sector at ~67%, matching the Figure 2 curve.
PACKET_HEADER_BYTES = 16


@dataclass(frozen=True)
class NVLinkModel(LinkModel):
    """Sector/packet framing over an NVLink :class:`LinkSpec`."""

    def wire_bytes(self, payload: int) -> int:
        if payload < 0:
            raise ValueError("payload must be non-negative")
        if payload == 0:
            return 0
        sectors = -(-payload // SECTOR_BYTES)  # ceil division
        packets = -(-sectors // MAX_SECTORS_PER_PACKET)
        return sectors * SECTOR_BYTES + packets * PACKET_HEADER_BYTES

    def coalesced_wire_bytes(self, n_accesses: int, access_bytes: int) -> int:
        """Wire bytes for ``n_accesses`` *adjacent* accesses from a warp.

        Adjacent accesses are merged before issue, so the framing
        overhead is amortized over the whole coalesced range — the
        hardware behaviour that lets Atos issue per-warp collective
        loads/stores cheaply (paper Section II).
        """
        if n_accesses < 0 or access_bytes < 0:
            raise ValueError("counts must be non-negative")
        return self.wire_bytes(n_accesses * access_bytes)

    def scattered_wire_bytes(self, n_accesses: int, access_bytes: int) -> int:
        """Wire bytes when the same accesses do NOT coalesce.

        Each access pays its own sector rounding and packet header —
        the penalty Atos avoids by organizing threads into workers.
        """
        if n_accesses < 0 or access_bytes < 0:
            raise ValueError("counts must be non-negative")
        return n_accesses * self.wire_bytes(access_bytes)


def default_nvlink(bandwidth_gbs: float = 25.0, latency: float = 1.8) -> NVLinkModel:
    """Convenience constructor for a single-link NVLink model."""
    from repro.config import GB_PER_S

    return NVLinkModel(
        LinkSpec(
            kind="nvlink",
            bandwidth=bandwidth_gbs * GB_PER_S,
            latency=latency,
            max_payload=SECTOR_BYTES * MAX_SECTORS_PER_PACKET,
        )
    )
