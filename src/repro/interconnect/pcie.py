"""PCIe gen3 link model (the second curve of paper Figure 2).

PCIe moves Transaction Layer Packets: a 4-byte-aligned data payload
behind ~24 bytes of TLP/DLLP/framing overhead.  Small requests are
therefore much less efficient than on NVLink, and the efficiency curve
is smooth-but-lower across the 1-128 byte range that Figure 2 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GB_PER_S, LinkSpec
from repro.interconnect.link import LinkModel

__all__ = ["PCIeModel", "TLP_OVERHEAD_BYTES", "DWORD_BYTES",
           "MAX_TLP_PAYLOAD_BYTES", "default_pcie"]

#: Per-TLP protocol cost: TLP header (12-16 B) + sequence/LCRC + physical
#: framing, plus the amortized DLLP ACK and flow-control update traffic a
#: posted write stream induces on the link.  Calibrated so a full 128-byte
#: TLP lands at ~73% efficiency, matching measured gen3 write efficiency
#: and the relative placement of the two curves in paper Figure 2.
TLP_OVERHEAD_BYTES = 48
#: Payloads are rounded up to whole 4-byte dwords.
DWORD_BYTES = 4
#: Common max TLP payload size for gen3 root complexes.
MAX_TLP_PAYLOAD_BYTES = 256


@dataclass(frozen=True)
class PCIeModel(LinkModel):
    """TLP framing over a PCIe :class:`LinkSpec`."""

    def wire_bytes(self, payload: int) -> int:
        if payload < 0:
            raise ValueError("payload must be non-negative")
        if payload == 0:
            return 0
        wire = 0
        remaining = payload
        while remaining > 0:
            chunk = min(remaining, MAX_TLP_PAYLOAD_BYTES)
            padded = -(-chunk // DWORD_BYTES) * DWORD_BYTES
            wire += padded + TLP_OVERHEAD_BYTES
            remaining -= chunk
        return wire


def default_pcie(bandwidth_gbs: float = 12.0, latency: float = 2.5) -> PCIeModel:
    """PCIe gen3 x16 effective payload bandwidth ~12 GB/s."""
    return PCIeModel(
        LinkSpec(
            kind="pcie",
            bandwidth=bandwidth_gbs * GB_PER_S,
            latency=latency,
            max_payload=MAX_TLP_PAYLOAD_BYTES,
        )
    )
