"""InfiniBand link model (paper Figure 4 and Section III-A3b).

IB messages pass through the NIC: each message pays a fixed
GPU-initiated base latency (doorbell + WQE processing + fence) plus a
per-message NIC overhead, then serializes at rail bandwidth.  Unlike
NVLink, these costs cannot be hidden by instruction-level parallelism,
which is why Atos aggregates small messages into ~1 MiB batches on IB.

The two functions the paper sweeps in Figure 4:

* ``transfer_time(n)`` — latency vs. message size (left plot);
* ``achieved_bandwidth(n)`` — bandwidth vs. message size (right plot).

With EDR-rail constants the bandwidth knee sits right around 2**20
bytes, reproducing the paper's choice of a 1 MiB BATCH_SIZE.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import CostModel, GB_PER_S, LinkSpec
from repro.interconnect.link import LinkModel

__all__ = ["InfiniBandModel", "default_ib", "optimal_batch_size"]

#: IB MTU: each message is segmented into packets of this size, each
#: carrying local/global route + transport headers.
IB_MTU_BYTES = 4096
IB_PACKET_OVERHEAD_BYTES = 66  # LRH+GRH+BTH+ICRC+VCRC


@dataclass(frozen=True)
class InfiniBandModel(LinkModel):
    """NIC-mediated message cost over an IB :class:`LinkSpec`."""

    cost: CostModel = field(default_factory=CostModel)

    def wire_bytes(self, payload: int) -> int:
        if payload < 0:
            raise ValueError("payload must be non-negative")
        if payload == 0:
            return 0
        packets = -(-payload // IB_MTU_BYTES)
        return payload + packets * IB_PACKET_OVERHEAD_BYTES

    def transfer_time(self, payload: int) -> float:
        """One-way GPU-initiated message time (us): Figure 4, left."""
        return (
            self.cost.ib_base_latency
            + self.cost.ib_message_overhead
            + self.serialization_time(payload)
        )

    def sender_occupancy(self, payload: int) -> float:
        """Time the sending side is busy issuing the message (us).

        The GPU thread issues a doorbell and fence; the NIC serializes
        the bytes.  Back-to-back messages are limited by this, not by
        the one-way latency.
        """
        return self.cost.ib_message_overhead + self.serialization_time(payload)


def default_ib(bandwidth_gbs: float = 12.5) -> InfiniBandModel:
    """One EDR rail as on Summit (12.5 GB/s unidirectional)."""
    return InfiniBandModel(
        LinkSpec(
            kind="ib",
            bandwidth=bandwidth_gbs * GB_PER_S,
            latency=CostModel().ib_base_latency,
            max_payload=None,
        )
    )


def optimal_batch_size(
    model: InfiniBandModel,
    sizes: np.ndarray | None = None,
    bandwidth_fraction: float = 0.88,
) -> int:
    """Smallest message size achieving ``bandwidth_fraction`` of peak.

    This is the procedure the paper uses to pick BATCH_SIZE = 1 MiB:
    large enough to saturate the rail, no larger (latency matters too).
    With the default EDR constants the result is exactly
    :data:`repro.config.DEFAULT_BATCH_SIZE` — the pinned-constant test
    keeps the derivation and the config knob from drifting apart.
    """
    if sizes is None:
        sizes = 2 ** np.arange(0, 31)
    peak = model.spec.bandwidth
    for size in np.sort(sizes):
        if model.achieved_bandwidth(int(size)) >= bandwidth_fraction * peak:
            return int(size)
    return int(np.max(sizes))
