"""DES message transport over shared links.

:class:`NetworkFabric` is what the runtime and framework drivers use to
actually move bytes during a simulation.  Each directed GPU pair has a
:class:`LinkChannel` that serializes messages (a link carries one
message at a time at its bandwidth) and delivers them one-way-latency
after serialization completes — the standard LogGP-style treatment.

Delivery is callback-based: the sender never blocks (one-sided
semantics); the payload is handed to the destination's handler at the
arrival time.  Per-link counters feed the network-utilization numbers
(bytes, messages, busy time) the analysis sections use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.config import MachineConfig
from repro.errors import TopologyError
from repro.interconnect.topology import Topology
from repro.sim.core import Environment

__all__ = ["Message", "LinkChannel", "NetworkFabric"]


@dataclass(slots=True)
class Message:
    """One message in flight."""

    src: int
    dst: int
    payload_bytes: int
    payload: Any = None
    send_time: float = 0.0
    arrival_time: float = 0.0


@dataclass
class LinkChannel:
    """Serializes messages over one directed link."""

    env: Environment
    model: Any  # LinkModel
    #: Time at which the link is next free to start serializing.
    next_free: float = 0.0
    bytes_sent: int = 0
    wire_bytes_sent: int = 0
    messages_sent: int = 0
    busy_time: float = 0.0
    #: Optional shared sink for (serialization start, end) intervals.
    intervals: Any = None

    def reserve(self, message: Message, extra_latency: float = 0.0) -> float:
        """Occupy the link for ``message``; returns its arrival time.

        All of :meth:`send`'s source-side bookkeeping (serialization
        window, wire bytes, busy time) without scheduling the local
        delivery event — the partitioned engine uses this for messages
        whose destination rank lives on another partition, where the
        arrival fires in the *destination's* environment instead.
        """
        now = self.env.now
        start = max(now, self.next_free)
        serialization = self.model.serialization_time(message.payload_bytes)
        end = start + serialization
        self.next_free = end
        arrival = end + self.model.spec.latency + extra_latency
        message.send_time = now
        message.arrival_time = arrival

        self.bytes_sent += message.payload_bytes
        self.wire_bytes_sent += self.model.wire_bytes(message.payload_bytes)
        self.messages_sent += 1
        self.busy_time += serialization
        if self.intervals is not None:
            self.intervals.append((start, end))
        return arrival

    def send(
        self,
        message: Message,
        on_arrival: Callable[[Message], None],
        extra_latency: float = 0.0,
    ) -> float:
        """Schedule ``message``; returns its arrival time.

        ``extra_latency`` models added control-path cost (e.g. a CPU
        hop for Groute/Galois-style frameworks).
        """
        arrival = self.reserve(message, extra_latency=extra_latency)
        event = self.env.event()
        event.callbacks.append(lambda _ev: on_arrival(message))
        event.succeed(message, delay=arrival - self.env.now)
        return arrival

    def utilization(self, t_end: float | None = None) -> float:
        end = t_end if t_end is not None else self.env.now
        return self.busy_time / end if end > 0 else 0.0


class NetworkFabric:
    """All link channels of a machine plus in-flight accounting.

    ``in_flight`` counting is what distributed termination detection
    uses: the system is quiescent only when every queue is empty *and*
    no message is still traveling.
    """

    def __init__(self, env: Environment, machine: MachineConfig):
        self.env = env
        self.machine = machine
        self.topology = Topology(machine)
        #: (serialization start, end) of every transfer, all links.
        self.transfer_intervals: list[tuple[float, float]] = []
        self.channels: dict[tuple[int, int], LinkChannel] = {
            pair: LinkChannel(
                env,
                self.topology.link(*pair),
                intervals=self.transfer_intervals,
            )
            for pair in machine.links
        }
        self.in_flight = 0
        self.total_messages = 0
        self.total_bytes = 0
        #: Optional :class:`repro.faults.LinkFaultInjector`.  When set,
        #: every message's fate (drop / duplicate / delay) is consulted
        #: at send time; when ``None`` (the default) the send path is
        #: byte-for-byte the pre-fault code.
        self.fault_injector: Any = None
        self.dropped_messages = 0
        self.duplicate_messages = 0
        #: Optional :class:`repro.telemetry.Telemetry` hub.  When set,
        #: every send records a ``comm`` span (the serialization window
        #: on the source rank) and — for copies that actually arrive —
        #: a send→recv dependency edge for the critical-path walk.
        #: ``None`` (the default) leaves the send path untouched.
        self.telemetry: Any = None
        #: (send time, payload bytes) per message — the communication
        #: timeline the smoothness analyses consume.
        self.timeline: list[tuple[float, float]] = []
        #: Optional partition bridge (:mod:`repro.runtime.partitioned`).
        #: When set, a send whose destination rank the bridge does not
        #: own performs all source-side accounting (serialization,
        #: counters, fault fate, telemetry) and then *exports* the
        #: message — with its computed arrival time — instead of
        #: scheduling a local delivery; the window coordinator injects
        #: it into the owning partition's environment.  ``None`` (the
        #: default) leaves the send path byte-for-byte the serial code.
        self.partition_bridge: Any = None

    def send(
        self,
        src: int,
        dst: int,
        payload_bytes: int,
        payload: Any,
        on_arrival: Callable[[Message], None],
        extra_latency: float = 0.0,
    ) -> float:
        """One-sided send; returns arrival time.

        With a ``fault_injector`` installed, the message's fate is
        decided here: a *dropped* message still serializes (it occupies
        the wire) but its arrival is swallowed; a *duplicated* message
        serializes and delivers an extra copy; a *delayed* message
        picks up extra one-way latency.  In-flight accounting covers
        every copy, dropped or not, so ``quiescent`` stays truthful.
        """
        if src == dst:
            raise ValueError("no self-sends through the fabric")
        if self.topology.down_ranks and not self.topology.route_up(src, dst):
            raise TopologyError(
                f"route {src}->{dst} is marked down (degraded mode)"
            )
        channel = self.channels[(src, dst)]
        message = Message(src=src, dst=dst, payload_bytes=payload_bytes,
                          payload=payload)
        self.total_messages += 1
        self.total_bytes += payload_bytes
        self.timeline.append((self.env.now, float(payload_bytes)))

        fate = None
        if self.fault_injector is not None:
            fate = self.fault_injector.fate(src, dst, self.env.now)
            extra_latency += fate.extra_delay

        bridge = self.partition_bridge
        if bridge is not None and not bridge.owns(dst):
            return self._send_foreign(
                channel, message, src, dst, payload_bytes, payload,
                fate, extra_latency,
            )

        self.in_flight += 1
        if fate is not None and fate.dropped:
            self.dropped_messages += 1

            def deliver(msg: Message) -> None:
                self.in_flight -= 1  # lost in flight: no arrival

        else:

            def deliver(msg: Message) -> None:
                self.in_flight -= 1
                on_arrival(msg)

        queued_at = channel.next_free
        arrival = channel.send(message, deliver, extra_latency=extra_latency)
        if self.telemetry is not None:
            self._record(channel, src, dst, payload_bytes, queued_at,
                         arrival, dropped=fate is not None and fate.dropped)

        if fate is not None and not fate.dropped and fate.duplicates:
            for _ in range(fate.duplicates):
                self.duplicate_messages += 1
                copy = Message(src=src, dst=dst,
                               payload_bytes=payload_bytes, payload=payload)
                self.in_flight += 1
                # The copy re-serializes: a duplicated message occupies
                # the wire twice, like a spurious hardware retransmit.
                queued_at = channel.next_free
                copy_arrival = channel.send(
                    copy, deliver, extra_latency=extra_latency
                )
                if self.telemetry is not None:
                    self._record(channel, src, dst, payload_bytes,
                                 queued_at, copy_arrival, dropped=False)
        return arrival

    def _send_foreign(
        self,
        channel: LinkChannel,
        message: Message,
        src: int,
        dst: int,
        payload_bytes: int,
        payload: Any,
        fate: Any,
        extra_latency: float,
    ) -> float:
        """A send whose destination lives on another partition.

        Source-side physics and accounting are identical to the local
        path — the link serializes, counters and telemetry record, the
        fault fate applies — but delivery becomes an export handed to
        the partition bridge (surviving copies only; a dropped copy
        burned the wire and vanishes, exactly as locally).  In-flight
        accounting is skipped: the message is in the coordinator's
        hands between windows, not in this environment's event queue
        (``in_flight`` only feeds the recovery drain, and crash
        recovery runs single-partition).
        """
        bridge = self.partition_bridge
        dropped = fate is not None and fate.dropped
        if dropped:
            self.dropped_messages += 1
        queued_at = channel.next_free
        arrival = channel.reserve(message, extra_latency=extra_latency)
        if self.telemetry is not None:
            self._record(channel, src, dst, payload_bytes, queued_at,
                         arrival, dropped=dropped)
        if not dropped:
            bridge.export(message)
            if fate is not None and fate.duplicates:
                for _ in range(fate.duplicates):
                    self.duplicate_messages += 1
                    copy = Message(src=src, dst=dst,
                                   payload_bytes=payload_bytes,
                                   payload=payload)
                    queued_at = channel.next_free
                    copy_arrival = channel.reserve(
                        copy, extra_latency=extra_latency
                    )
                    if self.telemetry is not None:
                        self._record(channel, src, dst, payload_bytes,
                                     queued_at, copy_arrival, dropped=False)
                    bridge.export(copy)
        return arrival

    def _record(
        self,
        channel: LinkChannel,
        src: int,
        dst: int,
        payload_bytes: int,
        queued_at: float,
        arrival: float,
        dropped: bool,
    ) -> None:
        """Telemetry for one message copy just handed to ``channel``.

        The serialization window is reconstructed from the channel's
        bookkeeping: the copy started at ``max(send time, link free
        time)`` and the link is next free when it finished.  Dropped
        copies still burned the wire (comm span) but nothing downstream
        depends on them, so they produce no dependency edge.
        """
        start = max(self.env.now, queued_at)
        self.telemetry.span(
            src,
            "comm",
            start,
            channel.next_free,
            f"link{src}->{dst}" + (" (dropped)" if dropped else ""),
            n_bytes=payload_bytes,
            n_items=1,
        )
        if not dropped:
            self.telemetry.edge(
                src, dst, self.env.now, arrival, n_bytes=payload_bytes
            )

    @property
    def quiescent(self) -> bool:
        return self.in_flight == 0

    def stats(self) -> dict[str, float]:
        return {
            "messages": float(self.total_messages),
            "bytes": float(self.total_bytes),
            "dropped_messages": float(self.dropped_messages),
            "duplicate_messages": float(self.duplicate_messages),
            "wire_bytes": float(
                sum(c.wire_bytes_sent for c in self.channels.values())
            ),
            "max_link_utilization": max(
                (c.utilization() for c in self.channels.values()),
                default=0.0,
            ),
        }
