"""Base link cost model.

A link model answers two questions the rest of the system asks:

* ``wire_bytes(payload)`` — how many bytes actually cross the wire for
  a requested payload, including protocol framing.  The ratio
  ``payload / wire_bytes`` is the *bandwidth efficiency* the paper
  plots in Figure 2.
* ``transfer_time(payload)`` — one-way time for a single message:
  one-way latency plus serialization of the framed bytes at link
  bandwidth.

Subclasses implement the framing rules of each interconnect family.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import LinkSpec

__all__ = ["LinkModel"]


@dataclass(frozen=True)
class LinkModel:
    """Cost model over one :class:`~repro.config.LinkSpec`."""

    spec: LinkSpec

    # -- framing ---------------------------------------------------------
    def wire_bytes(self, payload: int) -> int:
        """Bytes on the wire for a ``payload``-byte request (framed)."""
        if payload < 0:
            raise ValueError("payload must be non-negative")
        return payload  # ideal link: no framing overhead

    def efficiency(self, payload: int) -> float:
        """Fraction of wire bytes that are payload (Figure 2's y-axis)."""
        if payload == 0:
            return 0.0
        return payload / self.wire_bytes(payload)

    # -- timing ----------------------------------------------------------
    def serialization_time(self, payload: int) -> float:
        """Time the framed message occupies the wire (us)."""
        return self.wire_bytes(payload) / self.spec.bandwidth

    def transfer_time(self, payload: int) -> float:
        """One-way delivery time for a single message (us)."""
        return self.spec.latency + self.serialization_time(payload)

    def achieved_bandwidth(self, payload: int) -> float:
        """Payload bytes per us when sending one message of this size.

        This is the quantity the paper sweeps in Figure 4 (right).
        """
        if payload == 0:
            return 0.0
        return payload / self.transfer_time(payload)
