"""Kernel execution strategies: discrete vs. persistent (paper §III).

Atos can run workers inside *discrete* kernels (one launch per
scheduling round, paying launch overhead each time) or a *persistent*
kernel (one launch for the whole run; workers loop on the queue).
Persistent kernels win when launch overhead dominates — BFS on
mesh-like graphs, whose tiny frontiers mean thousands of near-empty
rounds (paper Table II discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

from repro.config import CostModel

__all__ = ["KernelStrategy", "KernelModel", "FaultyKernelModel"]


class KernelStrategy(str, Enum):
    """How worker kernels are scheduled: one launch per round, or one
    persistent launch for the whole run."""

    DISCRETE = "discrete"
    PERSISTENT = "persistent"


@dataclass(frozen=True, slots=True)
class KernelModel:
    """Per-round overhead accounting for one kernel strategy."""

    strategy: KernelStrategy
    cost: CostModel

    def startup_overhead(self) -> float:
        """One-time cost before the first round (us)."""
        # Both strategies pay one launch to get going.
        return self.cost.kernel_launch_overhead

    def round_overhead(self) -> float:
        """Cost added to every scheduling round (us)."""
        if self.strategy is KernelStrategy.PERSISTENT:
            return 0.0
        # Discrete: relaunch + host-side synchronization per round.
        return self.cost.kernel_launch_overhead + self.cost.cpu_sync_overhead

    def teardown_overhead(self) -> float:
        """Cost after the final round (us)."""
        if self.strategy is KernelStrategy.PERSISTENT:
            # Final stop-condition propagation + host sync.
            return self.cost.cpu_sync_overhead
        return 0.0


class FaultyKernelModel:
    """A :class:`KernelModel` seen through a device-fault injector.

    Wraps the per-device time quantities the executor charges so that
    straggler windows stretch them and pending transient stalls land on
    round boundaries — the way a throttled or ECC-retiring GPU actually
    degrades: every kernel quantum gets slower, and occasionally the
    device simply goes away for a while.

    Only constructed when a fault plan is active; the fault-free
    executor keeps calling the plain :class:`KernelModel`, so the
    zero-fault event trace is untouched.
    """

    __slots__ = ("inner", "faults")

    def __init__(self, inner: KernelModel, faults: Any):
        self.inner = inner
        #: A :class:`repro.faults.DeviceFaultInjector` (duck-typed).
        self.faults = faults

    def startup_overhead(self, pe: int, now: float) -> float:
        """Launch cost on ``pe`` at ``now``, straggler-stretched."""
        return self.inner.startup_overhead() * self.faults.slowdown(pe, now)

    def teardown_overhead(self) -> float:
        """Teardown is charged after quiescence; faults are over."""
        return self.inner.teardown_overhead()

    def round_duration(self, pe: int, now: float, base: float) -> float:
        """One scheduling round's duration with device faults applied.

        ``base`` already includes the plain kernel round overhead; the
        injector stretches the whole round (straggler) and consumes any
        due one-shot stalls.
        """
        return self.faults.round_duration(pe, now, base)
