"""Kernel execution strategies: discrete vs. persistent (paper §III).

Atos can run workers inside *discrete* kernels (one launch per
scheduling round, paying launch overhead each time) or a *persistent*
kernel (one launch for the whole run; workers loop on the queue).
Persistent kernels win when launch overhead dominates — BFS on
mesh-like graphs, whose tiny frontiers mean thousands of near-empty
rounds (paper Table II discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.config import CostModel

__all__ = ["KernelStrategy", "KernelModel"]


class KernelStrategy(str, Enum):
    """How worker kernels are scheduled: one launch per round, or one
    persistent launch for the whole run."""

    DISCRETE = "discrete"
    PERSISTENT = "persistent"


@dataclass(frozen=True, slots=True)
class KernelModel:
    """Per-round overhead accounting for one kernel strategy."""

    strategy: KernelStrategy
    cost: CostModel

    def startup_overhead(self) -> float:
        """One-time cost before the first round (us)."""
        # Both strategies pay one launch to get going.
        return self.cost.kernel_launch_overhead

    def round_overhead(self) -> float:
        """Cost added to every scheduling round (us)."""
        if self.strategy is KernelStrategy.PERSISTENT:
            return 0.0
        # Discrete: relaunch + host-side synchronization per round.
        return self.cost.kernel_launch_overhead + self.cost.cpu_sync_overhead

    def teardown_overhead(self) -> float:
        """Cost after the final round (us)."""
        if self.strategy is KernelStrategy.PERSISTENT:
            # Final stop-condition propagation + host sync.
            return self.cost.cpu_sync_overhead
        return 0.0
