"""GPU device model: atomics, occupancy, workers, kernels, memory."""

from repro.gpu.atomics import (
    atomic_add_exact,
    atomic_add_relaxed,
    atomic_min_exact,
    atomic_min_relaxed,
    duplicate_conflicts,
)
from repro.gpu.device import Occupancy, resident_ctas, resident_workers
from repro.gpu.kernel import KernelModel, KernelStrategy
from repro.gpu.memory import MemoryModel
from repro.gpu.worker import CTA, THREAD, WARP, WorkerConfig

__all__ = [
    "atomic_min_relaxed",
    "atomic_min_exact",
    "atomic_add_relaxed",
    "atomic_add_exact",
    "duplicate_conflicts",
    "Occupancy",
    "resident_ctas",
    "resident_workers",
    "KernelStrategy",
    "KernelModel",
    "MemoryModel",
    "WorkerConfig",
    "THREAD",
    "WARP",
    "CTA",
]
