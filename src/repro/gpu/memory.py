"""GPU memory-system cost model.

Irregular graph kernels are memory-bound: the time to process a batch
of edge updates is (bytes moved) / (achievable bandwidth), plus
serialization of conflicting atomics.  ``edge_throughput`` on the
:class:`~repro.config.GPUSpec` folds the scattered-access penalty of
graph traversal into a single sustained rate (~2 GTEPS on V100),
calibrated against single-GPU BFS runtimes in the paper's Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CostModel, GPUSpec

__all__ = ["MemoryModel"]


@dataclass(frozen=True, slots=True)
class MemoryModel:
    """Batch-cost queries against one GPU's memory system."""

    spec: GPUSpec
    cost: CostModel

    def edge_batch_time(self, n_edges: int, n_conflicts: int = 0) -> float:
        """Time to apply ``n_edges`` scattered edge updates (us).

        ``n_conflicts`` counts atomics that hit an address another
        atomic in the batch already targeted; each serializes.
        """
        if n_edges < 0 or n_conflicts < 0:
            raise ValueError("counts must be non-negative")
        if n_edges == 0:
            return 0.0
        return (
            n_edges / self.spec.edge_throughput
            + n_conflicts * self.spec.atomic_conflict_penalty
        )

    def queue_ops_time(self, n_tasks: int) -> float:
        """Amortized queue push/pop bookkeeping for ``n_tasks`` (us)."""
        if n_tasks < 0:
            raise ValueError("counts must be non-negative")
        return n_tasks * self.cost.queue_op_cost

    def bulk_copy_time(self, n_bytes: int) -> float:
        """Streaming copy through device memory (us)."""
        if n_bytes < 0:
            raise ValueError("counts must be non-negative")
        return n_bytes / self.spec.memory_bandwidth
