"""Simulated device atomics over numpy arrays.

Two flavors of batched atomic, matching two ways a GPU batch can
legally execute:

* ``*_exact`` — fully serialized semantics: every operation observes
  all earlier operations in the batch (on the same address).  This is
  one legal linearization and is the validation/reference flavor.
* ``*_relaxed`` — every operation reads the pre-batch value, all
  writes then land combined.  This is the other extreme legal under a
  relaxed memory model when operations race; it *over-reports*
  successes for duplicate addresses, which models the worst-case
  speculation of an asynchronous traversal (duplicate pushes are
  redundant work the algorithm must tolerate anyway — exactly the
  effect Table III quantifies).

Both return the per-operation "old" value like CUDA's ``atomicMin`` /
``atomicAdd`` so callers can detect success.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "atomic_min_relaxed",
    "atomic_min_exact",
    "atomic_add_relaxed",
    "atomic_add_exact",
    "duplicate_conflicts",
]


def _validate(array: np.ndarray, idx: np.ndarray, vals: np.ndarray) -> tuple:
    idx = np.asarray(idx, dtype=np.int64)
    vals = np.asarray(vals, dtype=array.dtype)
    if idx.shape != vals.shape:
        raise ValueError("idx and vals must have the same shape")
    if len(idx) and (idx.min() < 0 or idx.max() >= len(array)):
        raise IndexError("atomic index out of range")
    return idx, vals


def _occurrence_ranks(idx: np.ndarray) -> np.ndarray:
    """rank[k] = how many earlier batch ops target the same index."""
    order = np.argsort(idx, kind="stable")
    sorted_idx = idx[order]
    new_group = np.ones(len(idx), dtype=bool)
    new_group[1:] = sorted_idx[1:] != sorted_idx[:-1]
    group_start = np.flatnonzero(new_group)
    group_sizes = np.diff(np.append(group_start, len(idx)))
    ranks_sorted = np.arange(len(idx)) - np.repeat(group_start, group_sizes)
    ranks = np.empty(len(idx), dtype=np.int64)
    ranks[order] = ranks_sorted
    return ranks


def atomic_min_relaxed(
    array: np.ndarray, idx: np.ndarray, vals: np.ndarray
) -> np.ndarray:
    """Batched atomicMin; every op observes the pre-batch value."""
    idx, vals = _validate(array, idx, vals)
    if len(idx) == 0:
        return vals.copy()
    old = array[idx].copy()
    np.minimum.at(array, idx, vals)
    return old


def atomic_min_exact(
    array: np.ndarray, idx: np.ndarray, vals: np.ndarray
) -> np.ndarray:
    """Batched atomicMin; ops on one address serialize in batch order."""
    idx, vals = _validate(array, idx, vals)
    if len(idx) == 0:
        return vals.copy()
    old = np.empty(len(idx), dtype=array.dtype)
    ranks = _occurrence_ranks(idx)
    for r in range(int(ranks.max()) + 1):
        sel = ranks == r  # indices are unique within one round
        sel_idx = idx[sel]
        old[sel] = array[sel_idx]
        array[sel_idx] = np.minimum(array[sel_idx], vals[sel])
    return old


def atomic_add_relaxed(
    array: np.ndarray, idx: np.ndarray, vals: np.ndarray
) -> np.ndarray:
    """Batched atomicAdd; every op observes the pre-batch value.

    The *sum* is still exact (``np.add.at`` accumulates all
    operations); only the returned old values are pre-batch.
    """
    idx, vals = _validate(array, idx, vals)
    if len(idx) == 0:
        return vals.copy()
    old = array[idx].copy()
    np.add.at(array, idx, vals)
    return old


def atomic_add_exact(
    array: np.ndarray, idx: np.ndarray, vals: np.ndarray
) -> np.ndarray:
    """Batched atomicAdd with serialized per-address old values."""
    idx, vals = _validate(array, idx, vals)
    if len(idx) == 0:
        return vals.copy()
    old = np.empty(len(idx), dtype=array.dtype)
    ranks = _occurrence_ranks(idx)
    for r in range(int(ranks.max()) + 1):
        sel = ranks == r
        sel_idx = idx[sel]
        old[sel] = array[sel_idx]
        array[sel_idx] = array[sel_idx] + vals[sel]
    return old


def duplicate_conflicts(idx: np.ndarray) -> int:
    """Number of batch ops hitting an already-targeted address.

    Feeds the memory model's atomic-contention cost: conflicting
    atomics on one address serialize on the GPU.
    """
    idx = np.asarray(idx)
    if len(idx) == 0:
        return 0
    return int(len(idx) - len(np.unique(idx)))
