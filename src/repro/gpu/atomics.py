"""Simulated device atomics over numpy arrays.

Two flavors of batched atomic, matching two ways a GPU batch can
legally execute:

* ``*_exact`` — fully serialized semantics: every operation observes
  all earlier operations in the batch (on the same address).  This is
  one legal linearization and is the validation/reference flavor.
* ``*_relaxed`` — every operation reads the pre-batch value, all
  writes then land combined.  This is the other extreme legal under a
  relaxed memory model when operations race; it *over-reports*
  successes for duplicate addresses, which models the worst-case
  speculation of an asynchronous traversal (duplicate pushes are
  redundant work the algorithm must tolerate anyway — exactly the
  effect Table III quantifies).

Both return the per-operation "old" value like CUDA's ``atomicMin`` /
``atomicAdd`` so callers can detect success.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "atomic_min_relaxed",
    "atomic_min_exact",
    "atomic_add_relaxed",
    "atomic_add_exact",
    "duplicate_conflicts",
]


def _validate(array: np.ndarray, idx: np.ndarray, vals: np.ndarray) -> tuple:
    idx = np.asarray(idx, dtype=np.int64)
    vals = np.asarray(vals, dtype=array.dtype)
    if idx.shape != vals.shape:
        raise ValueError("idx and vals must have the same shape")
    if len(idx) and (idx.min() < 0 or idx.max() >= len(array)):
        raise IndexError("atomic index out of range")
    return idx, vals


def _occurrence_ranks(idx: np.ndarray) -> np.ndarray:
    """rank[k] = how many earlier batch ops target the same index."""
    order = np.argsort(idx, kind="stable")
    sorted_idx = idx[order]
    new_group = np.ones(len(idx), dtype=bool)
    new_group[1:] = sorted_idx[1:] != sorted_idx[:-1]
    group_start = np.flatnonzero(new_group)
    group_sizes = np.diff(np.append(group_start, len(idx)))
    ranks_sorted = np.arange(len(idx)) - np.repeat(group_start, group_sizes)
    ranks = np.empty(len(idx), dtype=np.int64)
    ranks[order] = ranks_sorted
    return ranks


def _serialized_old_values(
    array: np.ndarray, idx: np.ndarray, vals: np.ndarray, ufunc: np.ufunc
) -> np.ndarray:
    """Per-op "old" values under serialized (batch-order) semantics.

    ``old[k] = ufunc(pre_value, vals of all earlier same-address ops)``
    — i.e. a segmented *exclusive* scan of ``vals`` over same-address
    groups, folded with the pre-batch value.  A stable sort makes the
    groups contiguous and batch-ordered; the scan itself is a
    Hillis-Steele doubling pass masked by within-group rank, so the
    whole computation is O(n log d) vectorized numpy (d = heaviest
    duplication) with no per-rank Python loop over the batch.
    """
    n = len(idx)
    order = np.argsort(idx, kind="stable")
    sorted_idx = idx[order]
    sorted_vals = vals[order]
    new_group = np.ones(n, dtype=bool)
    new_group[1:] = sorted_idx[1:] != sorted_idx[:-1]
    group_start = np.flatnonzero(new_group)
    group_sizes = np.diff(np.append(group_start, n))
    rank = np.arange(n) - np.repeat(group_start, group_sizes)

    # Exclusive-scan input: each op sees its predecessor's value, group
    # leaders see the identity.
    identity = (
        np.array(np.inf, dtype=vals.dtype)
        if ufunc is np.minimum and np.issubdtype(vals.dtype, np.floating)
        else np.iinfo(vals.dtype).max
        if ufunc is np.minimum
        else vals.dtype.type(0)
    )
    scan = np.empty_like(sorted_vals)
    scan[new_group] = identity
    scan[~new_group] = sorted_vals[:-1][~new_group[1:]]

    # Doubling pass: after step d every op has folded its 2d nearest
    # in-group predecessors.  ``rank >= d`` both bounds the fold inside
    # the group and guarantees the shifted read stays in range.
    max_rank = int(group_sizes.max()) - 1
    d = 1
    while d <= max_rank:
        sel = rank[d:] >= d
        scan[d:][sel] = ufunc(scan[d:][sel], scan[:-d][sel])
        d <<= 1

    old = np.empty(n, dtype=array.dtype)
    old[order] = ufunc(array[sorted_idx], scan)
    return old


def atomic_min_relaxed(
    array: np.ndarray, idx: np.ndarray, vals: np.ndarray
) -> np.ndarray:
    """Batched atomicMin; every op observes the pre-batch value."""
    idx, vals = _validate(array, idx, vals)
    if len(idx) == 0:
        return vals.copy()
    old = array[idx].copy()
    np.minimum.at(array, idx, vals)
    return old


def atomic_min_exact(
    array: np.ndarray, idx: np.ndarray, vals: np.ndarray
) -> np.ndarray:
    """Batched atomicMin; ops on one address serialize in batch order.

    min is order-independent, so the final array state is one
    ``np.minimum.at``; only the serialized old values need the
    segmented scan (no per-rank Python loop either way).
    """
    idx, vals = _validate(array, idx, vals)
    if len(idx) == 0:
        return vals.copy()
    old = _serialized_old_values(array, idx, vals, np.minimum)
    np.minimum.at(array, idx, vals)
    return old


def atomic_add_relaxed(
    array: np.ndarray, idx: np.ndarray, vals: np.ndarray
) -> np.ndarray:
    """Batched atomicAdd; every op observes the pre-batch value.

    The *sum* is still exact (``np.add.at`` accumulates all
    operations); only the returned old values are pre-batch.
    """
    idx, vals = _validate(array, idx, vals)
    if len(idx) == 0:
        return vals.copy()
    old = array[idx].copy()
    np.add.at(array, idx, vals)
    return old


def atomic_add_exact(
    array: np.ndarray, idx: np.ndarray, vals: np.ndarray
) -> np.ndarray:
    """Batched atomicAdd with serialized per-address old values.

    ``np.add.at`` applies the operations unbuffered in batch order, so
    the final array state is the serialized one; the old values come
    from the segmented exclusive prefix sum.
    """
    idx, vals = _validate(array, idx, vals)
    if len(idx) == 0:
        return vals.copy()
    old = _serialized_old_values(array, idx, vals, np.add)
    np.add.at(array, idx, vals)
    return old


def duplicate_conflicts(idx: np.ndarray) -> int:
    """Number of batch ops hitting an already-targeted address.

    Feeds the memory model's atomic-contention cost: conflicting
    atomics on one address serialize on the GPU.
    """
    idx = np.asarray(idx)
    if len(idx) == 0:
        return 0
    return int(len(idx) - len(np.unique(idx)))
