"""Worker abstraction (paper Section II).

A *worker* is "a set of GPU resources, including a configurable number
of CUDA threads, shared memory, coupled with the number of tasks that
this worker will target".  Applications declare the worker size that
fits their task granularity; the launch APIs (launchThread /
launchWarp / launchCTA) correspond to the three kinds here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GPUSpec
from repro.errors import ConfigurationError
from repro.gpu.device import resident_workers

__all__ = ["WorkerConfig", "THREAD", "WARP", "CTA"]


@dataclass(frozen=True, slots=True)
class WorkerConfig:
    """Shape of the workers an application launches.

    ``fetch_size`` is how many tasks one worker pops per queue visit
    (the FETCH_SIZE template parameter of ``launchCTA``).
    """

    kind: str  # "thread" | "warp" | "cta"
    cta_threads: int = 512
    fetch_size: int = 1
    registers_per_thread: int = 32
    shared_mem_per_cta: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("thread", "warp", "cta"):
            raise ConfigurationError(f"unknown worker kind {self.kind!r}")
        if self.fetch_size < 1:
            raise ConfigurationError("fetch_size must be >= 1")
        if self.cta_threads < 1:
            raise ConfigurationError("cta_threads must be >= 1")
        if self.kind == "warp" and self.cta_threads % 32:
            raise ConfigurationError("warp workers need a multiple of 32")

    @property
    def threads_per_worker(self) -> int:
        return {"thread": 1, "warp": 32, "cta": self.cta_threads}[self.kind]

    def n_workers(self, spec: GPUSpec) -> int:
        """Concurrently resident workers of this shape on one GPU."""
        return resident_workers(
            spec,
            self.kind,
            cta_threads=self.cta_threads,
            registers_per_thread=self.registers_per_thread,
            shared_mem_per_cta=self.shared_mem_per_cta,
        )

    def tasks_per_round(self, spec: GPUSpec) -> int:
        """Tasks the whole GPU consumes per scheduling round."""
        return self.n_workers(spec) * self.fetch_size


#: The paper's evaluated configuration: 512-thread CTA workers.
CTA = WorkerConfig(kind="cta", cta_threads=512, fetch_size=1)
WARP = WorkerConfig(kind="warp", cta_threads=512, fetch_size=1)
THREAD = WorkerConfig(kind="thread", cta_threads=512, fetch_size=1)
