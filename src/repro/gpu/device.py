"""GPU device model: occupancy and worker-count derivation.

The Atos launch APIs size persistent grids to "the maximum number of
threads that can concurrently reside on the GPU based on the
application's register and shared memory usage" (paper Section III).
:func:`resident_ctas` reproduces the CUDA occupancy calculation at the
granularity this simulation needs: per-SM limits from threads, CTA
slots, registers, and shared memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GPUSpec
from repro.errors import ConfigurationError

__all__ = ["resident_ctas", "resident_workers", "Occupancy"]


@dataclass(frozen=True, slots=True)
class Occupancy:
    """Result of an occupancy query."""

    ctas_per_sm: int
    total_ctas: int
    total_threads: int
    limiting_factor: str


def resident_ctas(
    spec: GPUSpec,
    threads_per_cta: int,
    registers_per_thread: int = 32,
    shared_mem_per_cta: int = 0,
) -> Occupancy:
    """How many CTAs of this shape fit on the whole GPU at once."""
    if threads_per_cta < 1:
        raise ConfigurationError("threads_per_cta must be >= 1")
    if threads_per_cta > spec.max_threads_per_sm:
        raise ConfigurationError(
            f"CTA of {threads_per_cta} threads exceeds the per-SM limit"
        )
    limits = {
        "threads": spec.max_threads_per_sm // threads_per_cta,
        "cta_slots": spec.max_ctas_per_sm,
    }
    if registers_per_thread > 0:
        limits["registers"] = spec.registers_per_sm // (
            registers_per_thread * threads_per_cta
        )
    if shared_mem_per_cta > 0:
        limits["shared_memory"] = spec.shared_mem_per_sm // shared_mem_per_cta
    factor = min(limits, key=lambda k: limits[k])
    per_sm = limits[factor]
    if per_sm < 1:
        raise ConfigurationError(
            f"CTA shape does not fit on an SM (limited by {factor})"
        )
    total = per_sm * spec.n_sms
    return Occupancy(
        ctas_per_sm=per_sm,
        total_ctas=total,
        total_threads=total * threads_per_cta,
        limiting_factor=factor,
    )


def resident_workers(
    spec: GPUSpec,
    worker_kind: str,
    cta_threads: int = 512,
    registers_per_thread: int = 32,
    shared_mem_per_cta: int = 0,
) -> int:
    """Number of concurrently resident workers of a given kind.

    ``thread`` and ``warp`` workers subdivide resident CTAs; ``cta``
    workers are the CTAs themselves.  512-thread CTAs are the paper's
    best-performing worker size for both BFS and PageRank.
    """
    occ = resident_ctas(
        spec, cta_threads, registers_per_thread, shared_mem_per_cta
    )
    if worker_kind == "cta":
        return occ.total_ctas
    if worker_kind == "warp":
        return occ.total_threads // 32
    if worker_kind == "thread":
        return occ.total_threads
    raise ConfigurationError(f"unknown worker kind {worker_kind!r}")
