"""Persistent, content-addressed cache for experiment runs.

The evaluation grid re-runs the same (framework, app, dataset, machine,
#GPUs) cells across tables, figures, and repeated invocations.  Because
the DES engine is deterministic (same spec -> bit-identical result),
those runs are safe to memoize *across processes*: this module stores
pickled :class:`~repro.metrics.counters.RunResult` objects on disk,
keyed by a hash of the full run specification, the machine-config
constants it executed under, and the code version.

Safety properties the tests pin:

* **Atomic writes** — entries are written to a temp file in the cache
  directory and ``os.replace``\\ d into place, so a concurrent reader
  (or a crashed writer) never observes a partial entry.
* **Corruption detection** — every entry embeds a SHA-256 checksum of
  its payload; truncated, garbled, or unreadable entries are silently
  discarded and recomputed, never trusted or raised.
* **Key sensitivity** — any change to a spec field, a machine-config
  constant, or the package version changes the key, so mutated configs
  can never be served stale results.
* **Single flight** — within a process, concurrent writers of the same
  key serialize on a per-key lock, and :meth:`RunCache.single_flight`
  lets the first caller compute while same-key contemporaries wait and
  then read its entry instead of recomputing (the serving layer leans
  on this to coalesce identical concurrent requests).

Configuration is by environment variable so worker processes inherit
it: ``REPRO_CACHE_DIR`` overrides the cache directory and
``REPRO_CACHE=0`` disables persistence entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Any, Callable, Optional

from repro._version import __version__

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_DISABLE_ENV",
    "RunCache",
    "cache_enabled",
    "canonical_fingerprint",
    "code_fingerprint",
    "default_cache_dir",
    "get_cache",
    "machine_fingerprint",
]

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Set to ``0`` to disable the persistent cache entirely.
CACHE_DISABLE_ENV = "REPRO_CACHE"

#: Entry format: magic line, 64 hex chars of payload SHA-256, newline,
#: pickled payload.  Bump the magic when the layout changes so old
#: entries are treated as corrupt and recomputed.
_MAGIC = b"repro-run-cache-v1\n"
_DIGEST_LEN = 64
_SUFFIX = ".run"


def default_cache_dir() -> Path:
    """Cache directory: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-atos``."""
    override = os.environ.get(CACHE_DIR_ENV, "")
    if override:
        return Path(override).expanduser()
    base = os.environ.get("XDG_CACHE_HOME", "") or "~/.cache"
    return Path(base).expanduser() / "repro-atos"


def cache_enabled() -> bool:
    """Persistent caching is on unless ``REPRO_CACHE`` says otherwise."""
    return os.environ.get(CACHE_DISABLE_ENV, "1").lower() not in (
        "0",
        "false",
        "no",
        "off",
    )


# ------------------------------------------------------------ fingerprints
def _canon(value: Any) -> Any:
    """Reduce ``value`` to a JSON-serializable canonical form.

    Dataclasses flatten to (class name, field map) so every config
    constant participates in the fingerprint; dict iteration order is
    normalized away; floats go through ``repr`` (exact, deterministic).
    """
    if is_dataclass(value) and not isinstance(value, type):
        return [
            type(value).__name__,
            {f.name: _canon(getattr(value, f.name)) for f in fields(value)},
        ]
    if isinstance(value, dict):
        return ["dict", sorted((repr(k), _canon(v)) for k, v in value.items())]
    if isinstance(value, (list, tuple)):
        return ["seq", [_canon(v) for v in value]]
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return repr(value)
    return repr(value)


def canonical_fingerprint(value: Any) -> str:
    """SHA-256 over the canonical form of an arbitrary config value."""
    blob = json.dumps(_canon(value), separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def machine_fingerprint(machine: Any) -> str:
    """Fingerprint of a MachineConfig, covering every nested constant.

    GPU spec, link specs, and cost-model constants all feed the hash, so
    two machines that differ in any simulated-cost knob never share
    cache entries (the ``lru_cache``-era bug class this replaces).
    """
    return canonical_fingerprint(machine)


_code_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """Version tag for cache keys: package version + source content hash.

    Hashing the package's own ``*.py`` bytes means editing any model
    constant or algorithm invalidates old entries even without a
    version bump — stale-during-development is the worst failure mode a
    run cache can have.  Computed once per process (~half a megabyte of
    reads).
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        root = Path(__file__).resolve().parent.parent  # src/repro
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode("utf-8"))
            h.update(b"\0")
            try:
                h.update(path.read_bytes())
            except OSError:  # pragma: no cover - racing editor
                pass
        _code_fingerprint = f"{__version__}+{h.hexdigest()[:16]}"
    return _code_fingerprint


# ------------------------------------------------------------------- cache
class RunCache:
    """On-disk store of pickled run results, one checksummed file each."""

    def __init__(self, directory: Path | str | None = None):
        self.directory = Path(directory) if directory else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: single_flight callers who waited on a contemporary's compute
        #: and then read its fresh entry instead of recomputing.
        self.single_flight_waits = 0
        self._locks_guard = threading.Lock()
        self._key_locks: dict[str, threading.RLock] = {}

    def _key_lock(self, key: str) -> threading.RLock:
        """The per-key lock serializing same-key writers in-process."""
        with self._locks_guard:
            lock = self._key_locks.get(key)
            if lock is None:
                lock = self._key_locks[key] = threading.RLock()
            return lock

    # -- keys -----------------------------------------------------------
    @staticmethod
    def key(spec: dict[str, Any]) -> str:
        """Content key for a run spec dict (includes the code version)."""
        keyed = dict(spec)
        keyed.setdefault("code_version", code_fingerprint())
        return canonical_fingerprint(keyed)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}{_SUFFIX}"

    # -- IO -------------------------------------------------------------
    @staticmethod
    def _decode(blob: bytes) -> Any:
        """Checksum-verify and unpickle an entry; raises on any defect."""
        if not blob.startswith(_MAGIC):
            raise ValueError("bad magic")
        body = blob[len(_MAGIC):]
        digest, sep, payload = (
            body[:_DIGEST_LEN],
            body[_DIGEST_LEN:_DIGEST_LEN + 1],
            body[_DIGEST_LEN + 1:],
        )
        if sep != b"\n" or len(digest) != _DIGEST_LEN:
            raise ValueError("truncated header")
        if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
            raise ValueError("payload checksum mismatch")
        return pickle.loads(payload)

    def load(self, key: str) -> Optional[Any]:
        """Fetch an entry, or None on miss *or* any corruption.

        A bad entry (truncated write, bit rot, format drift) is deleted
        so the next store can replace it; it is never propagated.
        """
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            value = self._decode(blob)
        except Exception:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing unlink
                pass
            self.misses += 1
            return None
        self.hits += 1
        return value

    def store(self, key: str, value: Any) -> Path:
        """Atomically persist ``value`` under ``key``.

        Written via a temp file + ``os.replace`` in the same directory,
        so concurrent pool workers storing the same key race benignly.
        """
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest().encode("ascii")
        blob = _MAGIC + digest + b"\n" + payload
        self.directory.mkdir(parents=True, exist_ok=True)
        with self._key_lock(key):
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=_SUFFIX
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_name, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            self.stores += 1
        return self._path(key)

    def single_flight(self, key: str, compute: "Callable[[], Any]") -> Any:
        """Resolve ``key``: load it, or compute-and-store exactly once.

        Concurrent same-key callers serialize on the per-key lock; the
        first one in computes and stores, the rest wake up, find the
        fresh entry, and load it — one execution, one disk entry, no
        matter how many threads ask at once.  Different keys do not
        contend.  (Cross-*process* races remain benign-but-duplicated:
        atomic replace keeps the entry intact either way.)
        """
        cached = self.load(key)
        if cached is not None:
            return cached
        with self._key_lock(key):
            cached = self.load(key)  # a contemporary may have won the lock
            if cached is not None:
                self.single_flight_waits += 1
                return cached
            value = compute()
            self.store(key, value)
            return value

    # -- maintenance ----------------------------------------------------
    def entries(self) -> list[Path]:
        if not self.directory.is_dir():
            return []
        return sorted(
            p
            for p in self.directory.glob(f"*{_SUFFIX}")
            if not p.name.startswith(".tmp-")
        )

    def stats(self) -> dict[str, Any]:
        entry_paths = self.entries()
        total = 0
        for path in entry_paths:
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - racing unlink
                pass
        return {
            "directory": str(self.directory),
            "entries": len(entry_paths),
            "total_bytes": total,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "single_flight_waits": self.single_flight_waits,
            "enabled": cache_enabled(),
        }

    def clear(self) -> int:
        """Delete every entry (and stray temp files); returns the count."""
        removed = 0
        if not self.directory.is_dir():
            return 0
        for path in self.directory.glob(f"*{_SUFFIX}"):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing unlink
                pass
        for path in self.directory.glob(f".tmp-*{_SUFFIX}"):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing unlink
                pass
        return removed

    def verify(self) -> tuple[int, int]:
        """Re-checksum every entry; drop bad ones.  Returns (ok, removed)."""
        ok = removed = 0
        for path in self.entries():
            try:
                self._decode(path.read_bytes())
                ok += 1
            except Exception:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing unlink
                    pass
                removed += 1
        return ok, removed


_caches: dict[Path, RunCache] = {}


def get_cache() -> RunCache:
    """Process-wide cache for the configured directory.

    One :class:`RunCache` per directory, so hit/miss counters accumulate
    across the process while tests that point ``REPRO_CACHE_DIR`` at a
    temp dir get their own isolated instance.
    """
    directory = default_cache_dir()
    cache = _caches.get(directory)
    if cache is None:
        cache = _caches[directory] = RunCache(directory)
    return cache
