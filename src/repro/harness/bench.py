"""Data-path benchmark: reference vs vectorized (``BENCH_datapath.json``).

The vectorized data path (:mod:`repro.batchpath`) keeps the simulated
behavior bit-identical — the golden suite pins that — so its only
justification is host wall-clock.  This module measures it, cell by
cell, against the ``REPRO_BATCH_PATH=0`` reference path:

* micro cells isolate one mechanism each (queue batch push, broker
  readable-run pop, aggregator->delivery pipeline, exact atomics);
* end-to-end cells run whole harness cells twice, toggling
  ``REPRO_BATCH_PATH`` with the run cache disabled.

``python -m repro bench`` writes the results as JSON.  The headline
cell is ``messaging-datapath`` — the aggregator enqueue -> flush ->
merged delivery pipeline that dominates messaging-heavy configurations
(BFS eager sends, PageRank WAIT_TIME batching); CI's perf-smoke job
fails only if it regresses below the reference path.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

import numpy as np

from repro.batchpath import BATCH_PATH_ENV

__all__ = ["run_bench", "render_bench", "HEADLINE_CELL", "SCHEMA"]

SCHEMA = "repro-bench-datapath/1"

#: The cell CI gates on (fails only when slower than the reference).
HEADLINE_CELL = "messaging-datapath"


# ----------------------------------------------------------------- timing
def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds for one call of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _cell(reference_s: float, batched_s: float, **detail: Any) -> dict:
    return {
        "reference_s": reference_s,
        "batched_s": batched_s,
        "speedup": reference_s / batched_s if batched_s else float("inf"),
        **detail,
    }


@contextmanager
def _env(**overrides: str) -> Iterator[None]:
    saved = {k: os.environ.get(k) for k in overrides}
    os.environ.update(overrides)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


# ------------------------------------------------------------ micro cells
def _bench_queue_push(quick: bool, seed: int = 0) -> dict:
    """One ``push_batch`` vs one reserve/commit per payload (AtosQueue)."""
    from repro.queues import AtosQueue

    n_payloads = 512 if quick else 2048
    rng = np.random.default_rng(seed)
    payloads = [
        rng.integers(0, 1 << 30, rng.integers(1, 17))
        for _ in range(n_payloads)
    ]
    total = sum(len(p) for p in payloads)

    def per_payload() -> None:
        queue = AtosQueue(2 * total)
        for payload in payloads:
            queue.push(payload)

    def batched() -> None:
        queue = AtosQueue(2 * total)
        queue.push_batch(payloads)

    repeats = 3 if quick else 7
    return _cell(
        _best_of(per_payload, repeats),
        _best_of(batched, repeats),
        payloads=n_payloads,
        items=total,
    )


def _bench_broker_pop(quick: bool, seed: int = 0) -> dict:
    """Vectorized readable-run pop vs the per-item flag walk."""
    from repro.queues import BrokerQueue

    n_items = 20_000 if quick else 100_000
    chunk = 4096
    rng = np.random.default_rng(seed + 1)
    items = rng.integers(0, 1 << 30, n_items)

    def _fill() -> BrokerQueue:
        queue = BrokerQueue(n_items)
        queue.push(items)
        return queue

    def reference() -> None:
        # The pre-vectorization pop: poll each slot's flag in Python.
        queue = _fill()
        while queue.tail - queue.head:
            bound = min(chunk, queue.tail - queue.head)
            take = 0
            while take < bound:
                if not queue.flags[(queue.head + take) % queue.capacity]:
                    queue.failed_polls += 1
                    break
                take += 1
            out = queue._ring_read(queue.head, take)
            for offset in range(take):
                queue.flags[(queue.head + offset) % queue.capacity] = False
            queue.head += take
            assert len(out) == take

    def batched() -> None:
        queue = _fill()
        while queue.tail - queue.head:
            queue.pop(chunk)

    repeats = 2 if quick else 5
    return _cell(
        _best_of(reference, repeats),
        _best_of(batched, repeats),
        items=n_items,
        chunk=chunk,
    )


def _bench_atomics(quick: bool, seed: int = 0) -> dict:
    """Segmented-scan exact atomics vs the per-rank Python loop."""
    from repro.gpu.atomics import atomic_add_exact

    n_ops = 40_000 if quick else 200_000
    n_addr = 512
    rng = np.random.default_rng(seed + 2)
    idx = rng.integers(0, n_addr, n_ops)
    vals = rng.integers(-100, 100, n_ops)
    base = rng.integers(-100, 100, n_addr)

    def reference() -> np.ndarray:
        # The pre-vectorization loop: one pass per duplication rank.
        array = base.copy()
        old = np.empty(n_ops, dtype=array.dtype)
        order = np.argsort(idx, kind="stable")
        sorted_idx = idx[order]
        new_group = np.ones(n_ops, dtype=bool)
        new_group[1:] = sorted_idx[1:] != sorted_idx[:-1]
        group_start = np.flatnonzero(new_group)
        sizes = np.diff(np.append(group_start, n_ops))
        ranks = np.empty(n_ops, dtype=np.int64)
        ranks[order] = np.arange(n_ops) - np.repeat(group_start, sizes)
        for rank in range(int(ranks.max()) + 1):
            sel = ranks == rank
            sel_idx = idx[sel]
            old[sel] = array[sel_idx]
            array[sel_idx] = array[sel_idx] + vals[sel]
        return old

    def batched() -> np.ndarray:
        array = base.copy()
        return atomic_add_exact(array, idx, vals)

    assert np.array_equal(reference(), batched())
    repeats = 2 if quick else 5
    return _cell(
        _best_of(reference, repeats),
        _best_of(batched, repeats),
        ops=n_ops,
        addresses=n_addr,
    )


def _bench_messaging_datapath(quick: bool, seed: int = 0) -> dict:
    """HEADLINE: the aggregator enqueue -> flush -> delivery pipeline.

    Replays the executor's messaging hot path over a fixed payload
    stream, excerpting ``AtosExecutor`` verbatim on each side:
    segment-buffer runs enter an :class:`Aggregator` — per-payload
    ``_send_remote`` calls (bytes computation, counter update,
    per-payload threshold test) on the reference path, one
    ``add_many`` per run on the vectorized path — and every flush runs
    the delivery-side merge of ``_deliver``: per-payload shape probe +
    ``np.vstack`` on the reference path, a zero-copy
    :class:`MergedBatch` on the vectorized path.
    """
    from repro.metrics.counters import Counters
    from repro.runtime.aggregator import Aggregator, MergedBatch

    n_rounds = 30 if quick else 120
    payloads_per_round = 320  # segment-buffered runs (many tiny payloads)
    bytes_per_update = 8
    rng = np.random.default_rng(seed + 3)
    # Messaging-heavy regime: many tiny (k, 2) update arrays per
    # segment flush, as segment_rounds > 1 configurations accumulate.
    rounds = [
        [
            rng.integers(0, 1 << 20, (rng.integers(1, 9), 2))
            for _ in range(payloads_per_round)
        ]
        for _ in range(n_rounds)
    ]
    batch_size = 1 << 16  # force regular size-triggered flushes

    def _consume(payloads: Any, sink: list) -> None:
        # The delivery-side merge, as in ``AtosExecutor._deliver``.
        if isinstance(payloads, MergedBatch):
            sink.append(int(payloads.data[:, 1].sum()))
            return
        batch = payloads if isinstance(payloads, list) else [payloads]
        if (
            len(batch) > 1
            and all(
                isinstance(p, np.ndarray) and p.ndim == 2 for p in batch
            )
            and len({p.shape[1] for p in batch}) == 1
        ):
            batch = [np.vstack(batch)]
        for payload in batch:
            sink.append(int(payload[:, 1].sum()))

    def _payload_bytes(payload: np.ndarray) -> int:
        return max(1, len(payload) * bytes_per_update)

    def _pipeline(vectorize: bool) -> list:
        sink: list = []
        counters = Counters()
        agg = Aggregator(
            0,
            2,
            lambda dst, payloads, n_bytes: _consume(payloads, sink),
            batch_size=batch_size,
            wait_time=4,
            vectorize=vectorize,
        )
        if vectorize:
            # ``_flush_segment``, vectorized branch: one call per run,
            # ``_payload_bytes`` hoisted to a C-level length pass.
            for round_ in rounds:
                lengths = list(map(len, round_))
                counters["remote_updates"] += sum(lengths)
                agg.add_many(
                    1,
                    round_,
                    [max(1, n * bytes_per_update) for n in lengths],
                    lengths,
                )
                agg.tick()
        else:
            # ``_flush_segment`` reference branch: ``_send_remote``
            # per payload (bytes, counter, aggregator threshold test).
            for round_ in rounds:
                for payload in round_:
                    n_bytes = _payload_bytes(payload)
                    counters["remote_updates"] += len(payload)
                    agg.add(1, payload, n_bytes)
                agg.tick()
        agg.flush_all()
        return sink

    assert sum(_pipeline(False)) == sum(_pipeline(True))
    repeats = 3 if quick else 7
    return _cell(
        _best_of(lambda: _pipeline(False), repeats),
        _best_of(lambda: _pipeline(True), repeats),
        rounds=n_rounds,
        payloads_per_round=payloads_per_round,
        batch_size=batch_size,
    )


# ------------------------------------------------------- end-to-end cells
def _bench_end_to_end(
    framework: str,
    app: str,
    dataset: str,
    machine: str,
    n_gpus: int,
) -> dict:
    """One harness cell, simulated twice with the flag toggled.

    The run cache is disabled and the in-process memo cleared around
    each run (their keys do not include the flag), so both timings are
    fresh simulations; the digests must nonetheless match — the paths
    are behaviorally identical by construction.
    """
    from repro.harness.runner import clear_memory_cache, run

    def _simulate(flag: str):
        with _env(**{BATCH_PATH_ENV: flag, "REPRO_CACHE": "0"}):
            clear_memory_cache()
            return run(framework, app, dataset, machine, n_gpus)

    _simulate("1")  # warm graph/partition/reference caches
    reference = _simulate("0")
    batched = _simulate("1")
    if reference.digest() != batched.digest():
        raise AssertionError(
            f"path divergence on {framework}/{app}/{dataset}: "
            f"{reference.digest()[:16]} != {batched.digest()[:16]}"
        )
    return _cell(
        reference.wall_clock_s,
        batched.wall_clock_s,
        framework=framework,
        app=app,
        dataset=dataset,
        machine=machine,
        n_gpus=n_gpus,
        time_ms=reference.time_ms,
        digest=reference.digest(),
        phases=_cell_phases(framework, app, dataset, machine, n_gpus),
    )


def _cell_phases(
    framework: str,
    app: str,
    dataset: str,
    machine: str,
    n_gpus: int,
) -> dict[str, float]:
    """Untimed traced re-run of the cell: category -> simulated us.

    Sits next to each end-to-end cell's digest so the bench document
    says not only *how fast* the cell simulated but *where its
    simulated time went* (compute vs queue vs idle, plus the comm and
    agg_wait overlays).  Runs outside the timed region and outside the
    cache, so it affects neither the wall-clock numbers nor the cached
    results.
    """
    from repro.harness.runner import clear_memory_cache, run
    from repro.telemetry.report import phase_breakdown
    from repro.telemetry.spans import TELEMETRY_ENV

    with _env(**{TELEMETRY_ENV: "1", "REPRO_CACHE": "0"}):
        clear_memory_cache()
        result = run(framework, app, dataset, machine, n_gpus)
    clear_memory_cache()  # the traced result must not leak into the memo
    if result.telemetry is None:
        return {}
    return {
        cat: round(us, 3)
        for cat, us in phase_breakdown(
            result.telemetry, result.time_ms * 1000.0
        ).items()
    }


# ---------------------------------------------------------------- driver
def run_bench(quick: bool = False, seed: int = 0) -> dict:
    """Run every cell; returns the ``BENCH_datapath.json`` document.

    ``seed`` re-rolls the synthetic micro-cell workloads (payload
    sizes/values); 0 reproduces the historical fixed streams.
    """
    cells: dict[str, dict] = {
        "queue-push-batch": _bench_queue_push(quick, seed),
        "broker-pop-run": _bench_broker_pop(quick, seed),
        "atomics-exact": _bench_atomics(quick, seed),
        HEADLINE_CELL: _bench_messaging_datapath(quick, seed),
    }
    e2e = [("atos-standard-persistent", "bfs", "road-usa", "summit-ib", 4)]
    if not quick:
        e2e.append(
            (
                "atos-standard-persistent",
                "pagerank",
                "soc-livejournal1",
                "summit-ib",
                4,
            )
        )
    for framework, app, dataset, machine, n_gpus in e2e:
        cells[f"e2e-{app}-{dataset}"] = _bench_end_to_end(
            framework, app, dataset, machine, n_gpus
        )
    return {
        "schema": SCHEMA,
        "quick": quick,
        "seed": seed,
        "headline": HEADLINE_CELL,
        "cells": cells,
    }


def render_bench(doc: dict) -> str:
    """Human-readable table of a bench document."""
    lines = [
        f"{'cell':<30}{'reference_s':>14}{'batched_s':>12}{'speedup':>10}"
    ]
    for name, cell in doc["cells"].items():
        marker = "  <- headline" if name == doc.get("headline") else ""
        lines.append(
            f"{name:<30}{cell['reference_s']:>14.4f}"
            f"{cell['batched_s']:>12.4f}{cell['speedup']:>9.2f}x{marker}"
        )
    return "\n".join(lines)


def write_bench(doc: dict, path: str) -> None:
    """Write a bench document as pretty-printed JSON to ``path``."""
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
