"""Engine microbenchmark: heap vs calendar queue (``BENCH_engine.json``).

The calendar queue (:mod:`repro.sim.equeue`) keeps the dispatched event
trace bit-identical — the differential suite pins that — so, like the
vectorized data path before it, its only justification is host
wall-clock.  This module measures the engine's queue primitives the way
asimpy benchmarks its event loop: per-primitive cells, each reporting
best-of wall-clock *and* interpreter opcode counts (``sys.settrace``
with ``f_trace_opcodes``), so a speedup can be traced to actually
executing fewer Python instructions rather than cache luck:

* ``schedule`` — push a mixed-time entry stream;
* ``pop-drain`` — drain one entry at a time (the reference loop's
  access pattern);
* ``cohort-fire`` — drain a tie-heavy stream cohort by cohort (the
  optimized dispatcher's access pattern): the calendar slices a whole
  same-``(time, priority)`` run out of one sorted bucket per call
  where the heap pays one sift per entry — the headline cell;
* ``cancel`` — remove pending entries by seq: eager bucket removal vs
  the heap's O(n) membership-checked tombstone.

End-to-end cells then run whole harness cells twice, toggling
``REPRO_ENGINE_QUEUE`` with the run cache disabled and asserting digest
equality — same protocol as ``BENCH_datapath``'s e2e cells.

``python -m repro engine-bench`` writes the results as JSON; CI's
engine-bench smoke job validates the committed document's schema.
"""

from __future__ import annotations

import random
import sys
import time
from typing import Any, Callable, Optional

from repro.sim.equeue import ENGINE_QUEUE_ENV, CalendarQueue, HeapQueue
from repro.harness.bench import _best_of, _env, write_bench

__all__ = [
    "run_engine_bench",
    "render_engine_bench",
    "validate_engine_bench",
    "write_bench",
    "HEADLINE_CELL",
    "REQUIRED_CELLS",
    "SCHEMA",
]

SCHEMA = "repro-bench-engine/1"

#: The cell the engine story rests on: batch cohort dispatch.
HEADLINE_CELL = "cohort-fire"

#: Primitive cells every valid document must carry.
REQUIRED_CELLS = ("schedule", "pop-drain", "cohort-fire", "cancel")


# -------------------------------------------------------------- workloads
def _mixed_stream(n: int, seed: int) -> list:
    """Entries with datapath-like times: clustered cadences + jitter."""
    rng = random.Random(seed)
    cadences = [1.0, 2.5, 4.0, 7.25, 64.0]
    return [
        (
            rng.choice(cadences) * rng.randint(1, 64)
            if rng.random() < 0.7
            else rng.uniform(0.0, 4096.0),
            rng.choice((0, 1)),
            seq,
            None,
        )
        for seq in range(n)
    ]


def _cohort_stream(n_times: int, cohort: int, seed: int) -> list:
    """Entries heavily tied on (time, priority): the engine's regime —
    every poll cadence and round boundary wakes a whole rank cohort."""
    rng = random.Random(seed)
    times = sorted(rng.uniform(0.0, 4096.0) for _ in range(n_times))
    entries = []
    seq = 0
    for t in times:
        for _ in range(cohort):
            entries.append((t, 1, seq, None))
            seq += 1
    rng.shuffle(entries)  # pushes arrive interleaved across cohorts
    return entries


# -------------------------------------------------------- opcode counting
def _count_opcodes(fn: Callable[[], Any]) -> int:
    """Interpreter opcodes executed by one call of ``fn``.

    Counts every opcode in every Python frame ``fn`` enters (C-level
    work — ``heappush``, ``insort``, slice deletes — shows up as the
    single CALL that invoked it, exactly the cost model that matters
    for a pure-Python engine loop).
    """
    count = 0

    def tracer(frame, event, arg):
        nonlocal count
        if event == "call":
            frame.f_trace_opcodes = True
            return tracer
        if event == "opcode":
            count += 1
        return tracer

    old = sys.gettrace()
    sys.settrace(tracer)
    try:
        fn()
    finally:
        sys.settrace(old)
    return count


# ------------------------------------------------------------------ cells
def _cell(heap_s: float, calendar_s: float, **detail: Any) -> dict:
    return {
        "heap_s": heap_s,
        "calendar_s": calendar_s,
        "speedup": heap_s / calendar_s if calendar_s else float("inf"),
        **detail,
    }


def _primitive_cell(
    quick: bool,
    entries: list,
    drive: Callable[[Any, list], None],
    opcode_entries: list,
    setup: Optional[Callable[[Any, list], None]] = None,
    **detail: Any,
) -> dict:
    """Time ``drive(queue, entries)`` on both variants, plus opcode
    counts per entry on a smaller stream (tracing is ~100x slower).

    ``setup`` runs untimed and untraced before each measurement — the
    per-primitive contract: the ``pop-drain`` cell must not charge its
    fills to the pop, any more than ``schedule`` charges its pops.
    """
    repeats = 3 if quick else 7

    def _timed(queue_cls: type, stream: list) -> Callable[[], None]:
        def fn() -> None:
            queue = queue_cls()
            if setup is not None:
                setup(queue, stream)
            drive(queue, stream)

        return fn

    def _measure(queue_cls: type) -> float:
        if setup is None:
            return _best_of(_timed(queue_cls, entries), repeats)
        best = float("inf")
        for _ in range(repeats):
            queue = queue_cls()
            setup(queue, entries)
            start = time.perf_counter()
            drive(queue, entries)
            best = min(best, time.perf_counter() - start)
        return best

    def _opcodes(queue_cls: type) -> float:
        queue = queue_cls()
        if setup is not None:
            setup(queue, opcode_entries)
        return round(
            _count_opcodes(lambda: drive(queue, opcode_entries))
            / len(opcode_entries),
            1,
        )

    return _cell(
        _measure(HeapQueue),
        _measure(CalendarQueue),
        entries=len(entries),
        heap_opcodes_per_entry=_opcodes(HeapQueue),
        calendar_opcodes_per_entry=_opcodes(CalendarQueue),
        **detail,
    )


def _bench_schedule(quick: bool, seed: int) -> dict:
    n = 4_000 if quick else 20_000

    def drive(queue, entries):
        push = queue.push
        for e in entries:
            push(e)

    return _primitive_cell(
        quick,
        _mixed_stream(n, seed),
        drive,
        _mixed_stream(512, seed),
    )


def _fill(queue, entries):
    push = queue.push
    for e in entries:
        push(e)


def _bench_pop_drain(quick: bool, seed: int) -> dict:
    n = 4_000 if quick else 20_000

    def drive(queue, entries):
        pop = queue.pop
        while queue:
            pop()

    return _primitive_cell(
        quick,
        _mixed_stream(n, seed + 1),
        drive,
        _mixed_stream(512, seed + 1),
        setup=_fill,
    )


def _bench_cohort_fire(quick: bool, seed: int) -> dict:
    """HEADLINE: drain a tie-heavy stream with ``pop_cohort``.

    The heap pays one ``heappop`` sift per cohort member; the calendar
    finds the run's end with one bisect and removes it with one slice
    delete — per-entry cost goes from O(log n) sifts to amortized O(1).
    """
    n_times, cohort = (64, 32) if quick else (256, 64)

    def drive(queue, entries):
        pop_cohort = queue.pop_cohort
        fired = 0
        while queue:
            fired += len(pop_cohort())
        assert fired == len(entries)

    return _primitive_cell(
        quick,
        _cohort_stream(n_times, cohort, seed + 2),
        drive,
        _cohort_stream(16, 32, seed + 2),
        setup=_fill,
        cohort=cohort,
        timestamps=n_times,
    )


def _bench_cancel(quick: bool, seed: int) -> dict:
    """Cancel half the pending entries (eager removal vs the heap's
    membership-checked tombstone)."""
    n = 2_000 if quick else 8_000

    def drive(queue, entries):
        victims = random.Random(0).sample(entries, len(entries) // 2)
        cancel = queue.cancel
        for v in victims:
            assert cancel(v)

    return _primitive_cell(
        quick,
        _mixed_stream(n, seed + 3),
        drive,
        _mixed_stream(256, seed + 3),
        setup=_fill,
    )


# ------------------------------------------------------- end-to-end cells
def _bench_end_to_end(
    framework: str,
    app: str,
    dataset: str,
    machine: str,
    n_gpus: int,
) -> dict:
    """One harness cell, simulated once per engine queue.

    Mirrors the data-path bench's protocol: run cache disabled and the
    memo cleared around each run (cache keys do not include the engine
    flag), digests asserted equal — the queues are behaviorally
    identical by construction, so only wall-clock may differ.
    """
    from repro.harness.runner import clear_memory_cache, run

    def _simulate(queue: str):
        with _env(**{ENGINE_QUEUE_ENV: queue, "REPRO_CACHE": "0"}):
            clear_memory_cache()
            return run(framework, app, dataset, machine, n_gpus)

    _simulate("heap")  # warm graph/partition/reference caches
    heap = _simulate("heap")
    calendar = _simulate("calendar")
    if heap.digest() != calendar.digest():
        raise AssertionError(
            f"engine divergence on {framework}/{app}/{dataset}: "
            f"{heap.digest()[:16]} != {calendar.digest()[:16]}"
        )
    return _cell(
        heap.wall_clock_s,
        calendar.wall_clock_s,
        framework=framework,
        app=app,
        dataset=dataset,
        machine=machine,
        n_gpus=n_gpus,
        time_ms=heap.time_ms,
        digest=heap.digest(),
    )


# ---------------------------------------------------------------- driver
def run_engine_bench(quick: bool = False, seed: int = 0) -> dict:
    """Run every cell; returns the ``BENCH_engine.json`` document."""
    cells: dict[str, dict] = {
        "schedule": _bench_schedule(quick, seed),
        "pop-drain": _bench_pop_drain(quick, seed),
        HEADLINE_CELL: _bench_cohort_fire(quick, seed),
        "cancel": _bench_cancel(quick, seed),
    }
    e2e = [("atos-standard-persistent", "bfs", "road-usa", "summit-ib", 4)]
    if not quick:
        e2e.append(
            (
                "atos-standard-persistent",
                "pagerank",
                "soc-livejournal1",
                "summit-ib",
                4,
            )
        )
    for framework, app, dataset, machine, n_gpus in e2e:
        cells[f"e2e-{app}-{dataset}"] = _bench_end_to_end(
            framework, app, dataset, machine, n_gpus
        )
    return {
        "schema": SCHEMA,
        "quick": quick,
        "seed": seed,
        "headline": HEADLINE_CELL,
        "cells": cells,
    }


def render_engine_bench(doc: dict) -> str:
    """Human-readable table of an engine bench document."""
    lines = [
        f"{'cell':<28}{'heap_s':>12}{'calendar_s':>12}{'speedup':>10}"
    ]
    for name, cell in doc["cells"].items():
        marker = "  <- headline" if name == doc.get("headline") else ""
        lines.append(
            f"{name:<28}{cell['heap_s']:>12.4f}"
            f"{cell['calendar_s']:>12.4f}{cell['speedup']:>9.2f}x{marker}"
        )
    return "\n".join(lines)


def validate_engine_bench(doc: dict) -> int:
    """Schema-check an engine bench document; returns the cell count.

    The contract CI's engine-bench smoke job enforces on the committed
    ``BENCH_engine.json``: schema tag, headline present, every required
    primitive cell present with positive timings, a finite speedup, and
    opcode counts for both variants.  Raises :class:`ValueError` on the
    first violation.
    """
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}"
        )
    cells = doc.get("cells")
    if not isinstance(cells, dict) or not cells:
        raise ValueError("cells must be a non-empty mapping")
    if doc.get("headline") not in cells:
        raise ValueError(f"headline {doc.get('headline')!r} not in cells")
    for name in REQUIRED_CELLS:
        if name not in cells:
            raise ValueError(f"missing required cell {name!r}")
    for name, cell in cells.items():
        for key in ("heap_s", "calendar_s", "speedup"):
            value = cell.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ValueError(f"cell {name!r}: bad {key}: {value!r}")
        if name in REQUIRED_CELLS:
            for key in (
                "heap_opcodes_per_entry",
                "calendar_opcodes_per_entry",
            ):
                value = cell.get(key)
                if not isinstance(value, (int, float)) or value <= 0:
                    raise ValueError(
                        f"cell {name!r}: bad {key}: {value!r}"
                    )
    return len(cells)
