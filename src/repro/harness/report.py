"""Paper-vs-measured shape comparison.

Given a measured grid and the paper's transcribed numbers
(:mod:`repro.harness.paper_data`), compute per-cell *shape agreement*:
for every (dataset, GPU count) pair present in both, compare

* **winner agreement** — does the same framework win the cell?
* **speedup direction** — for each framework pair, is the sign of the
  speedup (who is faster) the same as in the paper?
* **factor ratio** — measured speedup factor over paper speedup factor
  (log-scale distance; absolute scale is not expected to match, but
  the direction and rough magnitude should).

The report is what EXPERIMENTS.md summarizes per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from repro.harness.experiments import GridResult

__all__ = ["ShapeReport", "compare_grid"]


@dataclass
class ShapeReport:
    """Aggregate shape agreement for one table."""

    title: str
    cells: int = 0
    winner_matches: int = 0
    direction_pairs: int = 0
    direction_matches: int = 0
    log_factor_errors: list[float] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def winner_agreement(self) -> float:
        return self.winner_matches / self.cells if self.cells else 1.0

    @property
    def direction_agreement(self) -> float:
        if not self.direction_pairs:
            return 1.0
        return self.direction_matches / self.direction_pairs

    @property
    def median_log10_factor_error(self) -> float:
        if not self.log_factor_errors:
            return 0.0
        return float(np.median(np.abs(self.log_factor_errors)))

    def render(self) -> str:
        lines = [
            self.title,
            f"  cells compared:        {self.cells}",
            f"  winner agreement:      {self.winner_agreement:.0%}",
            f"  speedup-direction agreement: "
            f"{self.direction_agreement:.0%} "
            f"({self.direction_matches}/{self.direction_pairs} pairs)",
            f"  median |log10(measured factor / paper factor)|: "
            f"{self.median_log10_factor_error:.2f}",
        ]
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)


def _series(table: dict, framework: str, dataset: str):
    rows = table.get(framework)
    if rows is None:
        return None
    return rows.get(dataset)


def compare_grid(
    title: str,
    grid: GridResult,
    paper: dict[str, dict[str, tuple]],
    paper_gpu_counts: tuple[int, ...],
    framework_map: dict[str, str] | None = None,
) -> ShapeReport:
    """Compare a measured :class:`GridResult` against paper numbers.

    ``framework_map`` translates measured framework names to the
    paper-table keys when they differ (e.g. the Table V "atos" row
    is this repo's best-of-two-variants).
    """
    framework_map = framework_map or {}
    report = ShapeReport(title=title)
    frameworks = [
        fw for fw in grid.times
        if framework_map.get(fw, fw) in paper
    ]
    shared_counts = [
        (i, paper_gpu_counts.index(n))
        for i, n in enumerate(grid.gpu_counts)
        if n in paper_gpu_counts
    ]
    datasets = sorted(
        {d for fw in frameworks for d in grid.times[fw]}
    )
    for dataset in datasets:
        for mi, pi in shared_counts:
            measured_cell = {}
            paper_cell = {}
            for fw in frameworks:
                if dataset not in grid.times[fw]:
                    continue
                paper_series = _series(
                    paper, framework_map.get(fw, fw), dataset
                )
                if paper_series is None:
                    continue
                measured_cell[fw] = grid.times[fw][dataset][mi]
                paper_cell[fw] = paper_series[pi]
            if len(measured_cell) < 2:
                continue
            report.cells += 1
            measured_winner = min(measured_cell, key=measured_cell.get)
            paper_winner = min(paper_cell, key=paper_cell.get)
            if measured_winner == paper_winner:
                report.winner_matches += 1
            for fw_a, fw_b in combinations(sorted(measured_cell), 2):
                measured_factor = (
                    measured_cell[fw_b] / measured_cell[fw_a]
                )
                paper_factor = paper_cell[fw_b] / paper_cell[fw_a]
                report.direction_pairs += 1
                if (measured_factor > 1) == (paper_factor > 1):
                    report.direction_matches += 1
                report.log_factor_errors.append(
                    float(
                        np.log10(measured_factor) - np.log10(paper_factor)
                    )
                )
    return report
