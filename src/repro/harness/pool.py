"""Parallel experiment pool: fan a run grid out over worker processes.

The evaluation grid is embarrassingly parallel — every (framework, app,
dataset, machine, #GPUs) cell is an independent deterministic
simulation — so the pool simply runs each cell in its own
``multiprocessing`` process, up to ``jobs`` at a time.  Echoing the
paper's scheduling philosophy, consistency is decoupled from
synchronization: workers share nothing but the persistent run cache
(whose atomic writes make concurrent stores benign), and the parent
reassembles results in *spec order* regardless of completion order, so
pooled output is bit-identical to a serial run.

Failure isolation is per cell: a worker that raises reports the
traceback, a worker that exceeds its deadline is killed, and a worker
that dies outright (segfault, ``SIGKILL``) is detected by pipe EOF —
in every case only that cell is marked failed and the rest of the grid
completes.

``jobs <= 1`` runs cells serially in-process (sharing the in-memory
memo, no subprocess overhead); ``jobs == 0`` means "one per CPU".  The
default comes from the ``REPRO_JOBS`` environment variable.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import signal
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_connections
from typing import Any, Callable, Iterable, Optional, Sequence

__all__ = [
    "JOBS_ENV",
    "RunSpec",
    "CellResult",
    "GridFailure",
    "GridInterrupted",
    "resolve_jobs",
    "grid_specs",
    "execute_spec",
    "run_grid",
    "run_cells",
]

#: Environment variable giving the default worker count.
JOBS_ENV = "REPRO_JOBS"

#: Poll interval (s) for the supervisor loop: how often result pipes
#: are re-waited and per-cell deadlines are checked.
_REAP_POLL_S = 0.05


@dataclass(frozen=True)
class RunSpec:
    """One cell of an experiment grid."""

    framework: str
    app: str
    dataset: str
    machine: str
    n_gpus: int
    validate: bool = True
    #: Partition seed for the run.  0 is the evaluation default; other
    #: values re-partition the graph, giving independent repetitions of
    #: a cell (``--seed`` on the grid CLIs).
    seed: int = 0
    #: Optional :class:`repro.config.ConfigOverlay` of tuning-knob
    #: overrides (batch/wait/fetch, engine queue, partitioned
    #: execution).  Frozen and hashable, so an overlaid spec still
    #: works as a dict key; ``None`` is the plain evaluation cell.
    overlay: Any = None

    def label(self) -> str:
        suffix = f"/seed{self.seed}" if self.seed else ""
        if self.overlay:
            knobs = ",".join(
                f"{k}={v}" for k, v in sorted(self.overlay.as_dict().items())
            )
            suffix += f"[{knobs}]"
        return (
            f"{self.framework}/{self.app}/{self.dataset}/"
            f"{self.machine}/{self.n_gpus}gpu{suffix}"
        )


@dataclass
class CellResult:
    """Outcome of one pooled cell: a result or an isolated failure."""

    spec: RunSpec
    #: ``ok`` | ``error`` (raised) | ``timeout`` (killed at deadline) |
    #: ``crashed`` (died without reporting).
    status: str
    result: Any = None
    error: str = ""
    wall_clock_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class GridFailure(RuntimeError):
    """Raised by :func:`run_cells` when any grid cell failed."""

    def __init__(self, failures: Sequence[CellResult]):
        self.failures = list(failures)
        lines = [
            f"{cell.spec.label()}: {cell.status}"
            + (f" ({cell.error.strip().splitlines()[-1]})" if cell.error else "")
            for cell in self.failures
        ]
        super().__init__(
            f"{len(self.failures)} grid cell(s) failed:\n" + "\n".join(lines)
        )


class GridInterrupted(KeyboardInterrupt):
    """A grid run stopped by SIGINT/SIGTERM after a graceful drain.

    Subclasses ``KeyboardInterrupt`` so existing Ctrl-C handling (the
    CLI's, pytest's) still sees an interrupt, but carries what the
    drain salvaged: every cell that finished before or during the
    drain, and the specs that never ran.
    """

    def __init__(
        self, cells: Sequence[CellResult], unstarted: Sequence[RunSpec]
    ):
        self.cells = list(cells)
        self.unstarted = list(unstarted)
        KeyboardInterrupt.__init__(self)

    def __str__(self) -> str:  # KeyboardInterrupt's default is ""
        return (
            f"grid interrupted: {len(self.cells)} cell(s) salvaged, "
            f"{len(self.unstarted)} never ran"
        )


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a jobs request: None -> $REPRO_JOBS or 1, 0 -> n_cpus."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        jobs = int(env) if env else 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def grid_specs(
    app: str,
    frameworks: Iterable[str],
    datasets: Iterable[str],
    machine: str,
    gpu_counts: Iterable[int],
    skip: Iterable[tuple[str, str]] = frozenset(),
    seed: int = 0,
) -> list[RunSpec]:
    """Specs for a full grid, in the deterministic serial-loop order."""
    skip = set(skip)
    return [
        RunSpec(framework, app, dataset, machine, n, seed=seed)
        for framework in frameworks
        for dataset in datasets
        if (framework, dataset) not in skip
        for n in gpu_counts
    ]


def execute_spec(spec: RunSpec) -> Any:
    """Default cell driver: the cached harness runner."""
    from repro.harness import runner

    return runner.run(
        spec.framework,
        spec.app,
        spec.dataset,
        spec.machine,
        spec.n_gpus,
        validate=spec.validate,
        seed=spec.seed,
        overlay=spec.overlay,
    )


def _worker_main(conn, spec: RunSpec, run_fn: Callable[[RunSpec], Any]) -> None:
    """Worker entry point: run one cell, ship (status, payload, wall)."""
    # Forked while the parent deferred interrupts: the inherited latch
    # handler would swallow ``terminate()``, so restore the defaults.
    with contextlib.suppress(ValueError, OSError):
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.default_int_handler)
    start = time.perf_counter()
    try:
        result = run_fn(spec)
        conn.send(("ok", result, time.perf_counter() - start))
    except BaseException:
        conn.send(
            ("error", traceback.format_exc(), time.perf_counter() - start)
        )
    finally:
        conn.close()


@dataclass
class _LiveWorker:
    index: int
    process: Any
    conn: Any
    started: float
    deadline: Optional[float]


def _mp_context():
    """Prefer fork (cheap, inherits warm module state); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class _sigterm_as_interrupt:
    """Route SIGTERM through ``KeyboardInterrupt`` for the grid's scope.

    ``kill <pid>`` on a grid run should drain exactly like Ctrl-C does.
    Only possible from the main thread (signal handlers are a
    main-thread affair); elsewhere this is a no-op and SIGTERM keeps
    its default fatal behaviour.
    """

    def __enter__(self):
        self._previous = None
        if threading.current_thread() is threading.main_thread():
            try:
                self._previous = signal.signal(
                    signal.SIGTERM, self._raise_interrupt
                )
            except (ValueError, OSError):  # pragma: no cover - exotic host
                self._previous = None
        return self

    def __exit__(self, *exc):
        if self._previous is not None:
            try:
                signal.signal(signal.SIGTERM, self._previous)
            except (ValueError, OSError):  # pragma: no cover
                pass
        return False

    @staticmethod
    def _raise_interrupt(signum, frame):
        raise KeyboardInterrupt


@contextlib.contextmanager
def _deferred_interrupts():
    """Hold SIGINT/SIGTERM across a supervisor bookkeeping section.

    The supervisor's state transitions (registering a freshly forked
    worker, recording a received result) must be atomic with respect
    to the interrupt that triggers a drain: a ``KeyboardInterrupt``
    landing between ``process.start()`` and the ``live`` registration
    would leak the worker and lose its cell from both the salvage and
    the unstarted report.

    A thread signal mask is *not* enough here: a process-directed
    signal is delivered on any thread with it unmasked, and CPython
    then runs the Python-level handler on the main thread's next
    bytecode regardless of the main thread's own mask.  So defer at
    the handler level instead — swap in a latch that records the
    signal, and re-raise ``KeyboardInterrupt`` once the section's
    mutations are complete.  ``signal.signal`` is main-thread-only;
    elsewhere this is a no-op (matching ``_sigterm_as_interrupt``).
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    latched: list[int] = []

    def latch(signum, frame):
        latched.append(signum)

    previous = {}
    try:
        for sig in (signal.SIGINT, signal.SIGTERM):
            previous[sig] = signal.signal(sig, latch)
    except (ValueError, OSError):  # pragma: no cover - exotic host
        for sig, old in previous.items():
            signal.signal(sig, old)
        yield
        return
    try:
        yield
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)
        if latched:
            raise KeyboardInterrupt


def _run_serial(
    specs: list[RunSpec], run_fn: Callable[[RunSpec], Any]
) -> list[CellResult]:
    results = []
    for spec in specs:
        start = time.perf_counter()
        try:
            value = run_fn(spec)
            results.append(
                CellResult(
                    spec,
                    "ok",
                    result=value,
                    wall_clock_s=time.perf_counter() - start,
                )
            )
        except Exception:
            results.append(
                CellResult(
                    spec,
                    "error",
                    error=traceback.format_exc(),
                    wall_clock_s=time.perf_counter() - start,
                )
            )
    return results


def run_grid(
    specs: Iterable[RunSpec],
    jobs: Optional[int] = None,
    timeout_s: Optional[float] = None,
    run_fn: Callable[[RunSpec], Any] = execute_spec,
    drain_grace_s: float = 30.0,
) -> list[CellResult]:
    """Run every spec, ``jobs`` at a time; results are in spec order.

    With ``jobs <= 1`` the grid runs serially in-process (exceptions
    become ``error`` cells; ``timeout_s`` is not enforced — a hang
    cannot be pre-empted without a subprocess).  With ``jobs > 1`` each
    cell gets its own process, a ``timeout_s`` deadline, and crash
    isolation: one failed cell never stops the rest of the grid.

    SIGINT/SIGTERM trigger a **graceful drain** instead of orphaning
    workers: no new cells launch, in-flight cells get up to
    ``drain_grace_s`` to finish (their results are kept), survivors
    are killed and reaped, and :class:`GridInterrupted` is raised
    carrying the salvage.  A second interrupt skips the grace.
    """
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(specs) <= 1:
        return _run_serial(specs, run_fn)

    ctx = _mp_context()
    results: list[Optional[CellResult]] = [None] * len(specs)
    pending = deque(enumerate(specs))
    live: dict[int, _LiveWorker] = {}

    def finish(worker: _LiveWorker, cell: CellResult) -> None:
        results[worker.index] = cell
        live.pop(worker.index, None)
        worker.conn.close()
        worker.process.join(timeout=5.0)
        if worker.process.is_alive():  # pragma: no cover - stuck worker
            worker.process.kill()
            worker.process.join(timeout=5.0)

    def launch_ready() -> None:
        # Interrupts held: a drain triggered mid-launch must see the
        # worker either still in ``pending`` or fully registered in
        # ``live`` — never forked-but-untracked.
        with _deferred_interrupts():
            while pending and len(live) < jobs:
                index, spec = pending.popleft()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, spec, run_fn),
                    daemon=True,
                    name=f"repro-cell-{index}",
                )
                now = time.monotonic()
                process.start()
                # Close our copy of the child end so EOF is observable
                # the moment the worker dies.
                child_conn.close()
                live[index] = _LiveWorker(
                    index=index,
                    process=process,
                    conn=parent_conn,
                    started=now,
                    deadline=(now + timeout_s) if timeout_s else None,
                )

    def reap_once() -> None:
        # The poll is the designated interruption point: an interrupt
        # raised here finds every worker either live or finished.
        ready = _wait_connections(
            [w.conn for w in live.values()], timeout=_REAP_POLL_S
        )
        with _deferred_interrupts():
            _reap_ready(set(ready))

    def _reap_ready(ready_set: set) -> None:
        now = time.monotonic()
        for worker in list(live.values()):
            spec = specs[worker.index]
            wall = now - worker.started
            if worker.conn in ready_set:
                try:
                    status, payload, worker_wall = worker.conn.recv()
                except (EOFError, OSError):
                    # Pipe closed without a message: the worker died
                    # mid-run (e.g. SIGKILL / segfault).
                    finish(
                        worker,
                        CellResult(
                            spec,
                            "crashed",
                            error="worker died without reporting "
                            "a result",
                            wall_clock_s=wall,
                        ),
                    )
                    continue
                if status == "ok":
                    finish(
                        worker,
                        CellResult(
                            spec,
                            "ok",
                            result=payload,
                            wall_clock_s=worker_wall,
                        ),
                    )
                else:
                    finish(
                        worker,
                        CellResult(
                            spec,
                            "error",
                            error=payload,
                            wall_clock_s=worker_wall,
                        ),
                    )
            elif worker.deadline is not None and now > worker.deadline:
                worker.process.terminate()
                worker.process.join(timeout=1.0)
                if worker.process.is_alive():  # pragma: no cover
                    worker.process.kill()
                finish(
                    worker,
                    CellResult(
                        spec,
                        "timeout",
                        error=f"exceeded {timeout_s:.3g}s deadline",
                        wall_clock_s=wall,
                    ),
                )

    unstarted: list[RunSpec] = []
    interrupted = False
    with _sigterm_as_interrupt():
        try:
            while pending or live:
                launch_ready()
                reap_once()
        except KeyboardInterrupt:
            # Graceful drain: stop launching, give in-flight cells a
            # grace window, keep whatever they report.
            interrupted = True
            unstarted = [spec for _, spec in pending]
            pending.clear()
            deadline = time.monotonic() + drain_grace_s
            try:
                while live and time.monotonic() < deadline:
                    reap_once()
            except KeyboardInterrupt:
                pass  # second interrupt: drop the grace, kill now
        finally:
            # Belt and braces: never leak workers on any exit path —
            # under an interrupt this reaps the drain's survivors.
            with _deferred_interrupts():
                for worker in list(live.values()):
                    unstarted.append(specs[worker.index])
                    live.pop(worker.index, None)
                    worker.process.kill()
                    worker.process.join(timeout=5.0)
                    worker.conn.close()

    done = [cell for cell in results if cell is not None]
    if interrupted:
        raise GridInterrupted(done, unstarted)
    return done


def run_cells(
    specs: Iterable[RunSpec],
    jobs: Optional[int] = None,
    timeout_s: Optional[float] = None,
) -> dict[RunSpec, Any]:
    """Run a grid and return {spec: RunResult}; raise if any cell failed.

    The strict counterpart of :func:`run_grid` for table/figure code,
    which needs every cell present.  Successful results are also seeded
    into the in-process memo so follow-up ``run()`` calls (and grids
    that share cells) hit memory instead of re-reading the disk cache.
    """
    from repro.harness import runner

    cells = run_grid(specs, jobs=jobs, timeout_s=timeout_s)
    failures = [cell for cell in cells if not cell.ok]
    if failures:
        raise GridFailure(failures)
    out = {}
    for cell in cells:
        out[cell.spec] = cell.result
        runner.seed_memo(cell.spec, cell.result)
    return out
