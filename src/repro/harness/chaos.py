"""Chaos harness: fault grids that must validate and terminate.

The resilience claim of :mod:`repro.faults` is behavioral, not
structural: under a deterministic schedule of dropped / duplicated /
delayed messages and degraded devices, every run must still (a)
terminate — no hang, no work-token underflow — and (b) produce output
identical to the fault-free serial reference.  This module turns that
claim into a grid: fault rate x application x queue variant, each cell
a seeded end-to-end simulation validated against
:mod:`repro.apps.validation`.

Two entry points:

* :func:`chaos_grid` runs the grid and reports per-cell verdicts plus
  the fault/transport counters (what was injected, what the delivery
  layer absorbed);
* :func:`verify_inert` pins the subsystem's zero-cost guarantee — a
  run with ``faults=None`` and a run with an all-zero
  :class:`~repro.faults.FaultPlan` dispatch bit-identical event traces
  (the golden-digest technique from the determinism suite).

``python -m repro chaos`` drives both.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.apps import AtosBFS, AtosPageRank
from repro.apps.validation import (
    pagerank_close,
    reference_bfs,
    reference_pagerank,
)
from repro.config import daisy
from repro.errors import SimulationError
from repro.faults import FaultPlan, RetryPolicy
from repro.gpu.kernel import KernelStrategy
from repro.graph import bfs_grow_partition, largest_component_vertex, rmat
from repro.metrics.counters import fault_summary
from repro.metrics.tables import format_generic_table
from repro.runtime import AtosConfig, AtosExecutor

__all__ = [
    "CHAOS_VARIANTS",
    "CHAOS_EPSILON",
    "ChaosSpec",
    "ChaosCell",
    "run_chaos_cell",
    "chaos_grid",
    "render_chaos",
    "trace_digest_for",
    "verify_inert",
]

#: The paper's three evaluated queue configurations, by short name.
CHAOS_VARIANTS: dict[str, tuple[KernelStrategy, bool]] = {
    "standard-persistent": (KernelStrategy.PERSISTENT, False),
    "priority-discrete": (KernelStrategy.DISCRETE, True),
    "standard-discrete": (KernelStrategy.DISCRETE, False),
}

#: PageRank validation threshold for chaos cells.
CHAOS_EPSILON = 1e-4

#: Default drop-rate sweep (the issue's acceptance range: up to 10%).
DEFAULT_DROP_RATES = (0.0, 0.05, 0.10)


@dataclass(frozen=True)
class ChaosSpec:
    """One chaos cell: app x queue variant x fault intensity, seeded.

    The graph, the partition, and the fault schedule are all pure
    functions of ``seed``, so a cell is exactly replayable.
    """

    app: str
    variant: str
    drop_rate: float
    duplicate_rate: float = 0.02
    delay_rate: float = 0.05
    seed: int = 0
    scale: int = 9
    edge_factor: int = 8
    n_gpus: int = 4

    def __post_init__(self) -> None:
        if self.app not in ("bfs", "pagerank"):
            raise ValueError(f"unknown chaos app {self.app!r}")
        if self.variant not in CHAOS_VARIANTS:
            raise ValueError(
                f"unknown variant {self.variant!r}; "
                f"known: {sorted(CHAOS_VARIANTS)}"
            )

    def label(self) -> str:
        return (
            f"{self.app}/{self.variant}/drop{self.drop_rate:g}"
            f"/seed{self.seed}"
        )

    def plan(self) -> FaultPlan:
        """The deterministic fault schedule this cell injects."""
        return FaultPlan(
            seed=self.seed,
            drop_rate=self.drop_rate,
            duplicate_rate=self.duplicate_rate,
            delay_rate=self.delay_rate,
        )


@dataclass
class ChaosCell:
    """Verdict of one chaos cell."""

    spec: ChaosSpec
    ok: bool
    time_ms: float = 0.0
    error: str = ""
    #: Injected-fault and transport counters (``fault_summary``).
    faults: dict = field(default_factory=dict)

    def summary(self) -> str:
        f = self.faults
        return (
            f"drops={f.get('fault_dropped', 0):.0f} "
            f"retx={f.get('transport_retransmits', 0):.0f} "
            f"dupsup={f.get('transport_duplicates_suppressed', 0):.0f}"
        )


def _build_app(spec: ChaosSpec):
    """The seeded graph/app pair for a cell, plus its validator."""
    graph = rmat(
        scale=spec.scale, edge_factor=spec.edge_factor, seed=spec.seed + 31
    )
    partition = bfs_grow_partition(graph, spec.n_gpus, seed=spec.seed)
    if spec.app == "bfs":
        source = largest_component_vertex(graph)
        app = AtosBFS(graph, partition, source)
        reference = reference_bfs(graph, source)

        def validate(output) -> bool:
            return bool(np.array_equal(np.asarray(output), reference))

    else:
        app = AtosPageRank(graph, partition, epsilon=CHAOS_EPSILON)
        reference = reference_pagerank(graph, epsilon=CHAOS_EPSILON)

        def validate(output) -> bool:
            return pagerank_close(
                np.asarray(output), reference, CHAOS_EPSILON
            )

    return app, validate


def _config(
    spec: ChaosSpec,
    faults: Optional[FaultPlan],
    retry: Optional[RetryPolicy],
) -> AtosConfig:
    kernel, priority = CHAOS_VARIANTS[spec.variant]
    return AtosConfig(
        kernel=kernel,
        priority=priority,
        fetch_size=1 if spec.app == "bfs" else 8,
        # Always exercise the aggregator flush path: it is the batch
        # send site the reliable transport wraps.  The small batch size
        # forces frequent size-triggered flushes, so even these small
        # seeded graphs put enough messages on the wire for the fault
        # rates to actually bite.
        use_aggregator=True,
        batch_size=1 << 12,
        faults=faults,
        retry=retry,
    )


def run_chaos_cell(
    spec: ChaosSpec, retry: Optional[RetryPolicy] = None
) -> ChaosCell:
    """Run one cell end to end and validate it.

    A cell passes only if the simulation terminates cleanly (the
    resilient transport's retry budget was never exhausted, no
    work-token underflow), every leased in-flight token was retired,
    and the output matches the fault-free serial reference.
    """
    app, validate = _build_app(spec)
    executor = AtosExecutor(
        daisy(spec.n_gpus), app, _config(spec, spec.plan(), retry)
    )
    try:
        makespan, counters = executor.run()
    except SimulationError as exc:
        return ChaosCell(spec, ok=False, error=str(exc))
    if executor.ledger is not None and executor.ledger.leased != 0:
        return ChaosCell(
            spec,
            ok=False,
            time_ms=makespan / 1000.0,
            error=f"{executor.ledger.leased} in-flight token(s) never "
            "retired",
            faults=fault_summary(counters),
        )
    if not validate(app.result()):
        return ChaosCell(
            spec,
            ok=False,
            time_ms=makespan / 1000.0,
            error="output does not match the serial reference",
            faults=fault_summary(counters),
        )
    return ChaosCell(
        spec,
        ok=True,
        time_ms=makespan / 1000.0,
        faults=fault_summary(counters),
    )


def chaos_grid(
    drop_rates: tuple[float, ...] = DEFAULT_DROP_RATES,
    apps: tuple[str, ...] = ("bfs", "pagerank"),
    variants: tuple[str, ...] = tuple(CHAOS_VARIANTS),
    seed: int = 0,
    n_gpus: int = 4,
    retry: Optional[RetryPolicy] = None,
) -> list[ChaosCell]:
    """Run the full chaos grid in deterministic loop order."""
    return [
        run_chaos_cell(
            ChaosSpec(
                app=app,
                variant=variant,
                drop_rate=rate,
                seed=seed,
                n_gpus=n_gpus,
            ),
            retry=retry,
        )
        for app in apps
        for variant in variants
        for rate in drop_rates
    ]


def render_chaos(cells: list[ChaosCell]) -> str:
    """Paper-style text table of a chaos grid's verdicts."""
    rows = []
    for cell in cells:
        f = cell.faults
        rows.append(
            (
                cell.spec.app,
                cell.spec.variant,
                f"{cell.spec.drop_rate:.2f}",
                "pass" if cell.ok else "FAIL",
                f"{cell.time_ms:.3f}",
                f"{f.get('fault_dropped', 0):.0f}",
                f"{f.get('transport_retransmits', 0):.0f}",
                f"{f.get('transport_duplicates_suppressed', 0):.0f}",
                cell.error,
            )
        )
    return format_generic_table(
        "Chaos grid: validated runs under injected faults "
        "(drop/dup/delay; ack+retransmit transport)",
        ["app", "variant", "drop", "verdict", "ms", "dropped", "retx",
         "dupsup", "error"],
        rows,
    )


# ----------------------------------------------------- inertness check
class _TraceDigest:
    """Folds every dispatched heap entry into one SHA-256."""

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self.n_events = 0

    def __call__(self, entry) -> None:
        when, priority, seq, event = entry
        self.n_events += 1
        self._hash.update(
            f"{when!r}|{priority}|{seq}|{type(event).__name__}\n".encode()
        )

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


def trace_digest_for(
    spec: ChaosSpec, faults: Optional[FaultPlan]
) -> tuple[str, float, dict]:
    """(event digest, makespan, counters) of one traced cell run."""
    app, _ = _build_app(spec)
    executor = AtosExecutor(
        daisy(spec.n_gpus), app, _config(spec, faults, None)
    )
    digest = _TraceDigest()
    executor.env.trace_hook = digest
    makespan, counters = executor.run()
    return digest.hexdigest(), makespan, dict(counters)


def verify_inert(seed: int = 0, apps: tuple[str, ...] = ("bfs",)) -> bool:
    """Pin the zero-fault guarantee: an all-zero plan changes nothing.

    For each app, runs the same seeded cell twice — ``faults=None``
    versus an inert :class:`FaultPlan` — and requires bit-identical
    event digests, makespans, and counters.  Raises
    :class:`AssertionError` on any divergence; returns ``True``.
    """
    for app in apps:
        spec = ChaosSpec(app=app, variant="standard-persistent",
                         drop_rate=0.0, seed=seed)
        baseline = trace_digest_for(spec, None)
        inert = trace_digest_for(spec, FaultPlan(seed=seed))
        if baseline != inert:
            raise AssertionError(
                f"inert fault plan perturbed the {app} trace: "
                f"{baseline[0][:16]} != {inert[0][:16]}"
            )
    return True
