"""Chaos harness: fault grids that must validate and terminate.

The resilience claim of :mod:`repro.faults` is behavioral, not
structural: under a deterministic schedule of dropped / duplicated /
delayed messages and degraded devices, every run must still (a)
terminate — no hang, no work-token underflow — and (b) produce output
identical to the fault-free serial reference.  This module turns that
claim into a grid: fault rate x application x queue variant, each cell
a seeded end-to-end simulation validated against
:mod:`repro.apps.validation`.

Two entry points:

* :func:`chaos_grid` runs the grid and reports per-cell verdicts plus
  the fault/transport counters (what was injected, what the delivery
  layer absorbed);
* :func:`verify_inert` pins the subsystem's zero-cost guarantee — a
  run with ``faults=None`` and a run with an all-zero
  :class:`~repro.faults.FaultPlan` dispatch bit-identical event traces
  (the golden-digest technique from the determinism suite).

``python -m repro chaos`` drives both.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.apps import AtosBFS, AtosPageRank
from repro.recovery import RecoveryPolicy
from repro.apps.validation import (
    pagerank_close,
    reference_bfs,
    reference_pagerank,
)
from repro.config import daisy
from repro.errors import ReproError, SimulationError
from repro.faults import CrashEvent, FaultPlan, RetryPolicy
from repro.gpu.kernel import KernelStrategy
from repro.graph import bfs_grow_partition, largest_component_vertex, rmat
from repro.metrics.counters import fault_summary
from repro.metrics.tables import format_generic_table
from repro.runtime import AtosConfig, AtosExecutor

__all__ = [
    "CHAOS_VARIANTS",
    "CHAOS_EPSILON",
    "ChaosSpec",
    "ChaosCell",
    "run_chaos_cell",
    "chaos_grid",
    "render_chaos",
    "trace_digest_for",
    "verify_inert",
    "DEFAULT_CRASH_TIMES",
    "CrashSpec",
    "CrashCell",
    "run_crash_cell",
    "crash_grid",
    "render_crash",
    "verify_recovery_inert",
    "DEFAULT_KILL_WINDOWS",
    "PdesKillSpec",
    "PdesKillCell",
    "pdes_serial_digest",
    "run_pdes_kill_cell",
    "pdes_kill_grid",
    "render_pdes_kill",
    "verify_pdes_checkpoint_inert",
]

#: The paper's three evaluated queue configurations, by short name.
CHAOS_VARIANTS: dict[str, tuple[KernelStrategy, bool]] = {
    "standard-persistent": (KernelStrategy.PERSISTENT, False),
    "priority-discrete": (KernelStrategy.DISCRETE, True),
    "standard-discrete": (KernelStrategy.DISCRETE, False),
}

#: PageRank validation threshold for chaos cells.
CHAOS_EPSILON = 1e-4

#: Default drop-rate sweep (the issue's acceptance range: up to 10%).
DEFAULT_DROP_RATES = (0.0, 0.05, 0.10)


@dataclass(frozen=True)
class ChaosSpec:
    """One chaos cell: app x queue variant x fault intensity, seeded.

    The graph, the partition, and the fault schedule are all pure
    functions of ``seed``, so a cell is exactly replayable.
    """

    app: str
    variant: str
    drop_rate: float
    duplicate_rate: float = 0.02
    delay_rate: float = 0.05
    seed: int = 0
    scale: int = 9
    edge_factor: int = 8
    n_gpus: int = 4

    def __post_init__(self) -> None:
        if self.app not in ("bfs", "pagerank"):
            raise ValueError(f"unknown chaos app {self.app!r}")
        if self.variant not in CHAOS_VARIANTS:
            raise ValueError(
                f"unknown variant {self.variant!r}; "
                f"known: {sorted(CHAOS_VARIANTS)}"
            )

    def label(self) -> str:
        return (
            f"{self.app}/{self.variant}/drop{self.drop_rate:g}"
            f"/seed{self.seed}"
        )

    def plan(self) -> FaultPlan:
        """The deterministic fault schedule this cell injects."""
        return FaultPlan(
            seed=self.seed,
            drop_rate=self.drop_rate,
            duplicate_rate=self.duplicate_rate,
            delay_rate=self.delay_rate,
        )


@dataclass
class ChaosCell:
    """Verdict of one chaos cell."""

    spec: ChaosSpec
    ok: bool
    time_ms: float = 0.0
    error: str = ""
    #: Injected-fault and transport counters (``fault_summary``).
    faults: dict = field(default_factory=dict)
    #: Telemetry phase breakdown (category -> simulated us summed over
    #: ranks) when the cell ran traced; empty otherwise.
    phases: dict = field(default_factory=dict)

    def summary(self) -> str:
        f = self.faults
        return (
            f"drops={f.get('fault_dropped', 0):.0f} "
            f"retx={f.get('transport_retransmits', 0):.0f} "
            f"dupsup={f.get('transport_duplicates_suppressed', 0):.0f}"
        )


def _build_app(spec: ChaosSpec):
    """The seeded graph/app pair for a cell, plus its validator."""
    graph = rmat(
        scale=spec.scale, edge_factor=spec.edge_factor, seed=spec.seed + 31
    )
    partition = bfs_grow_partition(graph, spec.n_gpus, seed=spec.seed)
    if spec.app == "bfs":
        source = largest_component_vertex(graph)
        app = AtosBFS(graph, partition, source)
        reference = reference_bfs(graph, source)

        def validate(output) -> bool:
            return bool(np.array_equal(np.asarray(output), reference))

    else:
        app = AtosPageRank(graph, partition, epsilon=CHAOS_EPSILON)
        reference = reference_pagerank(graph, epsilon=CHAOS_EPSILON)

        def validate(output) -> bool:
            return pagerank_close(
                np.asarray(output), reference, CHAOS_EPSILON
            )

    return app, validate


def _config(
    spec,
    faults: Optional[FaultPlan],
    retry: Optional[RetryPolicy],
    recovery: Optional[RecoveryPolicy] = None,
    telemetry: Optional[bool] = None,
) -> AtosConfig:
    kernel, priority = CHAOS_VARIANTS[spec.variant]
    return AtosConfig(
        kernel=kernel,
        priority=priority,
        fetch_size=1 if spec.app == "bfs" else 8,
        # Always exercise the aggregator flush path: it is the batch
        # send site the reliable transport wraps.  The small batch size
        # forces frequent size-triggered flushes, so even these small
        # seeded graphs put enough messages on the wire for the fault
        # rates to actually bite.
        use_aggregator=True,
        batch_size=1 << 12,
        faults=faults,
        retry=retry,
        recovery=recovery,
        telemetry=telemetry,
    )


def _cell_phases(executor: AtosExecutor, makespan: float) -> dict:
    """Category -> simulated us for a traced cell (empty when untraced)."""
    if executor.telemetry is None:
        return {}
    from repro.telemetry.report import phase_breakdown

    return {
        cat: round(us, 3)
        for cat, us in phase_breakdown(
            executor.telemetry, makespan
        ).items()
    }


def run_chaos_cell(
    spec: ChaosSpec,
    retry: Optional[RetryPolicy] = None,
    telemetry: Optional[bool] = None,
) -> ChaosCell:
    """Run one cell end to end and validate it.

    A cell passes only if the simulation terminates cleanly (the
    resilient transport's retry budget was never exhausted, no
    work-token underflow), every leased in-flight token was retired,
    and the output matches the fault-free serial reference.

    ``telemetry=True`` traces the cell and attaches its phase breakdown
    (where the simulated time went during the faulted run) to the
    verdict; ``None`` follows ``REPRO_TELEMETRY``.
    """
    app, validate = _build_app(spec)
    executor = AtosExecutor(
        daisy(spec.n_gpus),
        app,
        _config(spec, spec.plan(), retry, telemetry=telemetry),
    )
    try:
        makespan, counters = executor.run()
    except SimulationError as exc:
        return ChaosCell(spec, ok=False, error=str(exc))
    phases = _cell_phases(executor, makespan)
    if executor.ledger is not None and executor.ledger.leased != 0:
        return ChaosCell(
            spec,
            ok=False,
            time_ms=makespan / 1000.0,
            error=f"{executor.ledger.leased} in-flight token(s) never "
            "retired",
            faults=fault_summary(counters),
            phases=phases,
        )
    if not validate(app.result()):
        return ChaosCell(
            spec,
            ok=False,
            time_ms=makespan / 1000.0,
            error="output does not match the serial reference",
            faults=fault_summary(counters),
            phases=phases,
        )
    return ChaosCell(
        spec,
        ok=True,
        time_ms=makespan / 1000.0,
        faults=fault_summary(counters),
        phases=phases,
    )


def chaos_grid(
    drop_rates: tuple[float, ...] = DEFAULT_DROP_RATES,
    apps: tuple[str, ...] = ("bfs", "pagerank"),
    variants: tuple[str, ...] = tuple(CHAOS_VARIANTS),
    seed: int = 0,
    n_gpus: int = 4,
    retry: Optional[RetryPolicy] = None,
) -> list[ChaosCell]:
    """Run the full chaos grid in deterministic loop order."""
    return [
        run_chaos_cell(
            ChaosSpec(
                app=app,
                variant=variant,
                drop_rate=rate,
                seed=seed,
                n_gpus=n_gpus,
            ),
            retry=retry,
        )
        for app in apps
        for variant in variants
        for rate in drop_rates
    ]


def render_chaos(cells: list[ChaosCell]) -> str:
    """Paper-style text table of a chaos grid's verdicts."""
    rows = []
    for cell in cells:
        f = cell.faults
        rows.append(
            (
                cell.spec.app,
                cell.spec.variant,
                f"{cell.spec.drop_rate:.2f}",
                "pass" if cell.ok else "FAIL",
                f"{cell.time_ms:.3f}",
                f"{f.get('fault_dropped', 0):.0f}",
                f"{f.get('transport_retransmits', 0):.0f}",
                f"{f.get('transport_duplicates_suppressed', 0):.0f}",
                cell.error,
            )
        )
    return format_generic_table(
        "Chaos grid: validated runs under injected faults "
        "(drop/dup/delay; ack+retransmit transport)",
        ["app", "variant", "drop", "verdict", "ms", "dropped", "retx",
         "dupsup", "error"],
        rows,
    )


# ----------------------------------------------------- inertness check
class _TraceDigest:
    """Folds every dispatched heap entry into one SHA-256."""

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self.n_events = 0

    def __call__(self, entry) -> None:
        when, priority, seq, event = entry
        self.n_events += 1
        self._hash.update(
            f"{when!r}|{priority}|{seq}|{type(event).__name__}\n".encode()
        )

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


def trace_digest_for(
    spec: ChaosSpec,
    faults: Optional[FaultPlan],
    recovery: Optional[RecoveryPolicy] = None,
) -> tuple[str, float, dict]:
    """(event digest, makespan, counters) of one traced cell run."""
    app, _ = _build_app(spec)
    executor = AtosExecutor(
        daisy(spec.n_gpus), app, _config(spec, faults, None, recovery)
    )
    digest = _TraceDigest()
    executor.env.trace_hook = digest
    makespan, counters = executor.run()
    return digest.hexdigest(), makespan, dict(counters)


def verify_inert(seed: int = 0, apps: tuple[str, ...] = ("bfs",)) -> bool:
    """Pin the zero-fault guarantee: an all-zero plan changes nothing.

    For each app, runs the same seeded cell twice — ``faults=None``
    versus an inert :class:`FaultPlan` — and requires bit-identical
    event digests, makespans, and counters.  Raises
    :class:`AssertionError` on any divergence; returns ``True``.
    """
    for app in apps:
        spec = ChaosSpec(app=app, variant="standard-persistent",
                         drop_rate=0.0, seed=seed)
        baseline = trace_digest_for(spec, None)
        inert = trace_digest_for(spec, FaultPlan(seed=seed))
        if baseline != inert:
            raise AssertionError(
                f"inert fault plan perturbed the {app} trace: "
                f"{baseline[0][:16]} != {inert[0][:16]}"
            )
    return True


# ------------------------------------------------------------ crash grid
#: Default crash times (sim us) per app, chosen to land mid-run on the
#: seeded chaos graphs (fault-free makespans: BFS ~40-80 us, PageRank
#: ~300-1500 us depending on variant).  An early and a late crash per
#: app: the early one rolls back to the bootstrap (epoch-0) checkpoint,
#: the late one exercises replay from a periodic epoch.
DEFAULT_CRASH_TIMES: dict[str, tuple[float, ...]] = {
    "bfs": (15.0, 30.0),
    "pagerank": (80.0, 180.0),
}


@dataclass(frozen=True)
class CrashSpec:
    """One crash cell: app x variant x (crash rank, crash time), seeded.

    Like :class:`ChaosSpec`, the graph, partition, crash schedule, and
    recovery policy are pure functions of the fields, so a cell is
    exactly replayable — including its checkpoint content digests.
    """

    app: str
    variant: str
    crash_pe: int
    crash_at: float
    seed: int = 0
    scale: int = 9
    edge_factor: int = 8
    n_gpus: int = 4
    checkpoint_interval: float = 40.0
    detect_interval: float = 5.0
    drain_poll: float = 1.0

    def __post_init__(self) -> None:
        if self.app not in ("bfs", "pagerank"):
            raise ValueError(f"unknown crash app {self.app!r}")
        if self.variant not in CHAOS_VARIANTS:
            raise ValueError(
                f"unknown variant {self.variant!r}; "
                f"known: {sorted(CHAOS_VARIANTS)}"
            )
        if not 0 <= self.crash_pe < self.n_gpus:
            raise ValueError("crash_pe out of range")
        if self.crash_at < 0:
            raise ValueError("crash_at must be non-negative")

    def label(self) -> str:
        return (
            f"{self.app}/{self.variant}/pe{self.crash_pe}"
            f"@{self.crash_at:g}/seed{self.seed}"
        )

    def plan(self) -> FaultPlan:
        """The fail-stop schedule: one crash, no message faults."""
        return FaultPlan(
            seed=self.seed,
            crashes=(CrashEvent(pe=self.crash_pe, at=self.crash_at),),
        )

    def policy(self) -> RecoveryPolicy:
        return RecoveryPolicy(
            checkpoint_interval=self.checkpoint_interval,
            detect_interval=self.detect_interval,
            drain_poll=self.drain_poll,
        )


@dataclass
class CrashCell:
    """Verdict of one crash cell."""

    spec: CrashSpec
    ok: bool
    time_ms: float = 0.0
    error: str = ""
    #: Ranks the coordinator actually recovered around.  Zero is legal:
    #: a crash landing after the rank's last useful round lets the run
    #: finish before the detector's next tick.
    recovered: int = 0
    #: SHA-256 of the validated output array (determinism suite).
    result_digest: str = ""
    #: Content digest of every checkpoint epoch, in order.
    checkpoint_digests: list[str] = field(default_factory=list)
    #: Fault/transport/recovery counters (``fault_summary``).
    faults: dict = field(default_factory=dict)
    #: Telemetry phase breakdown (category -> simulated us summed over
    #: ranks, recovery parking included) when traced; empty otherwise.
    phases: dict = field(default_factory=dict)

    def summary(self) -> str:
        f = self.faults
        return (
            f"ckpts={f.get('recovery_checkpoints_taken', 0):.0f} "
            f"reclaimed={f.get('recovery_tokens_reclaimed', 0):.0f} "
            f"replayed={f.get('recovery_replay_messages', 0):.0f}"
        )


def _result_digest(output) -> str:
    array = np.ascontiguousarray(np.asarray(output))
    h = hashlib.sha256(f"{array.dtype}|{array.shape}\n".encode())
    h.update(array.tobytes())
    return h.hexdigest()


def run_crash_cell(
    spec: CrashSpec, telemetry: Optional[bool] = None
) -> CrashCell:
    """Run one fail-stop cell end to end and validate it.

    A cell passes only if the simulation terminates (recovery rerouted
    the dead rank's work), every leased token was retired or reclaimed,
    and the output matches the fault-free serial reference — i.e. a
    crashed run is *indistinguishable by result* from a clean one.

    ``telemetry=True`` traces the cell — recovery barrier parking shows
    up as the ``recovery`` category in the attached phase breakdown.
    """
    app, validate = _build_app(spec)
    executor = AtosExecutor(
        daisy(spec.n_gpus),
        app,
        _config(spec, spec.plan(), None, spec.policy(),
                telemetry=telemetry),
    )
    try:
        makespan, counters = executor.run()
    except SimulationError as exc:
        return CrashCell(spec, ok=False, error=str(exc))
    phases = _cell_phases(executor, makespan)
    digests = list(executor.recovery.checkpoint_digests)
    recovered = int(counters["recovery_ranks_recovered"])
    if executor.ledger.leased != 0:
        return CrashCell(
            spec,
            ok=False,
            time_ms=makespan / 1000.0,
            error=f"{executor.ledger.leased} in-flight token(s) never "
            "retired",
            recovered=recovered,
            checkpoint_digests=digests,
            faults=fault_summary(counters),
            phases=phases,
        )
    output = app.result()
    if not validate(output):
        return CrashCell(
            spec,
            ok=False,
            time_ms=makespan / 1000.0,
            error="output does not match the serial reference",
            recovered=recovered,
            checkpoint_digests=digests,
            faults=fault_summary(counters),
            phases=phases,
        )
    return CrashCell(
        spec,
        ok=True,
        time_ms=makespan / 1000.0,
        recovered=recovered,
        result_digest=_result_digest(output),
        checkpoint_digests=digests,
        faults=fault_summary(counters),
        phases=phases,
    )


def crash_grid(
    crash_times: Optional[dict[str, tuple[float, ...]]] = None,
    apps: tuple[str, ...] = ("bfs", "pagerank"),
    variants: tuple[str, ...] = ("standard-persistent", "priority-discrete"),
    crash_pes: tuple[int, ...] = (1,),
    seed: int = 0,
    n_gpus: int = 4,
    jobs: Optional[int] = None,
) -> list[CrashCell]:
    """Run the fail-stop grid: app x variant x crash rank x crash time.

    With ``jobs`` > 1 the cells run in worker processes through the
    pool harness (:func:`repro.harness.pool.run_grid`), which doubles
    as the determinism check's serial-vs-pooled executor.  Results are
    in deterministic spec order either way.
    """
    times = crash_times or DEFAULT_CRASH_TIMES
    specs = [
        CrashSpec(
            app=app,
            variant=variant,
            crash_pe=pe,
            crash_at=at,
            seed=seed,
            n_gpus=n_gpus,
        )
        for app in apps
        for variant in variants
        for pe in crash_pes
        for at in times[app]
    ]
    if jobs is not None and jobs != 1:
        from repro.harness.pool import run_grid

        results = run_grid(specs, jobs=jobs, run_fn=run_crash_cell)
        return [
            cell.result
            if cell.ok
            else CrashCell(spec, ok=False, error=cell.error or cell.status)
            for spec, cell in zip(specs, results)
        ]
    return [run_crash_cell(spec) for spec in specs]


def render_crash(cells: list[CrashCell]) -> str:
    """Paper-style text table of a crash grid's verdicts."""
    rows = []
    for cell in cells:
        f = cell.faults
        rows.append(
            (
                cell.spec.app,
                cell.spec.variant,
                f"pe{cell.spec.crash_pe}@{cell.spec.crash_at:g}",
                "pass" if cell.ok else "FAIL",
                f"{cell.time_ms:.3f}",
                f"{f.get('recovery_checkpoints_taken', 0):.0f}",
                f"{cell.recovered}",
                f"{f.get('recovery_tokens_reclaimed', 0):.0f}",
                f"{f.get('recovery_replay_messages', 0):.0f}",
                cell.error,
            )
        )
    return format_generic_table(
        "Crash grid: fail-stop rank recovery (checkpoint/rollback/"
        "re-home), validated against the serial reference",
        ["app", "variant", "crash", "verdict", "ms", "ckpts", "recov",
         "reclaim", "replay", "error"],
        rows,
    )


def verify_recovery_inert(
    seed: int = 0, apps: tuple[str, ...] = ("bfs",)
) -> bool:
    """Pin the recovery layer's zero-cost guarantee.

    For each app, runs the same seeded crash-free cell twice — no
    recovery policy versus an explicit :class:`RecoveryPolicy` — and
    requires bit-identical event digests, makespans, and counters: a
    plan without crashes must never construct a coordinator.  Raises
    :class:`AssertionError` on divergence; returns ``True``.
    """
    for app in apps:
        spec = ChaosSpec(app=app, variant="standard-persistent",
                         drop_rate=0.0, seed=seed)
        baseline = trace_digest_for(spec, None, recovery=None)
        with_policy = trace_digest_for(
            spec, None, recovery=RecoveryPolicy()
        )
        if baseline != with_policy:
            raise AssertionError(
                f"idle recovery policy perturbed the {app} trace: "
                f"{baseline[0][:16]} != {with_policy[0][:16]}"
            )
    return True


# -- pdes kill grid: worker loss under the partitioned driver ------------

#: Default windows at which the grid kills a worker.  Window 0 loses
#: the worker before any barrier state exists (replay from an empty
#: journal); later windows exercise mid-run journal replay across
#: checkpoint barriers.
DEFAULT_KILL_WINDOWS = (0, 2, 5)


@dataclass(frozen=True)
class PdesKillSpec:
    """One kill cell: app x partition count x kill site, seeded.

    The graph, the partition map, and the kill schedule are pure
    functions of the spec, so a cell is exactly replayable.  The kill
    fires in ``kill_partition``'s worker at its ``kill_window``-th
    *executed* window (idle-skipped windows do not advance the count):
    the worker closes its pipe and hard-exits before running the
    window, and the coordinator must respawn + replay it.
    """

    app: str
    n_partitions: int
    kill_window: int
    kill_partition: int = 1
    seed: int = 0
    scale: int = 9
    edge_factor: int = 8
    n_gpus: int = 4
    checkpoint_every: Optional[int] = 3

    def __post_init__(self) -> None:
        if self.app not in ("bfs", "pagerank"):
            raise ValueError(f"unknown pdes app {self.app!r}")
        if not 0 <= self.kill_partition < self.n_partitions:
            raise ValueError(
                f"kill_partition {self.kill_partition} out of range for "
                f"{self.n_partitions} partitions"
            )
        if self.kill_window < 0:
            raise ValueError("kill_window must be >= 0")

    def label(self) -> str:
        return (
            f"{self.app}/P{self.n_partitions}"
            f"/kill p{self.kill_partition}@w{self.kill_window}"
            f"/seed{self.seed}"
        )


@dataclass
class PdesKillCell:
    """Verdict for one kill cell (digest vs the serial reference)."""

    spec: PdesKillSpec
    ok: bool
    time_ms: float = 0.0
    windows: int = 0
    kill_fired: bool = False
    checkpoints_taken: int = 0
    windows_replayed: int = 0
    workers_respawned: int = 0
    digest: str = ""
    error: str = ""

    def summary(self) -> str:
        verdict = "pass" if self.ok else "FAIL"
        return (
            f"{self.spec.label():<36} {verdict}  "
            f"respawned={self.workers_respawned} "
            f"replayed={self.windows_replayed}"
        )


def _pdes_inputs(spec: PdesKillSpec):
    """Seeded graph / partition / BFS source for one kill cell."""
    graph = rmat(
        scale=spec.scale, edge_factor=spec.edge_factor, seed=spec.seed + 31
    )
    partition = bfs_grow_partition(graph, spec.n_gpus, seed=spec.seed)
    source = largest_component_vertex(graph)
    return graph, partition, source


def pdes_serial_digest(spec: PdesKillSpec) -> str:
    """Digest of the single-partition (serial) reference for ``spec``."""
    from repro.runtime.partitioned import run_partitioned

    graph, partition, source = _pdes_inputs(spec)
    result = run_partitioned(
        spec.app, graph, partition, daisy(spec.n_gpus),
        n_partitions=1, driver="local", source=source,
        epsilon=CHAOS_EPSILON,
    )
    return result.digest()


def run_pdes_kill_cell(
    spec: PdesKillSpec, serial_digest: Optional[str] = None
) -> PdesKillCell:
    """One kill cell: pooled run with an injected worker kill.

    Passes iff the run completes despite losing a worker and its final
    :class:`~repro.metrics.counters.RunResult` digest is bit-identical
    to the serial (single-partition) reference — respawn-and-replay
    must be invisible in the outcome.
    """
    from repro.runtime.partitioned import WorkerKillPlan, run_partitioned
    from repro.sim.partition import WindowStats

    if serial_digest is None:
        serial_digest = pdes_serial_digest(spec)
    graph, partition, source = _pdes_inputs(spec)
    stats = WindowStats()
    try:
        result = run_partitioned(
            spec.app, graph, partition, daisy(spec.n_gpus),
            n_partitions=spec.n_partitions, driver="pooled",
            source=source, epsilon=CHAOS_EPSILON, stats=stats,
            checkpoint_every=spec.checkpoint_every,
            kill_plan=WorkerKillPlan(
                partition=spec.kill_partition, window=spec.kill_window
            ),
        )
    except (ReproError, SimulationError) as exc:
        return PdesKillCell(spec, ok=False, error=str(exc))
    ok = result.digest() == serial_digest
    return PdesKillCell(
        spec,
        ok=ok,
        time_ms=result.time_ms,
        windows=stats.windows,
        kill_fired=stats.workers_respawned > 0,
        checkpoints_taken=stats.checkpoints_taken,
        windows_replayed=stats.windows_replayed,
        workers_respawned=stats.workers_respawned,
        digest=result.digest()[:16],
        error="" if ok else "digest mismatch vs serial reference",
    )


def pdes_kill_grid(
    apps: tuple[str, ...] = ("bfs", "pagerank"),
    partition_counts: tuple[int, ...] = (2, 4),
    kill_windows: tuple[int, ...] = DEFAULT_KILL_WINDOWS,
    seed: int = 0,
    scale: int = 9,
) -> list[PdesKillCell]:
    """Run the kill grid: app x partition count x kill window.

    The serial reference digest is computed once per app (it does not
    depend on the partition count or the kill site) and shared across
    that app's cells, so the grid's cost is dominated by the killed
    pooled runs themselves.
    """
    cells: list[PdesKillCell] = []
    for app in apps:
        ref = pdes_serial_digest(
            PdesKillSpec(
                app=app, n_partitions=2, kill_window=0,
                seed=seed, scale=scale,
            )
        )
        for n_partitions in partition_counts:
            for window in kill_windows:
                spec = PdesKillSpec(
                    app=app,
                    n_partitions=n_partitions,
                    kill_window=window,
                    seed=seed,
                    scale=scale,
                )
                cells.append(run_pdes_kill_cell(spec, serial_digest=ref))
    return cells


def render_pdes_kill(cells: list[PdesKillCell]) -> str:
    """Paper-style text table of a pdes kill grid's verdicts."""
    rows = []
    for cell in cells:
        rows.append(
            (
                cell.spec.app,
                f"{cell.spec.n_partitions}",
                f"p{cell.spec.kill_partition}@w{cell.spec.kill_window}",
                "pass" if cell.ok else "FAIL",
                f"{cell.time_ms:.3f}",
                f"{cell.windows}",
                f"{cell.checkpoints_taken}",
                f"{cell.workers_respawned}",
                f"{cell.windows_replayed}",
                cell.error,
            )
        )
    return format_generic_table(
        "PDES kill grid: worker loss under the pooled partitioned "
        "driver (respawn + journal replay), digest-pinned to the "
        "serial reference",
        ["app", "P", "kill", "verdict", "ms", "windows", "ckpts",
         "respawn", "replay", "error"],
        rows,
    )


def verify_pdes_checkpoint_inert(
    seed: int = 0, apps: tuple[str, ...] = ("bfs",), scale: int = 9
) -> bool:
    """Pin the checkpoint layer's zero-cost guarantee.

    For each app, runs the same seeded pooled two-partition cell twice
    — checkpointing off versus ``checkpoint_every=2`` — with no kill
    injected, and requires bit-identical result digests: taking a
    checkpoint must observe replica state, never perturb it.  Raises
    :class:`AssertionError` on divergence; returns ``True``.
    """
    from repro.runtime.partitioned import run_partitioned
    from repro.sim.partition import WindowStats

    for app in apps:
        spec = PdesKillSpec(
            app=app, n_partitions=2, kill_window=0, seed=seed, scale=scale
        )
        graph, partition, source = _pdes_inputs(spec)
        baseline = run_partitioned(
            app, graph, partition, daisy(spec.n_gpus),
            n_partitions=2, driver="pooled", source=source,
            epsilon=CHAOS_EPSILON,
        )
        stats = WindowStats()
        checkpointed = run_partitioned(
            app, graph, partition, daisy(spec.n_gpus),
            n_partitions=2, driver="pooled", source=source,
            epsilon=CHAOS_EPSILON, stats=stats, checkpoint_every=2,
        )
        if baseline.digest() != checkpointed.digest():
            raise AssertionError(
                f"checkpointing perturbed the {app} run: "
                f"{baseline.digest()[:16]} != {checkpointed.digest()[:16]}"
            )
        if stats.checkpoints_taken == 0:
            raise AssertionError(
                f"checkpointed {app} run took no checkpoints "
                f"({stats.windows} windows)"
            )
    return True
