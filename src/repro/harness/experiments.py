"""Per-table / per-figure experiment definitions.

Each ``table*``/``figure*`` function regenerates one artifact of the
paper's evaluation section from the simulation and returns structured
data; ``render_*`` helpers produce the printed form the benchmarks
emit.  The experiment → module → bench mapping lives in DESIGN.md §3.

Every grid function takes ``jobs``/``timeout_s``: cells are executed
through :mod:`repro.harness.pool`, so ``jobs > 1`` fans the grid out
over worker processes while results stay in deterministic spec order
(and bit-identical to a serial run — the golden-trace suite pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph import MESH_LIKE, SCALE_FREE, dataset_stats, load
from repro.graph.datasets import DATASETS
from repro.graph.stats import UNREACHED, bfs_levels
from repro.graph.datasets import bfs_source
from repro.harness.pool import RunSpec, grid_specs, run_cells
from repro.metrics.tables import (
    format_cache_line,
    format_generic_table,
    format_runtime_table,
    format_scaling_series,
)

__all__ = [
    "GridResult",
    "runtime_grid",
    "table1_datasets",
    "table2_bfs_nvlink",
    "table3_priority_workload",
    "table4_pagerank_nvlink",
    "table5_ib",
    "figure5_scaling",
    "figure7_latency_hiding",
    "ALL_DATASETS",
    "NVLINK_GPUS",
    "IB_GPUS",
]

ALL_DATASETS = SCALE_FREE + MESH_LIKE
NVLINK_GPUS = (1, 2, 3, 4)
IB_GPUS = (1, 2, 3, 4, 5, 6, 7, 8)


@dataclass
class GridResult:
    """times[framework][dataset] = list of ms, one per GPU count."""

    app: str
    machine: str
    gpu_counts: tuple[int, ...]
    times: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    #: Persistent-cache accounting summed over the grid's cells.  Kept
    #: out of :meth:`render` on purpose — table output must stay
    #: byte-identical between a cold (all-miss) and warm (all-hit)
    #: regeneration; ``report``-style summaries print
    #: :meth:`cache_line` separately.
    cache_hits: int = 0
    cache_misses: int = 0

    def series(self, framework: str, dataset: str) -> list[float]:
        return self.times[framework][dataset]

    def cache_line(self) -> str:
        """One-line cache-effectiveness summary for this grid."""
        return format_cache_line(self.cache_hits, self.cache_misses)

    def render(self, baseline: str | None = None) -> str:
        blocks = []
        labels = [f"{n} GPU" + ("s" if n > 1 else "") for n in self.gpu_counts]
        base_rows = self.times.get(baseline or "", None)
        for framework, rows in self.times.items():
            blocks.append(
                format_runtime_table(
                    f"Application: {self.app} on {framework} "
                    f"({self.machine})",
                    labels,
                    rows,
                    baselines=(
                        base_rows if framework != baseline else None
                    ),
                )
            )
        return "\n\n".join(blocks)


def runtime_grid(
    app: str,
    frameworks: list[str],
    datasets: list[str],
    machine: str,
    gpu_counts: tuple[int, ...],
    skip: set[tuple[str, str]] = frozenset(),
    jobs: int | None = None,
    timeout_s: float | None = None,
    seed: int = 0,
) -> GridResult:
    """Run a full (framework x dataset x #GPU) evaluation grid."""
    results = run_cells(
        grid_specs(
            app, frameworks, datasets, machine, gpu_counts, skip, seed=seed
        ),
        jobs=jobs,
        timeout_s=timeout_s,
    )
    grid = GridResult(app=app, machine=machine, gpu_counts=gpu_counts)
    for result in results.values():
        grid.cache_hits += result.cache_hits
        grid.cache_misses += result.cache_misses
    for framework in frameworks:
        rows: dict[str, list[float]] = {}
        for dataset in datasets:
            if (framework, dataset) in skip:
                continue
            rows[dataset] = [
                results[
                    RunSpec(framework, app, dataset, machine, n, seed=seed)
                ].time_ms
                for n in gpu_counts
            ]
        grid.times[framework] = rows
    return grid


# ------------------------------------------------------------- Table I
def table1_datasets() -> str:
    """Dataset summary, measured vs the paper's original scale."""
    rows = []
    for name in ALL_DATASETS:
        spec = DATASETS[name]
        stats = dataset_stats(name)
        rows.append(
            (
                name,
                stats.n_vertices,
                stats.n_edges,
                stats.diameter,
                stats.max_in_degree,
                stats.max_out_degree,
                f"{stats.avg_degree:.1f}",
                stats.graph_type,
                f"{spec.paper_vertices:.2g}",
                f"{spec.paper_edges:.2g}",
            )
        )
    return format_generic_table(
        "Table I: datasets (measured at ~1/200 scale; last two columns "
        "are the paper's original sizes)",
        ["dataset", "V", "E", "diam", "maxin", "maxout", "avgdeg",
         "type", "paperV", "paperE"],
        rows,
    )


# ------------------------------------------------------------ Table II
TABLE2_FRAMEWORKS = [
    "gunrock",
    "groute",
    "atos-standard-persistent",
    "atos-priority-discrete",
]
#: Groute OOMs on twitter50 in the paper; mirrored here.
TABLE2_SKIP = {("groute", "twitter50")}


def table2_bfs_nvlink(
    datasets: list[str] | None = None,
    gpu_counts: tuple[int, ...] = NVLINK_GPUS,
    jobs: int | None = None,
    timeout_s: float | None = None,
    seed: int = 0,
) -> GridResult:
    """Table II: BFS on Daisy, 4 frameworks x datasets x GPU counts."""
    return runtime_grid(
        "bfs",
        TABLE2_FRAMEWORKS,
        datasets or ALL_DATASETS,
        "daisy",
        gpu_counts,
        skip=TABLE2_SKIP,
        jobs=jobs,
        timeout_s=timeout_s,
        seed=seed,
    )


# ----------------------------------------------------------- Table III
def table3_priority_workload(
    datasets: list[str] | None = None,
    gpu_counts: tuple[int, ...] = NVLINK_GPUS,
    jobs: int | None = None,
    timeout_s: float | None = None,
    seed: int = 0,
) -> tuple[str, dict]:
    """Normalized BFS workload without -> with the priority queue."""
    datasets = datasets or SCALE_FREE
    results = run_cells(
        grid_specs(
            "bfs",
            ["atos-standard-persistent", "atos-priority-discrete"],
            datasets,
            "daisy",
            gpu_counts,
            seed=seed,
        ),
        jobs=jobs,
        timeout_s=timeout_s,
    )
    data: dict[str, dict[int, tuple[float, float]]] = {}
    rows = []
    for dataset in datasets:
        graph = load(dataset)
        reached = int(
            (bfs_levels(graph, bfs_source(dataset)) != UNREACHED).sum()
        )
        data[dataset] = {}
        cells = [dataset]
        for n in gpu_counts:
            without = results[
                RunSpec(
                    "atos-standard-persistent", "bfs", dataset, "daisy", n,
                    seed=seed,
                )
            ].counters["vertices_visited"] / reached
            with_pq = results[
                RunSpec(
                    "atos-priority-discrete", "bfs", dataset, "daisy", n,
                    seed=seed,
                )
            ].counters["vertices_visited"] / reached
            data[dataset][n] = (without, with_pq)
            cells.append(f"{without:.3f} -> {with_pq:.3f}")
        rows.append(cells)
    text = format_generic_table(
        "Table III: normalized BFS workload without -> with priority queue",
        ["dataset"] + [f"{n} GPU" for n in gpu_counts],
        rows,
    )
    return text, data


# ------------------------------------------------------------ Table IV
TABLE4_FRAMEWORKS = [
    "gunrock",
    "groute",
    "atos-standard-discrete",
    "atos-standard-persistent",
]


def table4_pagerank_nvlink(
    datasets: list[str] | None = None,
    gpu_counts: tuple[int, ...] = NVLINK_GPUS,
    jobs: int | None = None,
    timeout_s: float | None = None,
    seed: int = 0,
) -> GridResult:
    """Table IV: PageRank on Daisy, 4 frameworks x datasets x GPUs."""
    return runtime_grid(
        "pagerank",
        TABLE4_FRAMEWORKS,
        datasets or ALL_DATASETS,
        "daisy",
        gpu_counts,
        skip=TABLE2_SKIP,
        jobs=jobs,
        timeout_s=timeout_s,
        seed=seed,
    )


# ------------------------------------------------------------- Table V
def table5_ib(
    app: str,
    datasets: list[str] | None = None,
    gpu_counts: tuple[int, ...] = IB_GPUS,
    jobs: int | None = None,
    timeout_s: float | None = None,
    seed: int = 0,
) -> GridResult:
    """Galois vs Atos on the InfiniBand machine.

    The paper reports Atos's best configuration per dataset ("best
    measured runtime among all available partition schemes"); we run
    the two evaluated Atos configurations and keep the faster.
    """
    datasets = datasets or ALL_DATASETS
    atos_variants = (
        ["atos-standard-persistent", "atos-priority-discrete"]
        if app == "bfs"
        else ["atos-standard-persistent", "atos-standard-discrete"]
    )
    results = run_cells(
        grid_specs(
            app,
            ["galois"] + atos_variants,
            datasets,
            "summit-ib",
            gpu_counts,
            seed=seed,
        ),
        jobs=jobs,
        timeout_s=timeout_s,
    )
    grid = GridResult(app=app, machine="summit-ib", gpu_counts=gpu_counts)
    grid.times["galois"] = {
        d: [
            results[
                RunSpec("galois", app, d, "summit-ib", n, seed=seed)
            ].time_ms
            for n in gpu_counts
        ]
        for d in datasets
    }
    atos_rows: dict[str, list[float]] = {}
    for d in datasets:
        atos_rows[d] = [
            min(
                results[
                    RunSpec(v, app, d, "summit-ib", n, seed=seed)
                ].time_ms
                for v in atos_variants
            )
            for n in gpu_counts
        ]
    grid.times["atos"] = atos_rows
    return grid


# ----------------------------------------------------- Figures 5/8/9
def figure5_scaling(
    grid: GridResult, datasets: list[str] | None = None
) -> str:
    """Strong-scaling rendering of a runtime grid (self-relative)."""
    datasets = datasets or ["soc-livejournal1", "twitter50", "osm-eur",
                            "road-usa"]
    blocks = []
    for dataset in datasets:
        series = {
            fw: rows[dataset]
            for fw, rows in grid.times.items()
            if dataset in rows
        }
        blocks.append(
            format_scaling_series(
                f"Strong scaling: {grid.app} on {dataset} ({grid.machine})",
                list(grid.gpu_counts),
                series,
            )
        )
    return "\n\n".join(blocks)


# ----------------------------------------------------------- Figure 7
def figure7_latency_hiding(
    datasets: list[str] | None = None,
    gpu_counts: tuple[int, ...] = (1, 2, 3, 4, 5, 6),
    jobs: int | None = None,
    timeout_s: float | None = None,
) -> dict[str, GridResult]:
    """Gunrock vs Atos on the latency-penalized Summit-node topology."""
    datasets = datasets or ["soc-livejournal1", "indochina-2004"]
    out = {}
    out["bfs"] = runtime_grid(
        "bfs",
        ["gunrock", "atos-priority-discrete"],
        datasets,
        "summit-node",
        gpu_counts,
        jobs=jobs,
        timeout_s=timeout_s,
    )
    out["pagerank"] = runtime_grid(
        "pagerank",
        ["gunrock", "atos-priority-discrete"],
        datasets,
        "summit-node",
        gpu_counts,
        jobs=jobs,
        timeout_s=timeout_s,
    )
    return out
