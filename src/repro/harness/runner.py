"""Experiment grid runner with two-level caching and validation.

One paper figure often reuses another table's runs (Fig 5 replots
Tables II/IV as strong scaling), so every (framework, app, dataset,
machine, #GPUs) run is cached after its first execution — and every
run is validated against the serial reference before being admitted
to the cache.

Caching is two-level:

* an **in-process memo** (same object back, so repeated calls within a
  process are free and identity-stable), and
* the **persistent on-disk cache** (:mod:`repro.harness.cache`), shared
  across processes and invocations, so a repeated figure run is served
  from disk instead of re-simulated.

Both levels key on a fingerprint of the *materialized machine config*
and of the package source, not just the call arguments — a mutated
cost model (as in ``examples/aggregator_tuning.py``-style sweeps) or an
edited constant can never be served a stale result.  This replaces the
old ``lru_cache``-on-arguments scheme, which keyed only on the machine
*name*.
"""

from __future__ import annotations

import contextlib
import os
import time
from functools import lru_cache
from typing import TYPE_CHECKING, Callable, Iterator, Optional

import numpy as np

from repro.config import ConfigOverlay, MachineConfig, daisy, summit_ib, summit_node
from repro.errors import ConfigError, ConfigurationError
from repro.harness.cache import (
    RunCache,
    cache_enabled,
    code_fingerprint,
    get_cache,
    machine_fingerprint,
)
from repro.graph import bfs_grow_partition, bfs_source, load, random_partition
from repro.graph.partition import Partition
from repro.gpu.kernel import KernelStrategy
from repro.metrics.counters import RunResult
from repro.apps.validation import (
    pagerank_close,
    reference_bfs,
    reference_pagerank,
)
from repro.frameworks import (
    AtosDriver,
    FrameworkDriver,
    GaloisLikeDriver,
    GrouteLikeDriver,
    GunrockLikeDriver,
)

__all__ = [
    "get_driver",
    "get_partition",
    "get_machine",
    "run",
    "run_key",
    "seed_memo",
    "clear_memory_cache",
    "PR_EPSILON",
    "FRAMEWORKS",
]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.pool import RunSpec

#: Evaluation-wide PageRank convergence threshold.
PR_EPSILON = 1e-4

#: Driver registry keyed by the names used in tables/figures.
FRAMEWORKS: dict[str, Callable[[], FrameworkDriver]] = {
    "gunrock": GunrockLikeDriver,
    "groute": GrouteLikeDriver,
    "galois": GaloisLikeDriver,
    "atos-standard-persistent": lambda: AtosDriver(
        kernel=KernelStrategy.PERSISTENT, priority=False
    ),
    "atos-priority-discrete": lambda: AtosDriver(
        kernel=KernelStrategy.DISCRETE, priority=True
    ),
    "atos-standard-discrete": lambda: AtosDriver(
        kernel=KernelStrategy.DISCRETE,
        priority=False,
        variant_name="atos-standard-discrete",
    ),
}

MACHINES = {
    "daisy": daisy,
    "summit-node": summit_node,
    "summit-ib": summit_ib,
}


def get_driver(name: str) -> FrameworkDriver:
    """Instantiate a framework driver from the registry by name."""
    try:
        return FRAMEWORKS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown framework {name!r}; known: {sorted(FRAMEWORKS)}"
        ) from None


def get_machine(name: str, n_gpus: int) -> MachineConfig:
    """Build a machine config (daisy / summit-node / summit-ib) by name."""
    try:
        return MACHINES[name](n_gpus)
    except KeyError:
        raise ConfigurationError(
            f"unknown machine {name!r}; known: {sorted(MACHINES)}"
        ) from None


@lru_cache(maxsize=None)
def get_partition(dataset: str, n_gpus: int, seed: int = 0) -> Partition:
    """The evaluation partitioning: metis-like everywhere except
    twitter50, which uses random (exactly the paper's setup — Metis
    could not partition twitter50 either).  ``seed`` re-rolls the
    partition for repeated-trial grids; 0 is the evaluation default."""
    graph = load(dataset)
    if dataset == "twitter50":
        return random_partition(graph, n_gpus, seed=seed)
    return bfs_grow_partition(graph, n_gpus, seed=seed)


@lru_cache(maxsize=None)
def _reference_depth(dataset: str) -> np.ndarray:
    return reference_bfs(load(dataset), bfs_source(dataset))


@lru_cache(maxsize=None)
def _reference_rank(dataset: str) -> np.ndarray:
    return reference_pagerank(load(dataset), epsilon=PR_EPSILON)


#: In-process memo: cache key -> RunResult (identity-stable per process).
_memo: dict[str, RunResult] = {}


def _spec_dict(
    framework: str,
    app: str,
    dataset: str,
    machine_name: str,
    n_gpus: int,
    validate: bool,
    machine: MachineConfig,
    seed: int = 0,
    overlay: Optional[ConfigOverlay] = None,
) -> dict:
    """The full cache identity of one run: call args + config + code.

    An empty/None overlay adds nothing to the dict, so every
    pre-overlay cache key (and golden trace) is unchanged.
    """
    spec = {
        "framework": framework,
        "app": app,
        "dataset": dataset,
        "machine": machine_name,
        "n_gpus": n_gpus,
        "validate": validate,
        "seed": seed,
        "machine_config": machine_fingerprint(machine),
        "code_version": code_fingerprint(),
    }
    if overlay:
        spec["overlay"] = overlay.as_dict()
    return spec


def run_key(
    framework: str,
    app: str,
    dataset: str,
    machine_name: str,
    n_gpus: int,
    validate: bool = True,
    seed: int = 0,
    overlay: Optional[ConfigOverlay] = None,
) -> str:
    """The content-addressed cache key one ``run()`` call resolves to."""
    machine = get_machine(machine_name, n_gpus)
    return RunCache.key(
        _spec_dict(
            framework, app, dataset, machine_name, n_gpus, validate, machine,
            seed=seed, overlay=overlay,
        )
    )


def seed_memo(spec: "RunSpec", result: RunResult) -> RunResult:
    """Admit a pool worker's result to the in-process memo.

    ``setdefault`` keeps the memo identity-stable: if this process
    already holds an object for the key, that object wins.
    """
    key = run_key(
        spec.framework,
        spec.app,
        spec.dataset,
        spec.machine,
        spec.n_gpus,
        spec.validate,
        seed=spec.seed,
        overlay=getattr(spec, "overlay", None),
    )
    return _memo.setdefault(key, result)


def clear_memory_cache() -> None:
    """Drop the in-process memo (persistent entries are untouched)."""
    _memo.clear()


@contextlib.contextmanager
def _engine_queue_env(name: Optional[str]) -> Iterator[None]:
    """Temporarily pin ``REPRO_ENGINE_QUEUE`` for one computation.

    The engine reads the variable per Environment construction, so
    setting it around the compute (and restoring afterwards) is the
    process-safe way to select the queue for exactly one run.
    """
    if name is None:
        yield
        return
    from repro.sim.equeue import ENGINE_QUEUE_ENV

    prev = os.environ.get(ENGINE_QUEUE_ENV)
    os.environ[ENGINE_QUEUE_ENV] = name
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop(ENGINE_QUEUE_ENV, None)
        else:
            os.environ[ENGINE_QUEUE_ENV] = prev


def run(
    framework: str,
    app: str,
    dataset: str,
    machine_name: str,
    n_gpus: int,
    validate: bool = True,
    seed: int = 0,
    overlay: Optional[ConfigOverlay] = None,
) -> RunResult:
    """Run (cached) one cell of an evaluation grid.

    Consults the in-process memo, then the persistent on-disk cache,
    and only then simulates.  Fresh results record their wall-clock
    cost and are validated before being admitted to either cache, so a
    cache hit never needs (or does) re-validation.  ``overlay``
    (a :class:`repro.config.ConfigOverlay`) applies tuning-knob
    overrides — executor knobs, engine queue, partitioned execution —
    and extends the cache identity so overlaid runs never alias plain
    ones.
    """
    if overlay is not None and not isinstance(overlay, ConfigOverlay):
        overlay = ConfigOverlay.from_dict(dict(overlay))
    if not overlay:
        overlay = None
    machine = get_machine(machine_name, n_gpus)
    key = RunCache.key(
        _spec_dict(
            framework, app, dataset, machine_name, n_gpus, validate, machine,
            seed=seed, overlay=overlay,
        )
    )
    memoized = _memo.get(key)
    if memoized is not None:
        return memoized
    use_cache = cache_enabled()
    if use_cache:
        cached = get_cache().load(key)
        if isinstance(cached, RunResult):
            cached.cache_hits, cached.cache_misses = 1, 0
            _memo[key] = cached
            return cached
    start = time.perf_counter()
    result = _compute(
        framework, app, dataset, n_gpus, validate, machine, seed=seed,
        overlay=overlay,
    )
    result.wall_clock_s = time.perf_counter() - start
    result.cache_hits = 0
    result.cache_misses = 1 if use_cache else 0
    if use_cache:
        try:
            # Span hubs are per-run observation, not outcome: stripping
            # them keeps cache entries small and keeps a cache-hit
            # replay honest (it did not trace anything).
            telemetry, result.telemetry = result.telemetry, None
            try:
                get_cache().store(key, result)
            finally:
                result.telemetry = telemetry
        except OSError:
            # Persistence is best-effort: an unwritable cache dir must
            # never fail the run itself.
            pass
    _memo[key] = result
    return result


def _compute(
    framework: str,
    app: str,
    dataset: str,
    n_gpus: int,
    validate: bool,
    machine: MachineConfig,
    seed: int = 0,
    overlay: Optional[ConfigOverlay] = None,
) -> RunResult:
    """Simulate one cell and validate it against the serial reference.

    Overlay routing: executor knobs become driver overrides (Atos
    frameworks only — the baselines do not expose them, and silently
    ignoring a knob would poison a tuning study); ``engine_queue`` is
    pinned via the environment for exactly this computation;
    ``partitions >= 2`` routes the cell through the windowed PDES
    coordinator and attaches its :class:`WindowStats` as
    ``host_stats`` so critical-path objectives can read it.
    """
    if app not in ("bfs", "pagerank"):
        raise ConfigurationError(f"unknown app {app!r}")
    graph = load(dataset)
    partition = get_partition(dataset, n_gpus, seed)
    driver = get_driver(framework)
    exec_overrides = overlay.executor_overrides() if overlay else {}
    partitions = overlay.partitions if overlay else None
    partitioned = partitions is not None and partitions >= 2
    if (exec_overrides or partitioned) and not isinstance(driver, AtosDriver):
        raise ConfigError(
            f"overlay {overlay.as_dict()} requires an atos framework "
            f"(got {framework!r}): baseline drivers expose no "
            f"batch/wait/fetch knobs and no partitioned execution"
        )
    if exec_overrides and not partitioned:
        driver.overrides.update(exec_overrides)
    with _engine_queue_env(overlay.engine_queue if overlay else None):
        if partitioned:
            from repro.runtime.partitioned import run_partitioned
            from repro.sim.partition import WindowStats

            stats = WindowStats()
            result = run_partitioned(
                app,
                graph,
                partition,
                machine,
                n_partitions=partitions,
                driver=overlay.pdes_driver or "local",
                source=bfs_source(dataset) if app == "bfs" else 0,
                epsilon=PR_EPSILON,
                dataset=dataset,
                kernel=driver.kernel,
                priority=driver.priority,
                variant_name=driver.name,
                config_overrides=exec_overrides or None,
                stats=stats,
            )
            result.host_stats = stats.as_dict()
        elif app == "bfs":
            result = driver.run_bfs(
                graph, partition, bfs_source(dataset), machine,
                dataset=dataset,
            )
        else:
            result = driver.run_pagerank(
                graph, partition, machine, epsilon=PR_EPSILON,
                dataset=dataset,
            )
    if validate:
        if app == "bfs":
            if not np.array_equal(
                np.asarray(result.output), _reference_depth(dataset)
            ):
                raise AssertionError(
                    f"BFS output mismatch: {framework}/{dataset}/{n_gpus}"
                )
        elif not pagerank_close(
            np.asarray(result.output), _reference_rank(dataset), PR_EPSILON
        ):
            raise AssertionError(
                f"PageRank output mismatch: {framework}/{dataset}/{n_gpus}"
            )
    return result
