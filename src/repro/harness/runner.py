"""Experiment grid runner with process-level caching and validation.

One paper figure often reuses another table's runs (Fig 5 replots
Tables II/IV as strong scaling), so every (framework, app, dataset,
machine, #GPUs) run is cached after its first execution — and every
run is validated against the serial reference before being admitted
to the cache.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

import numpy as np

from repro.config import MachineConfig, daisy, summit_ib, summit_node
from repro.errors import ConfigurationError
from repro.graph import bfs_grow_partition, bfs_source, load, random_partition
from repro.graph.partition import Partition
from repro.gpu.kernel import KernelStrategy
from repro.metrics.counters import RunResult
from repro.apps.validation import (
    pagerank_close,
    reference_bfs,
    reference_pagerank,
)
from repro.frameworks import (
    AtosDriver,
    FrameworkDriver,
    GaloisLikeDriver,
    GrouteLikeDriver,
    GunrockLikeDriver,
)

__all__ = [
    "get_driver",
    "get_partition",
    "get_machine",
    "run",
    "PR_EPSILON",
    "FRAMEWORKS",
]

#: Evaluation-wide PageRank convergence threshold.
PR_EPSILON = 1e-4

#: Driver registry keyed by the names used in tables/figures.
FRAMEWORKS: dict[str, Callable[[], FrameworkDriver]] = {
    "gunrock": GunrockLikeDriver,
    "groute": GrouteLikeDriver,
    "galois": GaloisLikeDriver,
    "atos-standard-persistent": lambda: AtosDriver(
        kernel=KernelStrategy.PERSISTENT, priority=False
    ),
    "atos-priority-discrete": lambda: AtosDriver(
        kernel=KernelStrategy.DISCRETE, priority=True
    ),
    "atos-standard-discrete": lambda: AtosDriver(
        kernel=KernelStrategy.DISCRETE,
        priority=False,
        variant_name="atos-standard-discrete",
    ),
}

MACHINES = {
    "daisy": daisy,
    "summit-node": summit_node,
    "summit-ib": summit_ib,
}


def get_driver(name: str) -> FrameworkDriver:
    """Instantiate a framework driver from the registry by name."""
    try:
        return FRAMEWORKS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown framework {name!r}; known: {sorted(FRAMEWORKS)}"
        ) from None


def get_machine(name: str, n_gpus: int) -> MachineConfig:
    """Build a machine config (daisy / summit-node / summit-ib) by name."""
    try:
        return MACHINES[name](n_gpus)
    except KeyError:
        raise ConfigurationError(
            f"unknown machine {name!r}; known: {sorted(MACHINES)}"
        ) from None


@lru_cache(maxsize=None)
def get_partition(dataset: str, n_gpus: int) -> Partition:
    """The evaluation partitioning: metis-like everywhere except
    twitter50, which uses random (exactly the paper's setup — Metis
    could not partition twitter50 either)."""
    graph = load(dataset)
    if dataset == "twitter50":
        return random_partition(graph, n_gpus, seed=0)
    return bfs_grow_partition(graph, n_gpus, seed=0)


@lru_cache(maxsize=None)
def _reference_depth(dataset: str) -> np.ndarray:
    return reference_bfs(load(dataset), bfs_source(dataset))


@lru_cache(maxsize=None)
def _reference_rank(dataset: str) -> np.ndarray:
    return reference_pagerank(load(dataset), epsilon=PR_EPSILON)


@lru_cache(maxsize=None)
def run(
    framework: str,
    app: str,
    dataset: str,
    machine_name: str,
    n_gpus: int,
    validate: bool = True,
) -> RunResult:
    """Run (cached) one cell of an evaluation grid."""
    graph = load(dataset)
    partition = get_partition(dataset, n_gpus)
    machine = get_machine(machine_name, n_gpus)
    driver = get_driver(framework)
    if app == "bfs":
        result = driver.run_bfs(
            graph, partition, bfs_source(dataset), machine, dataset=dataset
        )
        if validate and not np.array_equal(
            np.asarray(result.output), _reference_depth(dataset)
        ):
            raise AssertionError(
                f"BFS output mismatch: {framework}/{dataset}/{n_gpus}"
            )
    elif app == "pagerank":
        result = driver.run_pagerank(
            graph, partition, machine, epsilon=PR_EPSILON, dataset=dataset
        )
        if validate and not pagerank_close(
            np.asarray(result.output), _reference_rank(dataset), PR_EPSILON
        ):
            raise AssertionError(
                f"PageRank output mismatch: {framework}/{dataset}/{n_gpus}"
            )
    else:
        raise ConfigurationError(f"unknown app {app!r}")
    return result
