"""Partitioned-engine benchmark: serial vs pooled PDES
(``BENCH_pdes.json``).

The partitioned engine (:mod:`repro.runtime.partitioned`) exists for
one reason: host wall-clock.  Its simulated behavior is bit-identical
to the serial engine — the partitioned-golden suite pins digest
equality — so this harness measures what the process pool actually
buys on real evaluation cells.

Every cell runs one (app, dataset, machine, #GPUs) configuration
serially and then pooled at each partition count, asserting digest
equality along the way, and reports two speedups:

* ``speedup_measured`` — serial wall clock over pooled wall clock on
  *this* host.  Only meaningful when the host grants at least one core
  per worker.
* ``speedup_critical_path`` — serial wall clock over the run's
  **parallel critical path**: Σ over windows of the slowest
  partition's worker-measured execution time, plus everything the
  measured run spent outside worker execution (coordination, pickling,
  pipe transport).  This is what the same run achieves once each
  worker has its own core: per-window execution times are measured
  inside the workers (IPC wait excluded), and the conservative-window
  protocol lets a window proceed only when its slowest partition
  reports — so max-per-window is exactly the parallel schedule's span,
  and the overhead term is charged in full rather than amortized.

The committed document's ``headline`` is the largest end-to-end cell;
``cores_available`` records the host parallelism so a reader can tell
which speedup column the measurement environment could realize.
"""

from __future__ import annotations

import os
import time
from typing import Any

from repro.harness.bench import _env, write_bench

__all__ = [
    "run_pdes_bench",
    "render_pdes_bench",
    "validate_pdes_bench",
    "write_bench",
    "HEADLINE_CELL",
    "SCHEMA",
    "PARTITION_COUNTS",
]

SCHEMA = "repro-bench-pdes/1"

#: The largest end-to-end cell: the one the scaling claim rests on.
HEADLINE_CELL = "e2e-pagerank-road-usa"

#: Pooled partition counts measured per cell.
PARTITION_COUNTS = (2, 4)


def _cores_available() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-POSIX
        return os.cpu_count() or 1


_ipc_floor_memo: dict[int, float] = {}


def _ipc_floor_s(n_partitions: int, rounds: int = 300) -> float:
    """Measured per-window IPC cost of ``n_partitions`` pipe workers.

    One window's coordination transport: a pickled ``("step", horizon,
    imports)`` request down each worker's pipe and a pickled
    :class:`~repro.sim.partition.WindowReport` back.  The workers echo
    immediately (no simulation), so this isolates exactly the cost the
    critical-path projection must charge on top of worker execution.
    """
    if n_partitions in _ipc_floor_memo:
        return _ipc_floor_memo[n_partitions]
    from repro.runtime.partitioned import _mp_context
    from repro.sim.partition import Export, WindowReport

    ctx = _mp_context()

    def _echo(conn) -> None:
        report = WindowReport(
            frontier=1.0, net_tokens=1, last_delta_time=1.0
        )
        try:
            while True:
                request = conn.recv()
                if request[0] == "exit":
                    break
                conn.send(("ok", report))
        except EOFError:
            pass
        finally:
            conn.close()

    workers = []
    for _ in range(n_partitions):
        parent, child = ctx.Pipe()
        proc = ctx.Process(target=_echo, args=(child,), daemon=True)
        proc.start()
        child.close()
        workers.append((proc, parent))
    imports = [
        Export(
            arrival_time=1.0, send_time=0.5, src=0, dst=1,
            payload_bytes=64, payload=None, link_seq=0,
        )
    ]
    try:
        start = time.perf_counter()
        for _ in range(rounds):
            for _, conn in workers:
                conn.send(("step", 1.0, imports))
            for _, conn in workers:
                conn.recv()
        per_window = (time.perf_counter() - start) / rounds
    finally:
        for proc, conn in workers:
            try:
                conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
            proc.join(timeout=10)
    _ipc_floor_memo[n_partitions] = per_window
    return per_window


def _bench_cell(
    app: str,
    dataset: str,
    machine_name: str,
    n_gpus: int,
    counts: tuple[int, ...],
) -> dict:
    """One evaluation cell: serial, then local + pooled at each count.

    The run cache is disabled (cache keys do not know about partition
    counts, and a cache hit would time nothing); graph/partition/
    reference caches are warmed by a throwaway serial run first so the
    timed serial run measures simulation, not dataset I/O.

    The critical-path projection is assembled from the *local* driver's
    per-window measurements — in-process, no scheduler interference, so
    its worker execution times are clean — plus the pooled transport's
    measured per-window IPC floor.  The pooled run itself contributes
    the measured wall clock and a digest check through the full
    process/pickle path.
    """
    from repro.graph import bfs_source, load
    from repro.harness.runner import PR_EPSILON, get_machine, get_partition
    from repro.frameworks.atos import AtosDriver
    from repro.runtime.partitioned import run_partitioned
    from repro.sim.partition import WindowStats

    graph = load(dataset)
    machine = get_machine(machine_name, n_gpus)
    partition = get_partition(dataset, n_gpus)
    driver = AtosDriver()

    def _serial():
        if app == "bfs":
            return driver.run_bfs(
                graph, partition, bfs_source(dataset), machine,
                dataset=dataset,
            )
        return driver.run_pagerank(
            graph, partition, machine, epsilon=PR_EPSILON, dataset=dataset,
        )

    def _partitioned(count: int, engine: str, stats: WindowStats):
        return run_partitioned(
            app, graph, partition, machine,
            n_partitions=count, driver=engine,
            source=bfs_source(dataset) if app == "bfs" else 0,
            epsilon=PR_EPSILON, dataset=dataset, stats=stats,
        )

    with _env(REPRO_CACHE="0"):
        _serial()  # warm dataset/reference caches
        start = time.perf_counter()
        serial = _serial()
        serial_s = time.perf_counter() - start

        pooled: dict[str, Any] = {}
        for count in counts:
            local_stats = WindowStats()
            start = time.perf_counter()
            local = _partitioned(count, "local", local_stats)
            local_s = time.perf_counter() - start

            pooled_stats = WindowStats()
            start = time.perf_counter()
            result = _partitioned(count, "pooled", pooled_stats)
            pooled_s = time.perf_counter() - start
            for engine, run_result in (("local", local), ("pooled", result)):
                if run_result.digest() != serial.digest():
                    raise AssertionError(
                        f"partitioned divergence on {app}/{dataset} "
                        f"P={count} ({engine}): "
                        f"{run_result.digest()[:16]} != "
                        f"{serial.digest()[:16]}"
                    )
            coord_s = max(local_s - local_stats.busy_wall_s, 0.0)
            ipc_s = local_stats.windows * _ipc_floor_s(count)
            critical_s = local_stats.critical_wall_s + coord_s + ipc_s
            pooled[str(count)] = {
                "pooled_s": pooled_s,
                "local_s": local_s,
                "critical_path_s": critical_s,
                "critical_wall_s": local_stats.critical_wall_s,
                "busy_wall_s": local_stats.busy_wall_s,
                "coordinator_s": coord_s,
                "ipc_s": ipc_s,
                "speedup_measured": serial_s / pooled_s,
                "speedup_critical_path": serial_s / critical_s,
                "windows": local_stats.windows,
                "exports": local_stats.total_exports,
                "idle_partition_windows": (
                    local_stats.idle_partition_windows
                ),
            }

    return {
        "app": app,
        "dataset": dataset,
        "machine": machine_name,
        "n_gpus": n_gpus,
        "serial_s": serial_s,
        "time_ms": serial.time_ms,
        "digest": serial.digest(),
        "pooled": pooled,
    }


def run_pdes_bench(quick: bool = False, seed: int = 0) -> dict:
    """Run every cell; returns the ``BENCH_pdes.json`` document."""
    cells: dict[str, dict] = {
        "e2e-bfs-road-usa": _bench_cell(
            "bfs", "road-usa", "summit-ib", 4,
            PARTITION_COUNTS[:1] if quick else PARTITION_COUNTS,
        ),
    }
    if not quick:
        cells[HEADLINE_CELL] = _bench_cell(
            "pagerank", "road-usa", "summit-ib", 4,
            PARTITION_COUNTS,
        )
    return {
        "schema": SCHEMA,
        "quick": quick,
        "seed": seed,
        "headline": HEADLINE_CELL if not quick else "e2e-bfs-road-usa",
        "cores_available": _cores_available(),
        "cells": cells,
    }


def render_pdes_bench(doc: dict) -> str:
    """Human-readable table of a pdes bench document."""
    lines = [
        f"cores available on bench host: {doc.get('cores_available')}",
        f"{'cell':<36}{'P':>3}{'serial_s':>10}{'pooled_s':>10}"
        f"{'critpath_s':>11}{'meas':>7}{'ideal':>7}{'windows':>9}",
    ]
    for name, cell in doc["cells"].items():
        marker = "  <- headline" if name == doc.get("headline") else ""
        for count, run in cell["pooled"].items():
            lines.append(
                f"{name:<36}{count:>3}{cell['serial_s']:>10.3f}"
                f"{run['pooled_s']:>10.3f}{run['critical_path_s']:>11.3f}"
                f"{run['speedup_measured']:>6.2f}x"
                f"{run['speedup_critical_path']:>6.2f}x"
                f"{run['windows']:>9}{marker}"
            )
            marker = ""
    return "\n".join(lines)


def validate_pdes_bench(doc: dict) -> int:
    """Schema-check a pdes bench document; returns the cell count.

    The contract CI's pdes smoke job enforces on the committed
    ``BENCH_pdes.json``: schema tag, headline present, every cell
    carrying a serial timing, at least one pooled run with positive
    timings, window counts, and both speedup columns.  Raises
    :class:`ValueError` on the first violation.
    """
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}"
        )
    cells = doc.get("cells")
    if not isinstance(cells, dict) or not cells:
        raise ValueError("cells must be a non-empty mapping")
    if doc.get("headline") not in cells:
        raise ValueError(f"headline {doc.get('headline')!r} not in cells")
    for name, cell in cells.items():
        serial_s = cell.get("serial_s")
        if not isinstance(serial_s, (int, float)) or serial_s <= 0:
            raise ValueError(f"cell {name!r}: bad serial_s: {serial_s!r}")
        if not cell.get("digest"):
            raise ValueError(f"cell {name!r}: missing digest")
        pooled = cell.get("pooled")
        if not isinstance(pooled, dict) or not pooled:
            raise ValueError(f"cell {name!r}: pooled must be non-empty")
        for count, run in pooled.items():
            for key in (
                "pooled_s",
                "critical_path_s",
                "speedup_measured",
                "speedup_critical_path",
            ):
                value = run.get(key)
                if not isinstance(value, (int, float)) or value <= 0:
                    raise ValueError(
                        f"cell {name!r} P={count}: bad {key}: {value!r}"
                    )
            windows = run.get("windows")
            if not isinstance(windows, int) or windows <= 0:
                raise ValueError(
                    f"cell {name!r} P={count}: bad windows: {windows!r}"
                )
    return len(cells)
