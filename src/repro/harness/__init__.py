"""Experiment harness: cached grid runner + table/figure definitions.

Layering: :mod:`~repro.harness.runner` executes and caches individual
cells (in-process memo + the persistent on-disk cache in
:mod:`~repro.harness.cache`), :mod:`~repro.harness.pool` fans grids out
over worker processes, and :mod:`~repro.harness.experiments` defines
the paper's tables/figures on top of both.
"""

from repro.harness.bench import (
    HEADLINE_CELL,
    render_bench,
    run_bench,
    write_bench,
)
from repro.harness.engine_bench import (
    render_engine_bench,
    run_engine_bench,
    validate_engine_bench,
)
from repro.harness.pdes import (
    render_pdes_bench,
    run_pdes_bench,
    validate_pdes_bench,
)
from repro.harness.cache import (
    RunCache,
    cache_enabled,
    get_cache,
    machine_fingerprint,
)
from repro.harness.chaos import (
    CHAOS_VARIANTS,
    ChaosCell,
    ChaosSpec,
    chaos_grid,
    render_chaos,
    run_chaos_cell,
    verify_inert,
)
from repro.harness.profile import ProfileResult, run_profile
from repro.harness.pool import (
    CellResult,
    GridFailure,
    RunSpec,
    grid_specs,
    resolve_jobs,
    run_cells,
    run_grid,
)
from repro.harness.runner import (
    FRAMEWORKS,
    PR_EPSILON,
    clear_memory_cache,
    get_driver,
    get_machine,
    get_partition,
    run,
    run_key,
    seed_memo,
)
from repro.harness.paper_data import (
    PAPER_TABLE2_BFS_NVLINK,
    PAPER_TABLE3_WORKLOAD,
    PAPER_TABLE4_PR_NVLINK,
    PAPER_TABLE5_BFS_IB,
    PAPER_TABLE5_PR_IB,
)
from repro.harness.report import ShapeReport, compare_grid
from repro.harness.experiments import (
    ALL_DATASETS,
    IB_GPUS,
    NVLINK_GPUS,
    GridResult,
    figure5_scaling,
    figure7_latency_hiding,
    runtime_grid,
    table1_datasets,
    table2_bfs_nvlink,
    table3_priority_workload,
    table4_pagerank_nvlink,
    table5_ib,
)

__all__ = [
    "run",
    "CHAOS_VARIANTS",
    "ChaosCell",
    "ChaosSpec",
    "chaos_grid",
    "render_chaos",
    "run_chaos_cell",
    "verify_inert",
    "run_bench",
    "render_bench",
    "write_bench",
    "run_engine_bench",
    "render_engine_bench",
    "validate_engine_bench",
    "run_pdes_bench",
    "render_pdes_bench",
    "validate_pdes_bench",
    "HEADLINE_CELL",
    "ProfileResult",
    "run_profile",
    "run_key",
    "seed_memo",
    "clear_memory_cache",
    "RunCache",
    "cache_enabled",
    "get_cache",
    "machine_fingerprint",
    "RunSpec",
    "CellResult",
    "GridFailure",
    "grid_specs",
    "resolve_jobs",
    "run_cells",
    "run_grid",
    "get_driver",
    "get_machine",
    "get_partition",
    "FRAMEWORKS",
    "PR_EPSILON",
    "GridResult",
    "runtime_grid",
    "table1_datasets",
    "table2_bfs_nvlink",
    "table3_priority_workload",
    "table4_pagerank_nvlink",
    "table5_ib",
    "figure5_scaling",
    "figure7_latency_hiding",
    "ALL_DATASETS",
    "NVLINK_GPUS",
    "IB_GPUS",
    "ShapeReport",
    "compare_grid",
    "PAPER_TABLE2_BFS_NVLINK",
    "PAPER_TABLE3_WORKLOAD",
    "PAPER_TABLE4_PR_NVLINK",
    "PAPER_TABLE5_BFS_IB",
    "PAPER_TABLE5_PR_IB",
]
