"""The profiling workflow behind ``python -m repro profile``.

Runs one evaluation cell with span tracing enabled and assembles the
full observability picture: the per-rank utilization report, the
load-imbalance statistics, the critical-path attribution, and (on
request) the Chrome/Perfetto trace JSON.

Profiled runs always simulate fresh — the run cache is bypassed in
both directions, because a cached result has no spans and a traced
result's spans are per-run observation that must not leak into cached
replays.  Tracing itself is observation-only, so the profiled cell's
digest matches the untraced cell's except for the ``telemetry_*``
bookkeeping counters.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.metrics.counters import RunResult
from repro.telemetry.critical_path import CriticalPath, critical_path
from repro.telemetry.export import write_trace
from repro.telemetry.report import ProfileReport, build_report
from repro.telemetry.spans import TELEMETRY_ENV

__all__ = ["ProfileResult", "run_profile"]


@dataclass
class ProfileResult:
    """One profiled cell: the run plus everything derived from its spans."""

    result: RunResult
    report: ProfileReport
    path: CriticalPath
    #: Where the Perfetto JSON landed (None when no export was asked).
    trace_path: Optional[str] = None
    #: Events written to ``trace_path`` (0 when no export).
    trace_events: int = 0

    @property
    def makespan_us(self) -> float:
        """The profiled run's simulated makespan in microseconds."""
        return self.result.time_ms * 1000.0

    def render(self, top_k: int = 10) -> str:
        """The full profile block ``python -m repro profile`` prints."""
        res = self.result
        meta = getattr(res.telemetry, "meta", None) or {}
        engine = meta.get("engine_queue", "")
        lines = [
            f"profile: {res.framework} / {res.app} / {res.dataset} "
            f"on {res.n_gpus} GPU(s) — {res.time_ms:.3f} ms simulated"
            + (f" (engine queue: {engine})" if engine else ""),
            "",
            self.report.render(),
            "",
            self.path.render(top_k),
        ]
        if self.trace_path is not None:
            lines.append("")
            lines.append(
                f"wrote {self.trace_events} trace events to "
                f"{self.trace_path} (load in ui.perfetto.dev or "
                "chrome://tracing)"
            )
        return "\n".join(lines)


def run_profile(
    framework: str,
    app: str,
    dataset: str,
    machine_name: str,
    n_gpus: int,
    seed: int = 0,
    export: Optional[str] = None,
    validate: bool = True,
) -> ProfileResult:
    """Simulate one cell with tracing on and build its profile.

    Only executor-based frameworks (the atos variants and groute) can
    trace; the BSP/bulk-async baselines raise a configuration error.
    """
    # Imported here, not at module top: the runner imports the full
    # driver stack, which profile-only users shouldn't pay for.
    from repro.harness.runner import _compute, get_machine

    machine = get_machine(machine_name, n_gpus)
    saved = os.environ.get(TELEMETRY_ENV)
    os.environ[TELEMETRY_ENV] = "1"
    try:
        result = _compute(
            framework, app, dataset, n_gpus, validate, machine, seed=seed
        )
    finally:
        if saved is None:
            os.environ.pop(TELEMETRY_ENV, None)
        else:
            os.environ[TELEMETRY_ENV] = saved
    if result.telemetry is None:
        raise ConfigurationError(
            f"framework {framework!r} does not support span tracing "
            "(only the executor-based frameworks do: atos-* and groute)"
        )
    makespan = result.time_ms * 1000.0
    knobs = _knobs_for(framework, app)
    profile = ProfileResult(
        result=result,
        report=build_report(result.telemetry, makespan, knobs=knobs),
        path=critical_path(result.telemetry, makespan),
    )
    if export is not None:
        profile.trace_events = write_trace(
            result.telemetry, makespan, export
        )
        profile.trace_path = export
    return profile


def _knobs_for(framework: str, app: str) -> dict[str, float]:
    """The aggregator knob values an atos-family cell runs with."""
    from repro.config import DEFAULT_BATCH_SIZE, wait_time_for

    return {
        "batch_size": float(DEFAULT_BATCH_SIZE),
        "wait_time": float(wait_time_for(app)),
    }
