"""The paper's reported measurements, transcribed as data.

Used by :mod:`repro.harness.report` to compare reproduction *shapes*
(who wins, rough factors, scaling directions) against the original
tables.  Runtimes are in milliseconds, exactly as printed in the
paper; ``None`` marks cells the paper could not produce (Groute OOMs
on twitter50).

Dataset keys use this repository's names (``repro.graph.datasets``).
"""

from __future__ import annotations

__all__ = [
    "PAPER_TABLE2_BFS_NVLINK",
    "PAPER_TABLE3_WORKLOAD",
    "PAPER_TABLE4_PR_NVLINK",
    "PAPER_TABLE5_BFS_IB",
    "PAPER_TABLE5_PR_IB",
    "NVLINK_GPU_COUNTS",
    "IB_GPU_COUNTS",
]

NVLINK_GPU_COUNTS = (1, 2, 3, 4)
IB_GPU_COUNTS = (1, 2, 3, 4, 5, 6, 7, 8)

#: Table II — BFS runtimes (ms) on Daisy (NVLink), 1-4 GPUs.
PAPER_TABLE2_BFS_NVLINK: dict[str, dict[str, tuple]] = {
    "gunrock": {
        "soc-livejournal1": (13.4, 10.0, 8.15, 8.03),
        "hollywood-2009": (6.28, 5.38, 5.62, 5.39),
        "indochina-2004": (11.0, 12.8, 13.6, 14.9),
        "twitter50": (906, 477, 330, 258),
        "road-usa": (604, 917, 963, 1009),
        "osm-eur": (2094, 3163, 3282, 3442),
    },
    "groute": {
        "soc-livejournal1": (19.0, 10.8, 10.2, 12.6),
        "hollywood-2009": (7.17, 5.81, 5.82, 8.63),
        "indochina-2004": (7.55, 7.43, 23.2, 29.7),
        "twitter50": None,  # out-of-memory in the paper
        "road-usa": (144, 145, 152, 163),
        "osm-eur": (570, 507, 502, 512),
    },
    "atos-standard-persistent": {
        "soc-livejournal1": (12.4, 9.00, 6.87, 6.33),
        "hollywood-2009": (6.27, 7.90, 6.86, 6.77),
        "indochina-2004": (8.03, 9.44, 8.43, 7.38),
        "twitter50": (1412, 841, 587, 452),
        "road-usa": (46.5, 57.5, 63.6, 62.0),
        "osm-eur": (247, 218, 236, 227),
    },
    "atos-priority-discrete": {
        "soc-livejournal1": (11.3, 6.45, 5.01, 4.01),
        "hollywood-2009": (5.77, 5.14, 4.69, 3.84),
        "indochina-2004": (9.68, 9.21, 7.23, 6.48),
        "twitter50": (1052, 506, 348, 270),
        "road-usa": (189, 181, 200, 207),
        "osm-eur": (518, 617, 623, 709),
    },
}

#: Table III — normalized BFS workload (without pq, with pq) per GPUs.
PAPER_TABLE3_WORKLOAD: dict[str, dict[int, tuple[float, float]]] = {
    "soc-livejournal1": {
        1: (1.063, 1.003), 2: (1.26, 1.06), 3: (1.34, 1.10),
        4: (1.42, 1.141),
    },
    "hollywood-2009": {
        1: (1.168, 1.197), 2: (1.36, 1.11), 3: (1.42, 1.21),
        4: (1.57, 1.248),
    },
    "indochina-2004": {
        1: (1.004, 1.00), 2: (1.03, 1.03), 3: (1.03, 1.04),
        4: (1.05, 1.047),
    },
    "twitter50": {
        1: (1.237, 1.008), 2: (1.29, 1.16), 3: (1.31, 1.26),
        4: (1.34, 1.305),
    },
}

#: Table IV — PageRank runtimes (ms) on Daisy (NVLink).
PAPER_TABLE4_PR_NVLINK: dict[str, dict[str, tuple]] = {
    "gunrock": {
        "soc-livejournal1": (262, 188, 89.8, 75.3),
        "hollywood-2009": (87.3, 51.7, 44.8, 33.8),
        "indochina-2004": (159, 120, 105, 100),
        "twitter50": (25483, 15075, 8996, 6998),
        "road-usa": (220, 189, 143, 122),
        "osm-eur": (2784, 2253, 1650, 1373),
    },
    "groute": {
        "soc-livejournal1": (259, 165, 132, 132),
        "hollywood-2009": (115, 109, 102, 105),
        "indochina-2004": (31933, 31845, 31396, 31360),
        "twitter50": None,
        "road-usa": (479, 232, 150, 114),
        "osm-eur": (2414, 1224, 829, 661),
    },
    "atos-standard-discrete": {
        "soc-livejournal1": (116, 58.8, 35.6, 26.3),
        "hollywood-2009": (75.1, 27.9, 21.75, 18.9),
        "indochina-2004": (50.8, 30.8, 24.1, 19.8),
        "twitter50": (11291, 6332, 4521, 3582),
        "road-usa": (111, 76.0, 51.2, 38.9),
        "osm-eur": (991, 785, 525, 408),
    },
    "atos-standard-persistent": {
        "soc-livejournal1": (117, 58.4, 40.0, 32.2),
        "hollywood-2009": (90.8, 33.3, 31.4, 26.2),
        "indochina-2004": (53.4, 37.0, 35.0, 30.1),
        "twitter50": (11037, 5802, 4016, 3077),
        "road-usa": (128, 69.5, 47.3, 36.2),
        "osm-eur": (923, 729, 590, 508),
    },
}

#: Table V — BFS runtimes (ms) on Summit (InfiniBand), 1-8 GPUs.
PAPER_TABLE5_BFS_IB: dict[str, dict[str, tuple]] = {
    "galois": {
        "soc-livejournal1": (19.8, 19.1, 361, 382, 476, 470, 587, 636),
        "hollywood-2009": (24.6, 204, 263, 403, 466, 499, 542, 545),
        "indochina-2004": (49.0, 88.4, 667, 724, 858, 931, 953, 985),
        "twitter50": (465, 533, 500, 591, 638, 699, 809, 702),
        "road-usa": (4392, 24661, 36891, 37258, 143830, 53299, 173400,
                     65332),
        "osm-eur": (86516, 76359, 105660, 135425, 148622, 165393,
                    176689, 180735),
    },
    "atos": {
        "soc-livejournal1": (11.3, 7.34, 5.69, 4.87, 4.29, 3.97, 3.69,
                             3.72),
        "hollywood-2009": (5.77, 4.19, 4.22, 3.61, 3.11, 2.94, 3.31,
                           3.17),
        "indochina-2004": (9.68, 9.35, 7.71, 6.77, 7.14, 6.97, 6.75,
                           7.12),
        "twitter50": (1052, 539, 366, 338, 298, 286, 329, 286),
        "road-usa": (46.5, 40.3, 49.0, 49.4, 57.1, 64.2, 74.2, 79.0),
        "osm-eur": (247, 220, 226, 253, 278, 260, 268, 269),
    },
}

#: Table V — PageRank runtimes (ms) on Summit (InfiniBand).
PAPER_TABLE5_PR_IB: dict[str, dict[str, tuple]] = {
    "galois": {
        "soc-livejournal1": (1066, 1059, 661, 662, 669, 672, 666, 634),
        "hollywood-2009": (454, 702, 796, 808, 814, 810, 1042, 997),
        "indochina-2004": (2950, 2614, 2926, 2657, 1995, 2957, 2133,
                           2208),
        "twitter50": (15103, 14626, 8396, 7349, 6466, 6176, 5869, 5547),
        "road-usa": (133, 795, 816, 805, 1024, 927, 907, 900),
        "osm-eur": (1010, 2688, 2254, 2199, 2090, 2110, 2109, 2029),
    },
    "atos": {
        "soc-livejournal1": (112, 55.8, 41.5, 36.6, 34.1, 28.7, 30.0,
                             30.7),
        "hollywood-2009": (74.1, 39.7, 35.2, 30.6, 30.3, 29.0, 28.8,
                           29.8),
        "indochina-2004": (51.2, 66.0, 48.2, 32.3, 36.8, 36.2, 34.1,
                           30.2),
        "twitter50": (11046, 5535, 3894, 3022, 2496, 2144, 1887, 1688),
        "road-usa": (101, 62.1, 42.8, 33.0, 26.9, 22.3, 22.2, 22.3),
        "osm-eur": (991, 874, 659, 512, 335, 294, 199, 251),
    },
}
