"""Figure 1: concurrent queue microbenchmarks.

Regenerates the three plots (concurrent push, pop, pop-and-push
runtime vs. thread count) for the five queue variants from the
atomic-contention model, asserting the paper's claims: both "our
queue" APIs beat the broker queue and both CAS queues at every
contention level, with better scaling.

Also micro-benchmarks the *functional* Python queues (real wall time
of push/pop batch operations) so the data-structure implementations
themselves are covered by pytest-benchmark.
"""

import numpy as np

from conftest import write_artifact
from repro.metrics.tables import format_generic_table
from repro.queues import AtosQueue, BrokerQueue, CASQueue, QueueContentionModel

THREADS = np.array([8192, 16384, 32768, 49152, 65536, 81920, 98304])


def _render(series: dict) -> str:
    blocks = []
    for plot, curves in series.items():
        rows = []
        for i, n in enumerate(THREADS):
            rows.append(
                [int(n)] + [f"{curves[k][i]:.4f}" for k in curves]
            )
        blocks.append(
            format_generic_table(
                f"Figure 1 ({plot}): runtime in ms vs #threads",
                ["threads"] + list(curves),
                rows,
            )
        )
    return "\n\n".join(blocks)


def test_fig1_model_curves(benchmark):
    model = QueueContentionModel()
    series = benchmark(model.figure1_series, THREADS)
    write_artifact("fig1_queue_microbench.txt", _render(series))
    for plot, curves in series.items():
        ours = np.minimum(
            curves["our queue(warp)"], curves["our queue(cta)"]
        )
        ours_worst = np.maximum(
            curves["our queue(warp)"], curves["our queue(cta)"]
        )
        for rival in ("Broker queue", "CAS queue(warp)", "CAS queue(cta)"):
            # Paper: both our implementations beat both baselines.
            assert np.all(ours_worst <= curves[rival] + 1e-12), (plot, rival)
        # Better scalability: our slope (last/first) is the smallest.
        ours_growth = ours[-1] / ours[0]
        for rival in ("Broker queue", "CAS queue(warp)"):
            growth = curves[rival][-1] / curves[rival][0]
            assert growth >= ours_growth * 0.99, (plot, rival)


def test_fig1_functional_push_pop_atos(benchmark):
    def workload():
        q = AtosQueue(1 << 16)
        batch = np.arange(512)
        for _ in range(64):
            q.push(batch)
            q.pop(512)
        return q.stats.items_popped

    assert benchmark(workload) == 64 * 512


def test_fig1_functional_push_pop_broker(benchmark):
    def workload():
        q = BrokerQueue(1 << 16)
        batch = np.arange(512)
        for _ in range(64):
            q.push(batch)
            q.pop(512)
        return q.stats.items_popped

    assert benchmark(workload) == 64 * 512


def test_fig1_functional_push_pop_cas(benchmark):
    def workload():
        q = CASQueue(1 << 16)
        batch = np.arange(512)
        for _ in range(64):
            q.push(batch)
            q.pop(512)
        return q.stats.items_popped

    assert benchmark(workload) == 64 * 512
