"""Partitioned-engine benchmark document (``BENCH_pdes.json`` shape).

Regenerates the quick-mode pdes bench document — serial vs partitioned
on a real evaluation cell, digest equality asserted inside every cell —
renders it into ``results/``, and round-trips it through the same
validator CI's pdes-smoke job runs against the committed artifact.

Timing assertions are structural only (positive wall clocks, critical
path below total busy time); the committed full-size document carries
the actual speedup claim.
"""

import json

from conftest import write_artifact
from repro.harness.pdes import (
    HEADLINE_CELL,
    PARTITION_COUNTS,
    SCHEMA,
    render_pdes_bench,
    run_pdes_bench,
    validate_pdes_bench,
)


def test_pdes_bench_document(benchmark):
    doc = benchmark.pedantic(
        run_pdes_bench, kwargs={"quick": True}, rounds=1, iterations=1
    )
    assert validate_pdes_bench(doc) >= 1
    write_artifact("pdes_bench.txt", render_pdes_bench(doc))
    write_artifact("pdes_bench.json", json.dumps(doc, indent=2))

    assert doc["schema"] == SCHEMA
    cell = doc["cells"][doc["headline"]]
    assert cell["serial_s"] > 0
    for count, run in cell["pooled"].items():
        assert int(count) in PARTITION_COUNTS
        # The critical path can never exceed the summed per-partition
        # work plus coordination: max-per-window <= sum-per-window.
        assert run["critical_wall_s"] <= run["busy_wall_s"] + 1e-9
        assert run["windows"] > 0
        assert run["ipc_s"] > 0


def test_full_document_headline_is_largest_cell():
    # The committed document's speedup claim must rest on the largest
    # serial cell; quick mode substitutes a smaller one and says so.
    doc = run_pdes_bench(quick=True)
    assert doc["quick"] is True
    assert doc["headline"] in doc["cells"]
    assert HEADLINE_CELL == "e2e-pagerank-road-usa"


def test_validator_rejects_broken_documents():
    import pytest

    doc = run_pdes_bench(quick=True)
    good = json.loads(json.dumps(doc))
    assert validate_pdes_bench(good) == len(good["cells"])

    for mutate in (
        lambda d: d.update(schema="nope"),
        lambda d: d.update(headline="missing-cell"),
        lambda d: d["cells"][d["headline"]].update(serial_s=0),
        lambda d: d["cells"][d["headline"]].update(digest=""),
        lambda d: next(
            iter(d["cells"][d["headline"]]["pooled"].values())
        ).update(speedup_critical_path=0),
        lambda d: next(
            iter(d["cells"][d["headline"]]["pooled"].values())
        ).update(windows=0),
    ):
        broken = json.loads(json.dumps(doc))
        mutate(broken)
        with pytest.raises(ValueError):
            validate_pdes_bench(broken)
