"""Figure 4: IB latency and bandwidth vs message size; the 1 MiB knee.

Regenerates both sweeps (2^0 .. 2^30 bytes) from the InfiniBand model
and asserts the properties the paper uses to pick BATCH_SIZE = 2^20:
latency is flat for small messages then grows linearly, bandwidth
saturates, and 1 MiB sits at near-peak bandwidth with near-minimal
latency.
"""

import numpy as np

from conftest import write_artifact
from repro.interconnect import default_ib, optimal_batch_size
from repro.metrics.tables import format_generic_table


def _sweeps():
    model = default_ib()
    log_sizes = np.arange(0, 31)
    sizes = 2**log_sizes
    latency = np.array([model.transfer_time(int(s)) for s in sizes])
    bandwidth = np.array(
        [model.achieved_bandwidth(int(s)) for s in sizes]
    )
    return sizes, latency, bandwidth


def test_fig4_latency_and_bandwidth(benchmark):
    sizes, latency, bandwidth = benchmark(_sweeps)
    model = default_ib()
    rows = [
        [
            int(np.log2(s)),
            f"{lat / 1000:.3f}",
            f"{bw / 1000:.2f}",
        ]
        for s, lat, bw in zip(sizes, latency, bandwidth)
    ]
    write_artifact(
        "fig4_ib_message_size.txt",
        format_generic_table(
            "Figure 4: IB latency (ms) and bandwidth (GB/s) vs "
            "log2(message bytes)",
            ["log2(B)", "latency_ms", "bandwidth_GBps"],
            rows,
        ),
    )
    peak = model.spec.bandwidth
    # Latency flat for small messages (fixed costs dominate)...
    assert latency[10] < 1.1 * latency[0]
    # ...then linear in size for large ones (2^30/2^25 = 32x).
    assert abs(latency[30] / latency[25] - 32) < 3.5
    # Bandwidth monotonically increases and saturates.
    assert np.all(np.diff(bandwidth) >= -1e-9)
    # MTU packet framing caps payload bandwidth at ~98.4% of the rail.
    assert bandwidth[30] > 0.95 * peak
    # The paper's operating point: 2^20 B ~ near-peak BW, low latency.
    idx_1mib = 20
    assert bandwidth[idx_1mib] > 0.85 * peak
    assert latency[idx_1mib] < 0.002 * latency[30]
    assert 1 << 18 <= optimal_batch_size(model) <= 1 << 22
