"""Table III: normalized BFS workload without -> with the priority queue.

The paper's Table III measures total vertices visited normalized to an
ideal single-visit traversal, on the scale-free datasets: FIFO
speculation re-visits vertices (factors up to 1.57), the priority
queue suppresses most of it.  Asserted shapes:

* at 1 GPU both configurations are near-ideal,
* without the priority queue the factor grows with GPU count,
* the priority queue's factor is <= the FIFO factor everywhere,
* the priority queue stays near 1.0.
"""

import pytest

from conftest import grid_datasets, nvlink_gpus, write_artifact
from repro.graph import SCALE_FREE
from repro.harness import table3_priority_workload


def test_table3_priority_workload(benchmark):
    datasets = grid_datasets()
    if datasets is not None:
        datasets = [d for d in datasets if d in SCALE_FREE]
    gpus = nvlink_gpus()
    text, data = benchmark.pedantic(
        table3_priority_workload,
        args=(datasets, gpus),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    write_artifact("table3_priority_workload.txt", text)

    for dataset, per_gpu in data.items():
        without_1, with_1 = per_gpu[gpus[0]]
        assert without_1 < 1.1, dataset  # near-ideal single GPU
        without_max, with_max = per_gpu[gpus[-1]]
        # Redundancy appears with more GPUs (speculation across links).
        assert without_max >= without_1 - 1e-9, dataset
        for n in gpus:
            without, with_pq = per_gpu[n]
            assert with_pq <= without + 1e-9, (dataset, n)
            assert with_pq < 1.15, (dataset, n)

    # At the largest GPU count, at least one dataset shows measurable
    # FIFO redundancy that the priority queue then removes.
    reductions = [
        per_gpu[gpus[-1]][0] - per_gpu[gpus[-1]][1]
        for per_gpu in data.values()
    ]
    assert max(reductions) > 0.02
