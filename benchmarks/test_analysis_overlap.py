"""Analysis: communication/computation overlap (latency hiding).

Paper Section III: Atos "leads to more overlap of communication and
computation, as smaller communication sizes make it easier to find
sufficient computation to hide latency"; BSP engines synchronize
before communicating, so their transfer time is exposed by
construction.  We measure, from the DES busy intervals, the fraction
of wire-serialization time that is hidden under GPU compute for Atos
on both interconnects.
"""

from conftest import write_artifact
from repro.config import daisy, summit_ib
from repro.graph import load
from repro.harness import get_partition
from repro.apps import AtosPageRank
from repro.metrics.tables import format_generic_table
from repro.runtime import AtosConfig, AtosExecutor

DATASET = "soc-livejournal1"
N_GPUS = 4


def _overlap(machine):
    graph = load(DATASET)
    app = AtosPageRank(graph, get_partition(DATASET, N_GPUS), epsilon=1e-4)
    executor = AtosExecutor(machine, app, AtosConfig())
    executor.run()
    comm = executor.intervals.total("comm")
    hidden = executor.intervals.overlap("compute", "comm")
    return comm, hidden


def test_overlap_fraction(benchmark):
    def collect():
        return {
            "daisy (NVLink)": _overlap(daisy(N_GPUS)),
            "summit-ib (IB)": _overlap(summit_ib(N_GPUS)),
        }

    results = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    rows = [
        [name, f"{comm:.0f}", f"{hidden:.0f}", f"{hidden / comm:.2f}"]
        for name, (comm, hidden) in results.items()
    ]
    rows.append(["gunrock (any)", "-", "-",
                 "0.00 (BSP: comm after sync, by construction)"])
    write_artifact(
        "analysis_overlap.txt",
        format_generic_table(
            f"Comm/compute overlap: Atos PageRank on {DATASET}, "
            f"{N_GPUS} GPUs",
            ["machine", "comm_us", "hidden_us", "hidden fraction"],
            rows,
        ),
    )
    for name, (comm, hidden) in results.items():
        assert comm > 0, name
        # A substantial fraction of wire time is hidden under compute.
        assert hidden / comm > 0.3, name
