"""Table II: BFS runtimes on Daisy (NVLink), 4 frameworks x 6 datasets
x 1-4 GPUs, with speedups vs Gunrock.

Shape criteria asserted (vs the paper's Table II):

* On mesh-like datasets, Atos-standard-persistent beats Gunrock by a
  large factor (paper: 13-16x; we require >= 5x) and beats Groute
  (paper: ~2.4x; we require >).
* Groute beats Gunrock on mesh-like datasets (paper: 4-6x).
* On scale-free datasets, the best Atos configuration beats Gunrock
  at 4 GPUs (paper: 1.3-2.3x, except twitter50 where Gunrock holds).
* Atos-priority-discrete beats Atos-standard-persistent... only at
  paper scale; at 1/200 scale the launch overhead outweighs the
  smaller speculation savings, so we assert the workload ordering in
  Table III instead (see DESIGN.md / EXPERIMENTS.md).
"""

import numpy as np
import pytest

from conftest import write_artifact
from repro.graph import MESH_LIKE, SCALE_FREE


def _geomean(values):
    return float(np.exp(np.mean(np.log(values))))


def test_table2_bfs_nvlink(benchmark, table2_grid):
    grid = benchmark.pedantic(
        lambda: table2_grid, rounds=1, iterations=1, warmup_rounds=0
    )
    write_artifact("table2_bfs_nvlink.txt", grid.render(baseline="gunrock"))

    gunrock = grid.times["gunrock"]
    groute = grid.times["groute"]
    atos_sp = grid.times["atos-standard-persistent"]
    atos_pd = grid.times["atos-priority-discrete"]

    mesh = [d for d in MESH_LIKE if d in gunrock]
    assert mesh, "no mesh datasets in grid"
    for dataset in mesh:
        for i in range(len(grid.gpu_counts)):
            # Atos-persistent dominates mesh BFS.
            assert atos_sp[dataset][i] < gunrock[dataset][i] / 5, dataset
            assert atos_sp[dataset][i] < groute[dataset][i], dataset
            # Groute (async, persistent) also beats BSP Gunrock.
            assert groute[dataset][i] < gunrock[dataset][i], dataset
            # Persistent beats discrete+priority on mesh.
            assert atos_sp[dataset][i] < atos_pd[dataset][i], dataset

    scale_free = [d for d in SCALE_FREE if d in gunrock and d != "twitter50"]
    last = len(grid.gpu_counts) - 1
    for dataset in scale_free:
        best_atos = min(atos_sp[dataset][last], atos_pd[dataset][last])
        assert best_atos < gunrock[dataset][last], dataset

    # Geomean speedup of Atos-persistent over Gunrock on mesh is large.
    factors = [
        gunrock[d][i] / atos_sp[d][i]
        for d in mesh
        for i in range(len(grid.gpu_counts))
    ]
    assert _geomean(factors) > 6.0
