"""Figure 7: latency hiding on the Summit-node topology (1-6 GPUs).

The paper strong-scales Gunrock and Atos on a single Summit node,
whose cross-socket links penalize latency (Fig 6), and concludes that
Atos's fine-grained one-sided communication tolerates the latency
better.  Asserted shapes:

* Gunrock's scaling degrades beyond 3 GPUs (adding the far socket
  hurts it) on BFS,
* Atos's scaling at 6 GPUs is at least Gunrock's on every tested
  dataset/app,
* for bandwidth-limited PageRank, Atos keeps speeding up beyond 3
  GPUs.
"""

import pytest

from conftest import QUICK, write_artifact
from repro.harness import figure7_latency_hiding
from repro.metrics.tables import format_scaling_series

DATASETS = ["soc-livejournal1", "indochina-2004"]
GPUS = (1, 2, 3, 4, 5, 6)


@pytest.fixture(scope="module")
def fig7_grids():
    datasets = DATASETS[:1] if QUICK else DATASETS
    return figure7_latency_hiding(datasets, GPUS)


def test_fig7_latency_hiding(benchmark, fig7_grids):
    grids = benchmark.pedantic(
        lambda: fig7_grids, rounds=1, iterations=1, warmup_rounds=0
    )
    blocks = []
    for app, grid in grids.items():
        for dataset in grid.times["gunrock"]:
            blocks.append(
                format_scaling_series(
                    f"{app} on {dataset} (summit-node)",
                    list(GPUS),
                    {
                        fw: rows[dataset]
                        for fw, rows in grid.times.items()
                    },
                )
            )
    write_artifact("fig7_latency_hiding.txt", "\n\n".join(blocks))

    for app, grid in grids.items():
        gunrock = grid.times["gunrock"]
        atos = grid.times["atos-priority-discrete"]
        for dataset in gunrock:
            g = gunrock[dataset]
            a = atos[dataset]
            # Self-relative speedup at 6 GPUs: Atos >= Gunrock.
            assert (a[0] / a[-1]) >= (g[0] / g[-1]) * 0.95, (app, dataset)

    # PageRank (bandwidth-limited): Atos still gains beyond 3 GPUs.
    pr = grids["pagerank"].times["atos-priority-discrete"]
    for dataset, series in pr.items():
        assert min(series[3:]) < series[2], dataset
