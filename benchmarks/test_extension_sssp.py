"""Extension experiment: SSSP and the priority queue as delta-stepping.

Beyond the paper's BFS/PageRank pair: single-source shortest paths is
the application the distributed priority queue is *really* for.  With
a FIFO queue, asynchronous relaxation re-relaxes vertices along every
improving path (Bellman-Ford-flavored); the bucketed priority queue
turns execution into distributed delta-stepping and approaches
Dijkstra's work bound.

Measured: relaxation counts and runtime, FIFO-persistent vs
priority-discrete, on a weighted road mesh and a weighted scale-free
graph.  Both validate against scipy's Dijkstra.
"""

import numpy as np

from conftest import write_artifact
from repro.config import daisy
from repro.gpu.kernel import KernelStrategy
from repro.graph import (
    bfs_source,
    geometric_weights,
    load,
    uniform_weights,
)
from repro.harness import get_partition
from repro.apps import AtosSSSP, reference_sssp
from repro.metrics.tables import format_generic_table
from repro.runtime import AtosConfig, AtosExecutor

N_GPUS = 4


def _weighted(dataset: str):
    graph = load(dataset)
    if dataset == "road-usa":
        return geometric_weights(graph, width=180, seed=1)
    return uniform_weights(graph, seed=1)


def _run(dataset: str, priority: bool):
    weighted = _weighted(dataset)
    partition = get_partition(dataset, N_GPUS)
    source = bfs_source(dataset)
    app = AtosSSSP(weighted, partition, source)
    config = (
        AtosConfig(
            kernel=KernelStrategy.DISCRETE,
            priority=True,
            threshold_delta=2.0,
            fetch_size=1,
        )
        if priority
        else AtosConfig(fetch_size=1)
    )
    makespan, counters = AtosExecutor(daisy(N_GPUS), app, config).run()
    dist = app.result()
    ref = reference_sssp(weighted, source)
    finite = np.isfinite(ref)
    assert np.array_equal(np.isfinite(dist), finite)
    assert np.allclose(dist[finite], ref[finite])
    return makespan / 1000, counters["vertices_relaxed"]


def test_extension_sssp_priority_queue(benchmark):
    def collect():
        out = {}
        for dataset in ("road-usa", "soc-livejournal1"):
            fifo_ms, fifo_relax = _run(dataset, priority=False)
            prio_ms, prio_relax = _run(dataset, priority=True)
            out[dataset] = (fifo_ms, fifo_relax, prio_ms, prio_relax)
        return out

    results = benchmark.pedantic(
        collect, rounds=1, iterations=1, warmup_rounds=0
    )
    rows = [
        [
            dataset,
            f"{fifo_ms:.3f}",
            int(fifo_relax),
            f"{prio_ms:.3f}",
            int(prio_relax),
            f"{fifo_relax / prio_relax:.2f}",
        ]
        for dataset, (fifo_ms, fifo_relax, prio_ms, prio_relax)
        in results.items()
    ]
    write_artifact(
        "extension_sssp.txt",
        format_generic_table(
            f"Extension: SSSP on {N_GPUS} GPUs — FIFO vs priority queue",
            ["dataset", "fifo_ms", "fifo_relax", "prio_ms", "prio_relax",
             "relax reduction"],
            rows,
        ),
    )
    for dataset, (_, fifo_relax, _, prio_relax) in results.items():
        # The priority queue removes the majority of re-relaxations.
        assert prio_relax < 0.8 * fifo_relax, dataset
    # The effect is strongest on the high-diameter weighted mesh.
    road = results["road-usa"]
    assert road[1] / road[3] > 1.5
