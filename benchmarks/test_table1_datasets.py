"""Table I: dataset summary (scaled), with the paper's sizes alongside.

Asserts that the scaled datasets preserve the characteristics the
evaluation depends on: family membership (skewed-degree scale-free vs.
flat-degree high-diameter mesh), relative ordering, and density.
"""

import numpy as np

from conftest import write_artifact
from repro.graph import MESH_LIKE, SCALE_FREE, dataset_stats, load
from repro.harness import table1_datasets


def test_table1(benchmark):
    text = benchmark.pedantic(
        table1_datasets, rounds=1, iterations=1, warmup_rounds=0
    )
    write_artifact("table1_datasets.txt", text)

    stats = {n: dataset_stats(n) for n in SCALE_FREE + MESH_LIKE}
    # Scale-free: skewed degrees, tiny diameter.
    for name in SCALE_FREE:
        s = stats[name]
        graph = load(name)
        deg = np.asarray(graph.out_degree())
        assert deg.max() > 5 * deg.mean(), name
        assert s.diameter <= 30, name
    # Mesh-like: flat degrees, large diameter.
    for name in MESH_LIKE:
        s = stats[name]
        assert s.avg_degree < 5, name
        assert s.max_out_degree <= 12, name
        assert s.diameter > 100, name
    # Relative ordering matches the paper.
    assert stats["twitter50"].n_edges == max(
        s.n_edges for s in stats.values()
    )
    assert stats["osm-eur"].n_vertices > stats["road-usa"].n_vertices
    assert stats["osm-eur"].diameter > stats["road-usa"].diameter
    hollywood_density = stats["hollywood-2009"].avg_degree
    assert hollywood_density == max(s.avg_degree for s in stats.values())
